#include "query/cost_model.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace geostreams {

namespace {

// Relative per-point CPU weights, calibrated roughly to the measured
// per-point costs of the physical operators (bench E1-E4): pure
// filters are the unit; projection math dominates re-projection.
constexpr double kWeightRestrict = 1.0;
constexpr double kWeightValueTransform = 1.5;
constexpr double kWeightStretch = 4.0;
constexpr double kWeightMagnify = 1.0;   // per output point
constexpr double kWeightReduce = 2.0;
constexpr double kWeightReproject = 12.0;
constexpr double kWeightCompose = 3.0;
constexpr double kWeightAggregate = 2.0;

double LatticeBytes(const GridLattice& lattice, const ValueSet& vs) {
  return static_cast<double>(lattice.num_cells()) *
         static_cast<double>(vs.BytesPerPoint());
}

/// Fraction of the lattice extent the region's bounding box covers.
double SpatialSelectivity(const Region& region, const GridLattice& lattice) {
  const BoundingBox extent = lattice.Extent();
  const BoundingBox overlap = extent.Intersection(region.bounds());
  if (overlap.empty()) return 0.0;
  const double denom = extent.area();
  return denom <= 0.0 ? 1.0 : std::min(1.0, overlap.area() / denom);
}

Result<NodeCost> Estimate(const Expr* e,
                          std::map<const Expr*, NodeCost>* per_node) {
  if (!e->analyzed) {
    return Status::FailedPrecondition(
        "cost model requires an analyzed query");
  }
  NodeCost left, right;
  if (e->child) {
    GEOSTREAMS_ASSIGN_OR_RETURN(left, Estimate(e->child.get(), per_node));
  }
  if (e->right) {
    GEOSTREAMS_ASSIGN_OR_RETURN(right, Estimate(e->right.get(), per_node));
  }

  NodeCost c;
  c.input_points = left.output_points + right.output_points;
  switch (e->kind) {
    case ExprKind::kStreamRef:
      c.output_points =
          static_cast<double>(e->out_desc.reference_lattice().num_cells());
      break;
    case ExprKind::kSpatialRestrict:
      c.selectivity = SpatialSelectivity(
          *e->region, e->child->out_desc.reference_lattice());
      c.output_points = c.input_points * c.selectivity;
      c.cpu = c.input_points * kWeightRestrict;
      break;
    case ExprKind::kTemporalRestrict:
      // Without timestamp statistics assume all frames pass; recurring
      // windows narrow to their duty cycle when derivable.
      c.selectivity = 1.0;
      c.output_points = c.input_points;
      c.cpu = c.input_points * kWeightRestrict;
      break;
    case ExprKind::kValueRestrict:
      // Default heuristic: a value predicate keeps a third.
      c.selectivity = 1.0 / 3.0;
      c.output_points = c.input_points * c.selectivity;
      c.cpu = c.input_points * kWeightRestrict;
      break;
    case ExprKind::kValueTransform:
      c.output_points = c.input_points;
      c.cpu = c.input_points * kWeightValueTransform;
      break;
    case ExprKind::kStretch:
      c.output_points = c.input_points;
      c.cpu = c.input_points * kWeightStretch;
      // Buffers the largest frame (Sec. 3.2) — conservatively sized by
      // the input's reference lattice; upstream spatial restrictions
      // shrink the points actually buffered, reflected via
      // input_points.
      c.buffer_bytes =
          c.input_points * e->child->out_desc.value_set().BytesPerPoint() *
          3.0;  // value + cell address + timestamp
      break;
    case ExprKind::kMagnify:
      c.selectivity = static_cast<double>(e->factor) * e->factor;
      c.output_points = c.input_points * c.selectivity;
      c.cpu = c.output_points * kWeightMagnify;
      break;
    case ExprKind::kReduce:
      c.selectivity = 1.0 / (static_cast<double>(e->factor) * e->factor);
      c.output_points = c.input_points * c.selectivity;
      c.cpu = c.input_points * kWeightReduce;
      // Active accumulator cells: about one output row per in-progress
      // block for row-by-row input; whole frame otherwise.
      if (e->child->out_desc.organization() ==
          PointOrganization::kRowByRow) {
        c.buffer_bytes = static_cast<double>(
                             e->out_desc.reference_lattice().width()) *
                         24.0;
      } else {
        c.buffer_bytes = c.output_points * 24.0;
      }
      break;
    case ExprKind::kReproject:
      c.output_points = c.input_points;
      c.cpu = c.output_points * kWeightReproject;
      c.buffer_bytes =
          c.input_points * sizeof(double);  // assembled frame raster
      break;
    case ExprKind::kCompose:
    case ExprKind::kNdviMacro:
    case ExprKind::kBandStack: {
      c.output_points = std::min(left.output_points, right.output_points);
      c.cpu = c.input_points * kWeightCompose;
      // Buffering depends on arrival interleaving (Sec. 3.3): one scan
      // line for row-by-row streams, a frame for image-by-image.
      const GeoStreamDescriptor& lin = e->child->out_desc;
      const double entry = 24.0;
      if (lin.organization() == PointOrganization::kRowByRow) {
        c.buffer_bytes =
            static_cast<double>(lin.reference_lattice().width()) * entry;
      } else {
        c.buffer_bytes = left.output_points * entry;
      }
      break;
    }
    case ExprKind::kShed:
      c.selectivity = e->shed_keep;
      c.output_points = c.input_points * c.selectivity;
      c.cpu = c.input_points * kWeightRestrict;
      break;
    case ExprKind::kAggregate:
      c.output_points = static_cast<double>(e->agg_regions.size());
      c.cpu = c.input_points * kWeightAggregate *
              static_cast<double>(e->agg_regions.size());
      c.buffer_bytes = static_cast<double>(e->agg_regions.size()) * 40.0;
      break;
  }
  if (per_node) (*per_node)[e] = c;
  return c;
}

double SumCpu(const Expr* e, const std::map<const Expr*, NodeCost>& costs) {
  double total = costs.at(e).cpu;
  if (e->child) total += SumCpu(e->child.get(), costs);
  if (e->right) total += SumCpu(e->right.get(), costs);
  return total;
}

double SumPoints(const Expr* e,
                 const std::map<const Expr*, NodeCost>& costs) {
  double total = costs.at(e).input_points;
  if (e->child) total += SumPoints(e->child.get(), costs);
  if (e->right) total += SumPoints(e->right.get(), costs);
  return total;
}

double MaxBuffer(const Expr* e,
                 const std::map<const Expr*, NodeCost>& costs) {
  double m = costs.at(e).buffer_bytes;
  if (e->child) m = std::max(m, MaxBuffer(e->child.get(), costs));
  if (e->right) m = std::max(m, MaxBuffer(e->right.get(), costs));
  return m;
}

}  // namespace

std::string PlanCost::ToString() const {
  return StringPrintf(
      "cpu=%.0f points=%.0f max_buffer=%.0fB", total_cpu,
      total_points_processed, max_buffer_bytes);
}

Result<PlanCost> EstimatePlanCost(
    const ExprPtr& analyzed, std::map<const Expr*, NodeCost>* per_node) {
  if (!analyzed) return Status::InvalidArgument("null query");
  std::map<const Expr*, NodeCost> local;
  std::map<const Expr*, NodeCost>* costs = per_node ? per_node : &local;
  GEOSTREAMS_ASSIGN_OR_RETURN(NodeCost root,
                              Estimate(analyzed.get(), costs));
  (void)root;
  PlanCost out;
  out.total_cpu = SumCpu(analyzed.get(), *costs);
  out.total_points_processed = SumPoints(analyzed.get(), *costs);
  out.max_buffer_bytes = MaxBuffer(analyzed.get(), *costs);
  return out;
}

}  // namespace geostreams
