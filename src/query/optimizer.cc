#include "query/optimizer.h"

#include <cmath>

#include "common/string_util.h"
#include "geo/crs_registry.h"

namespace geostreams {

namespace {

/// Structural equality via the deterministic textual form.
bool SameTree(const ExprPtr& a, const ExprPtr& b) {
  return a && b && a->ToString() == b->ToString();
}

BoundingBox Inflate(const BoundingBox& box, double margin) {
  if (box.empty()) return box;
  return BoundingBox(box.min_x - margin, box.min_y - margin,
                     box.max_x + margin, box.max_y + margin);
}

/// Builds a conservative derived restriction node over `child`.
ExprPtr DerivedRestrict(ExprPtr child, const BoundingBox& box) {
  ExprPtr e = MakeSpatialRestrict(std::move(child),
                                  std::make_shared<BBoxRegion>(box));
  e->derived_restriction = true;
  return e;
}

class Rewriter {
 public:
  explicit Rewriter(const OptimizerOptions& options) : options_(options) {}

  int rewrites() const { return rewrites_; }

  /// One top-down pass; returns the (possibly replaced) node.
  ExprPtr Rewrite(ExprPtr e) {
    if (!e) return e;
    // Try rules at this node until none fires, then recurse.
    bool changed = true;
    while (changed) {
      changed = false;
      ExprPtr next = ApplyRules(e);
      if (next != e) {
        e = next;
        changed = true;
        ++rewrites_;
      }
    }
    if (e->child) e->child = Rewrite(e->child);
    if (e->right) e->right = Rewrite(e->right);
    return e;
  }

 private:
  ExprPtr ApplyRules(const ExprPtr& e) {
    if (options_.remove_trivial) {
      if (e->kind == ExprKind::kSpatialRestrict &&
          e->region->kind() == RegionKind::kAll) {
        return e->child;
      }
      if (e->kind == ExprKind::kTemporalRestrict && e->times.IsAll()) {
        return e->child;
      }
    }
    if (options_.merge_restrictions &&
        e->kind == ExprKind::kSpatialRestrict &&
        e->child->kind == ExprKind::kSpatialRestrict) {
      ExprPtr merged = MakeSpatialRestrict(
          e->child->child,
          MakeIntersectionRegion({e->region, e->child->region}));
      // Either side being synthesized marks the merge as synthesized:
      // this keeps the conservative pushdown rules from re-firing on
      // a region they already planted (and merged) below a transform.
      merged->derived_restriction =
          e->derived_restriction || e->child->derived_restriction;
      return merged;
    }
    if (options_.spatial_pushdown && e->kind == ExprKind::kSpatialRestrict) {
      ExprPtr pushed = PushSpatial(e);
      if (pushed) return pushed;
    }
    if (options_.temporal_pushdown &&
        e->kind == ExprKind::kTemporalRestrict) {
      ExprPtr pushed = PushTemporal(e);
      if (pushed) return pushed;
    }
    if (options_.expand_macros && e->kind == ExprKind::kNdviMacro) {
      return MakeCompose(ComposeFn::kDivide,
                         MakeCompose(ComposeFn::kSubtract, e->child,
                                     CloneExpr(e->right)),
                         MakeCompose(ComposeFn::kAdd, CloneExpr(e->child),
                                     e->right));
    }
    if (options_.fuse_ndvi_macro && !options_.expand_macros &&
        e->kind == ExprKind::kCompose && e->gamma == ComposeFn::kDivide &&
        e->child->kind == ExprKind::kCompose &&
        e->child->gamma == ComposeFn::kSubtract &&
        e->right->kind == ExprKind::kCompose &&
        e->right->gamma == ComposeFn::kAdd &&
        SameTree(e->child->child, e->right->child) &&
        SameTree(e->child->right, e->right->right)) {
      return MakeNdvi(e->child->child, e->child->right);
    }
    return e;
  }

  /// Pushes a spatial restriction one step into its child. Returns
  /// null when no rule applies.
  ExprPtr PushSpatial(const ExprPtr& e) {
    const ExprPtr& c = e->child;
    switch (c->kind) {
      case ExprKind::kValueTransform:
      case ExprKind::kValueRestrict:
      case ExprKind::kTemporalRestrict:
      case ExprKind::kShed: {
        // Exact commute: geometry untouched by the child (a shed's
        // keep-decision keys on coordinates, not on the region).
        ExprPtr new_child = std::make_shared<Expr>(*c);
        new_child->child = MakeSpatialRestrictLike(e, c->child);
        return new_child;
      }
      case ExprKind::kCompose:
      case ExprKind::kNdviMacro:
      case ExprKind::kBandStack: {
        ExprPtr new_node = std::make_shared<Expr>(*c);
        new_node->child = MakeSpatialRestrictLike(e, c->child);
        new_node->right = MakeSpatialRestrictLike(e, c->right);
        return new_node;
      }
      case ExprKind::kReproject: {
        if (e->derived_restriction || c->pushdown_applied) return nullptr;
        if (!c->analyzed || !c->child->analyzed) return nullptr;
        // Map the region's bounding box from the target CRS back into
        // the source CRS (Sec. 3.4: "R needs to be mapped to the
        // coordinate system C").
        auto target = ResolveCrs(c->target_crs);
        if (!target.ok()) return nullptr;
        const CrsPtr& source = c->child->out_desc.crs();
        BoundingBox src_box = TransformBoundingBox(
            e->region->bounds(), **target, *source, /*samples_per_edge=*/32);
        if (src_box.empty()) return nullptr;
        // Half-cell slack for resampling at the region border.
        const GridLattice& lat = c->child->out_desc.reference_lattice();
        src_box = Inflate(src_box, std::max(std::fabs(lat.dx()),
                                            std::fabs(lat.dy())));
        ExprPtr new_reproject = std::make_shared<Expr>(*c);
        new_reproject->child = DerivedRestrict(c->child, src_box);
        new_reproject->pushdown_applied = true;
        ExprPtr new_top = std::make_shared<Expr>(*e);
        new_top->child = new_reproject;
        return new_top;
      }
      case ExprKind::kMagnify:
      case ExprKind::kReduce: {
        if (e->derived_restriction || c->pushdown_applied) return nullptr;
        if (!c->child->analyzed) return nullptr;
        const GridLattice& lat = c->child->out_desc.reference_lattice();
        // The k x k neighbourhood of a kept output point may reach up
        // to k input cells beyond the region boundary.
        const double margin =
            c->factor *
            std::max(std::fabs(lat.dx()), std::fabs(lat.dy()));
        ExprPtr new_transform = std::make_shared<Expr>(*c);
        new_transform->child =
            DerivedRestrict(c->child, Inflate(e->region->bounds(), margin));
        new_transform->pushdown_applied = true;
        ExprPtr new_top = std::make_shared<Expr>(*e);
        new_top->child = new_transform;
        return new_top;
      }
      default:
        return nullptr;
    }
  }

  ExprPtr PushTemporal(const ExprPtr& e) {
    const ExprPtr& c = e->child;
    switch (c->kind) {
      case ExprKind::kValueTransform:
      case ExprKind::kValueRestrict:
      case ExprKind::kShed: {
        // Note: temporal restrictions deliberately do NOT push through
        // spatial restrictions (the spatial rule pushes through
        // temporal ones; one canonical direction keeps the rewrite
        // fixpoint from ping-ponging).
        ExprPtr new_child = std::make_shared<Expr>(*c);
        new_child->child = MakeTemporalRestrict(c->child, e->times);
        return new_child;
      }
      case ExprKind::kCompose:
      case ExprKind::kNdviMacro:
      case ExprKind::kBandStack: {
        ExprPtr new_node = std::make_shared<Expr>(*c);
        new_node->child = MakeTemporalRestrict(c->child, e->times);
        new_node->right = MakeTemporalRestrict(c->right, e->times);
        return new_node;
      }
      case ExprKind::kMagnify:
      case ExprKind::kReduce:
      case ExprKind::kReproject: {
        // Under scan-sector timestamping all points of a frame share
        // the timestamp, so a temporal restriction acts frame-wise and
        // commutes with the spatial transform. Under measurement time
        // it could drop points mid-frame and change resampling inputs.
        if (!c->child->analyzed ||
            c->child->out_desc.timestamp_policy() !=
                TimestampPolicy::kScanSectorId) {
          return nullptr;
        }
        ExprPtr new_child = std::make_shared<Expr>(*c);
        new_child->child = MakeTemporalRestrict(c->child, e->times);
        return new_child;
      }
      default:
        return nullptr;
    }
  }

  static ExprPtr MakeSpatialRestrictLike(const ExprPtr& original,
                                         ExprPtr child) {
    ExprPtr e = MakeSpatialRestrict(std::move(child), original->region);
    e->derived_restriction = original->derived_restriction;
    return e;
  }

  OptimizerOptions options_;
  int rewrites_ = 0;
};

}  // namespace

Result<ExprPtr> OptimizeQuery(const StreamCatalog& catalog,
                              const ExprPtr& expr,
                              const OptimizerOptions& options,
                              OptimizerStats* stats) {
  if (!expr) return Status::InvalidArgument("null query");
  ExprPtr current = CloneExpr(expr);
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, current));
  int passes = 0;
  int total_rewrites = 0;
  for (; passes < options.max_passes; ++passes) {
    Rewriter rewriter(options);
    current = rewriter.Rewrite(current);
    GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, current));
    total_rewrites += rewriter.rewrites();
    if (rewriter.rewrites() == 0) break;
  }
  if (stats) {
    stats->passes = passes + 1;
    stats->rewrites = total_rewrites;
  }
  return current;
}

}  // namespace geostreams
