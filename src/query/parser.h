// Recursive-descent parser for the textual query language.
//
// Grammar (functional form of the Sec. 3 algebra):
//
//   expr      := IDENT                      -- stream reference
//              | func '(' args ')'
//   func      := region | time | vrange | gray | rescale | clampv
//              | absv | band | stretch | magnify | reduce | reproject
//              | add | sub | mul | div | sup | inf | ndvi | aggregate
//   regionspec:= bbox(x0,y0,x1,y1) | polygon(x,y, x,y, ...)
//              | disk(cx,cy,r) | points(cell, x,y, ...) | all()
//              | union(rs, rs, ...) | intersection(rs, rs, ...)
//   timespec  := range(lo,hi) | instants(t, ...) | every(p, lo, hi)
//
// Examples:
//   region(goes.band1, bbox(-125, 32, -114, 42))
//   ndvi(goes.band2, goes.band1)
//   region(reproject(stretch(ndvi(goes.band2, goes.band1), "linear"),
//          "utm:10n"), bbox(500000, 3500000, 800000, 4700000))

#ifndef GEOSTREAMS_QUERY_PARSER_H_
#define GEOSTREAMS_QUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/ast.h"

namespace geostreams {

/// Parses a query string into an (unanalyzed) expression tree.
Result<ExprPtr> ParseQuery(std::string_view query);

}  // namespace geostreams

#endif  // GEOSTREAMS_QUERY_PARSER_H_
