#include "query/analyzer.h"

#include <algorithm>

#include "common/string_util.h"
#include "geo/crs_registry.h"
#include "geo/geographic_crs.h"
#include "ops/reproject_op.h"

namespace geostreams {

Status StreamCatalog::Register(const GeoStreamDescriptor& desc) {
  GEOSTREAMS_RETURN_IF_ERROR(desc.Validate());
  auto [it, inserted] = streams_.emplace(desc.name(), desc);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("stream already registered: " + desc.name());
  }
  return Status::OK();
}

Result<GeoStreamDescriptor> StreamCatalog::Lookup(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream: " + name);
  }
  return it->second;
}

namespace {

/// Materializes the ValueFn for a parser-built value transform.
Result<ValueFn> ResolveValueFn(const Expr& e, int child_bands) {
  switch (e.value_spec.kind) {
    case ValueFnSpec::Kind::kCustom:
      if (!e.value_fn.fn) {
        return Status::PlanError("value transform has no function");
      }
      return e.value_fn;
    case ValueFnSpec::Kind::kGray:
      if (child_bands != 3) {
        return Status::InvalidArgument(StringPrintf(
            "gray() needs a 3-band input, got %d band(s)", child_bands));
      }
      return ValueFn::ColorToGray();
    case ValueFnSpec::Kind::kRescale:
      return ValueFn::AffineRescale(child_bands, e.value_spec.a,
                                    e.value_spec.b);
    case ValueFnSpec::Kind::kClamp:
      if (e.value_spec.a > e.value_spec.b) {
        return Status::InvalidArgument("clampv: lo > hi");
      }
      return ValueFn::ClampTo(child_bands, e.value_spec.a, e.value_spec.b);
    case ValueFnSpec::Kind::kAbs:
      return ValueFn::AbsValue(child_bands);
    case ValueFnSpec::Kind::kBandSelect:
      if (e.value_spec.band < 0 || e.value_spec.band >= child_bands) {
        return Status::InvalidArgument(
            StringPrintf("band(%d) out of range for %d-band input",
                         e.value_spec.band, child_bands));
      }
      return ValueFn::BandSelect(child_bands, e.value_spec.band);
  }
  return Status::Internal("unreachable");
}

Status Analyze(const StreamCatalog& catalog, Expr* e) {
  if (e->child) GEOSTREAMS_RETURN_IF_ERROR(Analyze(catalog, e->child.get()));
  if (e->right) GEOSTREAMS_RETURN_IF_ERROR(Analyze(catalog, e->right.get()));

  switch (e->kind) {
    case ExprKind::kStreamRef: {
      GEOSTREAMS_ASSIGN_OR_RETURN(e->out_desc,
                                  catalog.Lookup(e->stream_name));
      break;
    }
    case ExprKind::kSpatialRestrict: {
      if (!e->region) return Status::PlanError("region restriction is null");
      e->out_desc = e->child->out_desc;
      break;
    }
    case ExprKind::kTemporalRestrict:
      e->out_desc = e->child->out_desc;
      break;
    case ExprKind::kShed:
      if (e->shed_keep < 0.0 || e->shed_keep > 1.0) {
        return Status::InvalidArgument("shed keep fraction outside [0, 1]");
      }
      e->out_desc = e->child->out_desc;
      break;
    case ExprKind::kValueRestrict: {
      const int bands = e->child->out_desc.value_set().bands();
      for (const ValueBandRange& r : e->ranges) {
        if (r.band < 0 || r.band >= bands) {
          return Status::InvalidArgument(
              StringPrintf("vrange band %d out of range for %d-band stream",
                           r.band, bands));
        }
        if (r.lo > r.hi) {
          return Status::InvalidArgument("vrange: lo > hi");
        }
      }
      e->out_desc = e->child->out_desc;
      break;
    }
    case ExprKind::kValueTransform: {
      const ValueSet& in_vs = e->child->out_desc.value_set();
      GEOSTREAMS_ASSIGN_OR_RETURN(e->value_fn,
                                  ResolveValueFn(*e, in_vs.bands()));
      if (e->value_fn.in_bands != in_vs.bands()) {
        return Status::InvalidArgument(StringPrintf(
            "value transform %s expects %d bands, stream %s has %d",
            e->value_fn.name.c_str(), e->value_fn.in_bands,
            e->child->out_desc.name().c_str(), in_vs.bands()));
      }
      ValueSet out_vs(in_vs.name() + "." + e->value_fn.name,
                      SampleType::kFloat64, e->value_fn.out_bands, -1e308,
                      1e308);
      e->out_desc = e->child->out_desc.WithValueSet(out_vs).WithName(
          e->child->out_desc.name() + "." + e->value_fn.name);
      break;
    }
    case ExprKind::kStretch: {
      const GeoStreamDescriptor& in = e->child->out_desc;
      if (in.value_set().bands() != 1) {
        return Status::InvalidArgument(
            "stretch transforms apply to single-band streams");
      }
      if (in.organization() == PointOrganization::kPointByPoint) {
        return Status::InvalidArgument(
            "stretch transforms require framed input (a point-by-point "
            "stream has no frame over which to compute statistics)");
      }
      // A stretch needs the whole frame before emitting; the output is
      // delivered image by image regardless of the input organization.
      ValueSet out_vs("stretched", SampleType::kFloat64, 1,
                      e->stretch.out_lo, e->stretch.out_hi);
      e->out_desc = in.WithValueSet(out_vs)
                        .WithName(in.name() + ".stretch")
                        .WithOrganization(PointOrganization::kImageByImage);
      break;
    }
    case ExprKind::kMagnify: {
      if (e->factor < 1) return Status::InvalidArgument("factor < 1");
      const GeoStreamDescriptor& in = e->child->out_desc;
      e->out_desc =
          in.WithLattice(in.reference_lattice().Magnified(e->factor))
              .WithName(in.name() + StringPrintf(".mag%d", e->factor));
      break;
    }
    case ExprKind::kReduce: {
      if (e->factor < 1) return Status::InvalidArgument("factor < 1");
      const GeoStreamDescriptor& in = e->child->out_desc;
      if (in.value_set().bands() != 1) {
        return Status::InvalidArgument(
            "resolution decrease applies to single-band streams");
      }
      if (in.organization() == PointOrganization::kPointByPoint) {
        return Status::InvalidArgument(
            "resolution decrease requires framed input (scan-sector "
            "metadata bounds the neighbourhood buffers)");
      }
      e->out_desc =
          in.WithLattice(in.reference_lattice().Reduced(e->factor))
              .WithName(in.name() + StringPrintf(".red%d", e->factor));
      break;
    }
    case ExprKind::kReproject: {
      const GeoStreamDescriptor& in = e->child->out_desc;
      if (in.value_set().bands() != 1) {
        return Status::InvalidArgument(
            "re-projection applies to single-band streams");
      }
      if (in.organization() == PointOrganization::kPointByPoint) {
        return Status::InvalidArgument(
            "re-projection requires framed input");
      }
      GEOSTREAMS_ASSIGN_OR_RETURN(CrsPtr target, ResolveCrs(e->target_crs));
      if (in.crs()->Equals(*target)) {
        // Identity re-projection: still a valid node, same geometry.
        e->out_desc = in.WithName(in.name() + ".reproj");
        break;
      }
      GEOSTREAMS_ASSIGN_OR_RETURN(
          GridLattice out_lattice,
          ReprojectOp::DeriveLattice(in.reference_lattice(), target));
      e->out_desc = in.WithLattice(out_lattice)
                        .WithName(in.name() + ".reproj." + target->name())
                        .WithOrganization(PointOrganization::kImageByImage);
      break;
    }
    case ExprKind::kCompose:
    case ExprKind::kNdviMacro:
    case ExprKind::kBandStack: {
      const GeoStreamDescriptor& l = e->child->out_desc;
      const GeoStreamDescriptor& r = e->right->out_desc;
      if (!l.crs() || !r.crs() || !l.crs()->Equals(*r.crs())) {
        return Status::CrsMismatch(StringPrintf(
            "composition inputs use different coordinate systems: %s vs %s",
            l.crs() ? l.crs()->name().c_str() : "<none>",
            r.crs() ? r.crs()->name().c_str() : "<none>"));
      }
      if (!l.reference_lattice().AlignedWith(r.reference_lattice())) {
        return Status::LatticeMismatch(
            "composition inputs are not on aligned lattices: " +
            l.reference_lattice().ToString() + " vs " +
            r.reference_lattice().ToString());
      }
      if (l.timestamp_policy() != r.timestamp_policy()) {
        return Status::InvalidArgument(
            "composition inputs use different timestamp policies");
      }
      if (e->kind == ExprKind::kBandStack) {
        const int bands = l.value_set().bands() + r.value_set().bands();
        if (bands > kMaxBands) {
          return Status::InvalidArgument(StringPrintf(
              "stacked value set would have %d bands (max %d)", bands,
              kMaxBands));
        }
        ValueSet out_vs(
            "stacked", SampleType::kFloat64, bands,
            std::min(l.value_set().min_value(), r.value_set().min_value()),
            std::max(l.value_set().max_value(), r.value_set().max_value()));
        e->out_desc = l.WithValueSet(out_vs).WithName(StringPrintf(
            "(%s ++ %s)", l.name().c_str(), r.name().c_str()));
        break;
      }
      if (!l.value_set().CompatibleWith(r.value_set())) {
        return Status::InvalidArgument(StringPrintf(
            "composition inputs have incompatible value sets (%d vs %d "
            "bands)",
            l.value_set().bands(), r.value_set().bands()));
      }
      const bool is_ndvi = e->kind == ExprKind::kNdviMacro;
      ValueSet out_vs =
          is_ndvi ? ValueSet::IndexF32()
                  : ValueSet("composed", SampleType::kFloat64,
                             l.value_set().bands(), -1e308, 1e308);
      const char* op_name =
          is_ndvi ? "ndvi" : ComposeFnName(e->gamma);
      e->out_desc = l.WithValueSet(out_vs).WithName(
          StringPrintf("(%s %s %s)", l.name().c_str(), op_name,
                       r.name().c_str()));
      break;
    }
    case ExprKind::kAggregate: {
      const GeoStreamDescriptor& in = e->child->out_desc;
      if (in.value_set().bands() != 1) {
        return Status::InvalidArgument(
            "aggregates apply to single-band streams");
      }
      if (e->agg_regions.empty()) {
        return Status::InvalidArgument("aggregate needs regions");
      }
      GridLattice out_lattice(
          GeographicCrs::Instance(), 0.0, 0.0, 1.0, 1.0,
          static_cast<int64_t>(e->agg_regions.size()), 1);
      ValueSet out_vs("aggregate", SampleType::kFloat64, 1, -1e308, 1e308);
      e->out_desc = GeoStreamDescriptor(
          in.name() + "." + AggregateFnName(e->agg_fn), out_vs, out_lattice,
          PointOrganization::kImageByImage, in.timestamp_policy());
      break;
    }
  }
  e->analyzed = true;
  return Status::OK();
}

}  // namespace

Status AnalyzeQuery(const StreamCatalog& catalog, const ExprPtr& expr) {
  if (!expr) return Status::InvalidArgument("null query");
  return Analyze(catalog, expr.get());
}

}  // namespace geostreams
