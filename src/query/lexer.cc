#include "query/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace geostreams {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == ':';
}
}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '(') {
      tok.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      tok.kind = TokenKind::kRParen;
      ++i;
    } else if (c == ',') {
      tok.kind = TokenKind::kComma;
      ++i;
    } else if (c == '"') {
      tok.kind = TokenKind::kString;
      size_t j = i + 1;
      while (j < n && input[j] != '"') ++j;
      if (j >= n) {
        return Status::ParseError(
            StringPrintf("unterminated string at offset %zu", i));
      }
      tok.text = std::string(input.substr(i + 1, j - i - 1));
      i = j + 1;
    } else if (IsIdentStart(c)) {
      tok.kind = TokenKind::kIdentifier;
      size_t j = i;
      while (j < n && IsIdentBody(input[j])) ++j;
      tok.text = std::string(input.substr(i, j - i));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
               c == '+') {
      tok.kind = TokenKind::kNumber;
      char* end = nullptr;
      const std::string buf(input.substr(i));
      tok.number = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str()) {
        return Status::ParseError(
            StringPrintf("bad number at offset %zu", i));
      }
      i += static_cast<size_t>(end - buf.c_str());
    } else {
      return Status::ParseError(
          StringPrintf("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end_tok;
  end_tok.kind = TokenKind::kEnd;
  end_tok.offset = n;
  tokens.push_back(end_tok);
  return tokens;
}

}  // namespace geostreams
