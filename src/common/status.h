// Status / Result error model for the GeoStreams library.
//
// Hot stream-processing paths avoid exceptions; fallible operations
// return a Status (or Result<T> when they also produce a value), in the
// style of RocksDB / Apache Arrow.

#ifndef GEOSTREAMS_COMMON_STATUS_H_
#define GEOSTREAMS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace geostreams {

/// Category of failure. Mirrors the error situations that arise in a
/// stream management system: bad queries, incompatible streams,
/// exhausted resources, and I/O problems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kResourceExhausted,
  kFailedPrecondition,
  /// A dependency is temporarily unreachable; retrying may succeed.
  kUnavailable,
  kIoError,
  kParseError,
  kPlanError,
  kCrsMismatch,
  kLatticeMismatch,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("ParseError").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the success case (no
/// allocation); error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status CrsMismatch(std::string msg) {
    return Status(StatusCode::kCrsMismatch, std::move(msg));
  }
  static Status LatticeMismatch(std::string msg) {
    return Status(StatusCode::kLatticeMismatch, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or a Status describing why none could be produced.
template <typename T>
class Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status (failure). Constructing from an OK
  /// status is a programming error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Status of the result: OK when a value is present.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define GEOSTREAMS_RETURN_IF_ERROR(expr)       \
  do {                                         \
    ::geostreams::Status _st = (expr);         \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression; on error returns its status, on
/// success assigns the value to `lhs`.
#define GEOSTREAMS_ASSIGN_OR_RETURN(lhs, expr) \
  auto GEOSTREAMS_CONCAT_(_res_, __LINE__) = (expr);                    \
  if (!GEOSTREAMS_CONCAT_(_res_, __LINE__).ok())                        \
    return GEOSTREAMS_CONCAT_(_res_, __LINE__).status();                \
  lhs = std::move(GEOSTREAMS_CONCAT_(_res_, __LINE__)).value()

#define GEOSTREAMS_CONCAT_IMPL_(a, b) a##b
#define GEOSTREAMS_CONCAT_(a, b) GEOSTREAMS_CONCAT_IMPL_(a, b)

}  // namespace geostreams

#endif  // GEOSTREAMS_COMMON_STATUS_H_
