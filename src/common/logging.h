// Minimal leveled logging used by the DSMS server and executor.
//
// Logging is off the hot path: operators never log per point; the
// server logs query registration, pipeline lifecycle, and errors.

#ifndef GEOSTREAMS_COMMON_LOGGING_H_
#define GEOSTREAMS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace geostreams {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line (thread-safe) if `level` is at or above the
/// global minimum.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Stream-style builder backing the GEOSTREAMS_LOG macro.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

#define GEOSTREAMS_LOG(level)                                      \
  ::geostreams::internal::LogStream(::geostreams::LogLevel::level, \
                                    __FILE__, __LINE__)

}  // namespace geostreams

#endif  // GEOSTREAMS_COMMON_LOGGING_H_
