// String helpers for the query parser, EXPLAIN output, and logging.

#ifndef GEOSTREAMS_COMMON_STRING_UTIL_H_
#define GEOSTREAMS_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace geostreams {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// True when `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace geostreams

#endif  // GEOSTREAMS_COMMON_STRING_UTIL_H_
