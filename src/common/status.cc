#include "common/status.h"

namespace geostreams {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kCrsMismatch:
      return "CrsMismatch";
    case StatusCode::kLatticeMismatch:
      return "LatticeMismatch";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace geostreams
