// Small numeric helpers shared across the geo and raster layers.

#ifndef GEOSTREAMS_COMMON_MATH_UTIL_H_
#define GEOSTREAMS_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace geostreams {

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;
inline constexpr double kHalfPi = kPi / 2.0;
inline constexpr double kDegToRad = kPi / 180.0;
inline constexpr double kRadToDeg = 180.0 / kPi;

inline double DegreesToRadians(double deg) { return deg * kDegToRad; }
inline double RadiansToDegrees(double rad) { return rad * kRadToDeg; }

/// Clamps `v` into [lo, hi].
template <typename T>
inline T Clamp(T v, T lo, T hi) {
  return std::min(std::max(v, lo), hi);
}

/// Linear interpolation between a and b at parameter t in [0,1].
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// True when |a - b| <= tol.
inline bool NearlyEqual(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Wraps a longitude in degrees into [-180, 180).
inline double WrapLongitudeDeg(double lon) {
  lon = std::fmod(lon + 180.0, 360.0);
  if (lon < 0) lon += 360.0;
  return lon - 180.0;
}

/// Integer floor division for possibly-negative numerators.
inline int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  int64_t r = a % b;
  return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
}

/// Deterministic 64-bit mix (splitmix64 finalizer) used by the
/// synthetic workload generators so runs are reproducible.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Maps a 64-bit hash to a double in [0, 1).
inline double HashToUnit(uint64_t x) {
  return static_cast<double>(Mix64(x) >> 11) * 0x1.0p-53;
}

}  // namespace geostreams

#endif  // GEOSTREAMS_COMMON_MATH_UTIL_H_
