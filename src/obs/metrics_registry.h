// System-wide metrics: counters, gauges, and latency histograms with
// Prometheus text exposition.
//
// The paper costs the query model in per-point processing time and
// per-operator buffered state (Secs. 3.1-3.3); the registry turns
// both — plus everything the runtime grew around them (scheduler
// queues, supervision, the ingest/client network planes) — into one
// scrapeable surface. Design constraints, in order:
//
//  1. Update paths are lock-light. Counter/Gauge/MetricHistogram updates
//     are relaxed atomics on pre-resolved pointers; the registry
//     mutex is taken only at registration and at scrape time.
//  2. Series are stable. GetCounter/GetGauge/GetHistogram return the
//     same instance for the same (name, labels) forever; handles
//     never dangle even after the registering component is gone.
//  3. Mirrored sources stay authoritative. Components that already
//     keep counters under their own locks (scheduler stats, memory
//     tracker) register a collector callback that refreshes registry
//     values at scrape time instead of double-counting on hot paths.
//
// Naming scheme (see DESIGN.md §11): every family is
// `geostreams_<component>_<what>[_unit][_total]`, latencies are
// microseconds (`_us`), byte figures `_bytes`. Label cardinality is
// bounded by construction: operators are labeled by operator *kind*
// (not instance), ingest by source name, and client sessions are
// aggregated unlabeled.

#ifndef GEOSTREAMS_OBS_METRICS_REGISTRY_H_
#define GEOSTREAMS_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace geostreams {

/// Monotonic counter. Increment from hot paths; Set() exists for
/// collectors mirroring a counter whose source of truth lives behind
/// another component's lock (the mirrored value must itself be
/// monotonic or Prometheus rate() breaks).
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time figure (queue depth, tracked bytes, health counts).
class Gauge {
 public:
  void Set(uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket histogram over non-negative integer samples
/// (microseconds, queue depths). Buckets are cumulative-upper-bound
/// ("le") like Prometheus: bucket i counts samples <= bounds[i], with
/// an implicit +Inf bucket after the last bound. Observe() is three
/// relaxed atomic adds after a binary search over ~20 bounds; merging
/// and percentile extraction work on snapshots, so a concurrent
/// Observe skews a scrape by at most the in-flight samples.
///
/// Exemplars (OpenMetrics): ObserveWithExemplar additionally records
/// the trace ring ordinal + pipeline of the observation in its
/// bucket's exemplar slot, so a scrape's `# {trace=...}` annotation
/// points straight at a `TRACE <id>` record. The exemplar store is
/// allocated lazily on the first exemplared observation and guarded
/// by its own mutex — the plain Observe() hot path never touches it.
class MetricHistogram {
 public:
  /// `bounds` must be strictly ascending and non-empty.
  explicit MetricHistogram(std::vector<uint64_t> bounds);

  /// start, start*factor, start*factor^2, ... (count bounds, deduped
  /// after rounding — factor must be > 1).
  static std::vector<uint64_t> ExponentialBuckets(uint64_t start,
                                                  double factor,
                                                  size_t count);
  /// Log-spaced microsecond latency bounds: 1us .. ~16s, factor 4.
  static const std::vector<uint64_t>& LatencyBucketsUs();
  /// Log-spaced small-count bounds (queue depths): 1 .. 65536.
  static const std::vector<uint64_t>& DepthBuckets();

  void Observe(uint64_t value);

  /// Observe() plus an exemplar: the owning bucket remembers this
  /// observation's trace ring ordinal and pipeline (latest wins).
  void ObserveWithExemplar(uint64_t value, uint64_t trace_ordinal,
                           const std::string& pipeline);

  /// Latest exemplared observation of one bucket.
  struct Exemplar {
    bool has = false;
    uint64_t value = 0;
    uint64_t trace_ordinal = 0;
    std::string pipeline;
  };

  struct Snapshot {
    std::vector<uint64_t> bounds;
    /// counts.size() == bounds.size() + 1; the last entry is +Inf.
    std::vector<uint64_t> counts;
    /// Empty when no exemplar was ever recorded; otherwise one slot
    /// per bucket (bounds.size() + 1, the last is +Inf).
    std::vector<Exemplar> exemplars;
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Percentile p in [0, 100] by linear interpolation inside the
    /// owning bucket; samples in the +Inf bucket answer with the last
    /// finite bound. 0 when empty.
    double Percentile(double p) const;
  };
  Snapshot TakeSnapshot() const;

  /// Accumulates another histogram's counts (same bounds required;
  /// mismatched shapes are ignored). The OperatorMetrics::MergeFrom
  /// idiom for distributions.
  void MergeFrom(const MetricHistogram& other);

  double Percentile(double p) const { return TakeSnapshot().Percentile(p); }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  const std::vector<uint64_t>& bounds() const { return bounds_; }

 private:
  size_t BucketIndex(uint64_t value) const;

  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  /// Exemplar slots, one per bucket; null until the first
  /// ObserveWithExemplar. Guarded by exemplar_mu_ (never taken by
  /// Observe()).
  mutable std::mutex exemplar_mu_;
  std::unique_ptr<Exemplar[]> exemplars_;
};

/// Label set, rendered in the given order. Keep values low-cardinality
/// (operator kinds, source names — never per-event data).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registration is get-or-create keyed on (name, labels); the help
  /// text of the first registration wins. Returned pointers live as
  /// long as the registry. A name already registered as a different
  /// metric type returns nullptr (callers treat that as "metrics
  /// off") — it is a programming error, logged once.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  MetricLabels labels = {});
  MetricHistogram* GetHistogram(const std::string& name, const std::string& help,
                          MetricLabels labels = {},
                          std::vector<uint64_t> bounds = {});

  /// Scrape hook: runs (outside the registry lock, in registration
  /// order) at the start of RenderPrometheus. Components whose
  /// counters live behind their own locks refresh mirror metrics
  /// here, so the hot path never double-counts.
  void AddCollector(std::function<void()> collect);

  /// Prometheus text exposition (version 0.0.4): families sorted by
  /// name with # HELP / # TYPE headers, histogram series expanded
  /// into cumulative `_bucket{le=...}` plus `_sum`/`_count`. Ends
  /// with a newline. Exemplars are NOT rendered here — the 0.0.4
  /// parser treats a `# {...}` tail as a malformed timestamp and
  /// fails the whole scrape.
  std::string RenderPrometheus();

  /// OpenMetrics text exposition (application/openmetrics-text):
  /// same families, plus `# {trace=...}` exemplars on `_bucket`
  /// lines and the mandatory `# EOF` terminator. Counter metadata
  /// drops the `_total` suffix (OpenMetrics names the family
  /// `foo` and its sample `foo_total`). Served when a scraper
  /// negotiates OpenMetrics via the Accept header.
  std::string RenderOpenMetrics();

  /// Number of registered series across all families (tests).
  size_t NumSeries() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<MetricHistogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    bool kind_conflict_logged = false;
    /// Keyed by the rendered label string so lookup and output order
    /// agree.
    std::map<std::string, Series> series;
  };

  Series* GetSeries(const std::string& name, const std::string& help,
                    Kind kind, MetricLabels labels);

  /// Shared renderer behind RenderPrometheus/RenderOpenMetrics.
  std::string RenderExposition(bool openmetrics);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OBS_METRICS_REGISTRY_H_
