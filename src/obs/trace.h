// Per-batch pipeline tracing.
//
// A sampled batch gets a TraceContext at the ingest boundary; the
// scheduler forks it per fan-out pipeline (each fork lives on exactly
// one pipeline, so — by the scheduler's claim invariant — it is only
// ever mutated by one thread at a time), stamps queue entry/exit, and
// activates it around chain delivery so every operator on the chain
// records a span. Operators run as a synchronous push chain: an
// upstream operator's Consume *includes* all downstream work, so spans
// carry both the inclusive wall time and the exclusive time with the
// child subtree subtracted out (SpanTimer does the subtree
// accounting). Finished traces land in a bounded per-pipeline
// TraceRing dumped by `TRACE <query-id>` — same ordinal-survives-
// eviction contract as the DeadLetterQueue.
//
// The untraced hot path costs one thread-local load and a branch per
// operator (see bench/bench_tracing.cc).

#ifndef GEOSTREAMS_OBS_TRACE_H_
#define GEOSTREAMS_OBS_TRACE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace geostreams {

class MetricHistogram;
class MetricsRegistry;

/// Monotonic (steady-clock) microseconds. The zero point is arbitrary;
/// only differences are meaningful.
uint64_t TraceNowUs();

/// Wall-clock (system-clock) microseconds since the Unix epoch. Only
/// used to anchor traces to external logs; never for durations.
uint64_t TraceWallNowUs();

/// One operator's slice of a traced delivery.
struct TraceSpan {
  std::string name;          // operator instance name, e.g. "op1.region"
  uint64_t exclusive_us = 0; // wall time minus downstream subtree
  uint64_t inclusive_us = 0; // wall time including downstream subtree
};

/// A finished trace, as kept in the ring and dumped over the control
/// plane.
struct TraceRecord {
  uint64_t ordinal = 0;   // assigned by the ring; survives eviction
  uint64_t trace_id = 0;
  std::string origin;     // source stream name
  std::string pipeline;   // scheduler queue name ("" when inline)
  uint64_t queue_wait_us = 0;
  uint64_t total_us = 0;  // ingest stamp -> Finish()
  /// Wall-clock (Unix epoch) microseconds when the trace was born at
  /// the ingest boundary. Steady-clock stamps only order events within
  /// this process; the wall anchor lets `TRACE <id>` output be
  /// correlated with external logs.
  uint64_t born_wall_us = 0;
  /// Frame-lifecycle wall anchors (Unix epoch microseconds; 0 =
  /// unknown): producer capture, ingest admission, journal-durable.
  /// Stamped by the ingest session onto the event, copied onto the
  /// trace at birth.
  uint64_t capture_wall_us = 0;
  uint64_t admit_wall_us = 0;
  uint64_t durable_wall_us = 0;
  std::vector<TraceSpan> spans;  // delivery order (outermost first)

  /// One line: `TR <ordinal> trace=<id> pipeline=<p> origin=<o>
  /// wall_us=<epoch-us> queue_us=<n> total_us=<n>
  /// [capture_us=<epoch-us> admit_us=<epoch-us> durable_us=<epoch-us>]
  /// <span>=<excl>/<incl>...` (span times in microseconds,
  /// exclusive/inclusive; anchors rendered only when stamped).
  std::string ToString() const;
};

/// Mutable state of one in-flight trace. Not thread-safe: each
/// instance is owned by a single delivery path (fork per pipeline
/// before crossing a queue).
class TraceContext {
 public:
  /// ring_ordinal() when no ring slot was reserved for this trace.
  static constexpr uint64_t kNoRingOrdinal = ~0ull;

  TraceContext(uint64_t trace_id, std::string origin);

  uint64_t trace_id() const { return trace_id_; }
  const std::string& origin() const { return origin_; }
  const std::string& pipeline() const { return pipeline_; }

  /// A fresh context for one fan-out pipeline: same id/origin/birth
  /// stamp and ingest anchors, no spans and no ring ordinal (each
  /// fork lands in its own pipeline's ring). Called by the scheduler
  /// before enqueue so concurrent pipelines never share mutable trace
  /// state. Per-source stage ownership (see observes_source_stages)
  /// transfers to the FIRST fork; later forks of the same frame do
  /// not re-observe the per-source stages.
  std::shared_ptr<TraceContext> Fork(std::string pipeline);

  /// Queue boundary stamps. MarkDequeued returns the queue wait in
  /// microseconds (0 if MarkEnqueued was never called).
  void MarkEnqueued() { enqueued_us_ = TraceNowUs(); }
  uint64_t MarkDequeued();
  uint64_t queue_wait_us() const { return queue_wait_us_; }

  /// Copies the frame-lifecycle wall anchors stamped on the ingest
  /// event onto the trace and starts the stage chain at the last
  /// nonzero anchor (durable, else admit, else capture).
  void SetIngestAnchors(uint64_t capture_wall_us, uint64_t admit_wall_us,
                        uint64_t durable_wall_us);
  uint64_t capture_wall_us() const { return capture_wall_us_; }
  uint64_t admit_wall_us() const { return admit_wall_us_; }
  uint64_t durable_wall_us() const { return durable_wall_us_; }

  /// Advances the stage chain to `now_wall_us` and returns the
  /// elapsed microseconds since the previous anchor (0 when no prior
  /// anchor was set or the clock stepped backwards). Consecutive
  /// calls therefore segment the frame's wall timeline into disjoint
  /// stage latencies that sum to end-to-end.
  uint64_t AdvanceStage(uint64_t now_wall_us);
  uint64_t last_anchor_wall_us() const { return last_anchor_wall_us_; }

  /// True on exactly one context per traced source frame: the root at
  /// birth, handed to the first Fork (and cleared everywhere else).
  /// Gates the per-source stage observations (`send`, `journal`,
  /// `total`) so a frame fanning out to N pipelines lands in the
  /// per-source series once, not N times.
  bool observes_source_stages() const { return source_stage_owner_; }

  /// Claims the once-per-frame per-source `total` observation: true
  /// exactly once, and only on the owning context. (The inline path
  /// delivers one trace through every query's chain, so the owner
  /// flag alone would still observe `total` per query.)
  bool ClaimTotalStage();

  /// TraceRing slot reserved for this trace (exemplar linkage), or
  /// kNoRingOrdinal.
  void set_ring_ordinal(uint64_t ordinal) { ring_ordinal_ = ordinal; }
  uint64_t ring_ordinal() const { return ring_ordinal_; }

  /// Snapshot for the ring. total_us covers birth -> now.
  TraceRecord Finish() const;

 private:
  friend class SpanTimer;

  uint64_t trace_id_;
  std::string origin_;
  std::string pipeline_;
  uint64_t born_us_;
  uint64_t born_wall_us_;  // wall-clock anchor, stamped with born_us_
  uint64_t enqueued_us_ = 0;
  uint64_t queue_wait_us_ = 0;
  uint64_t capture_wall_us_ = 0;
  uint64_t admit_wall_us_ = 0;
  uint64_t durable_wall_us_ = 0;
  uint64_t last_anchor_wall_us_ = 0;
  uint64_t ring_ordinal_ = kNoRingOrdinal;
  /// Per-source stage ownership: root holds it until the first Fork
  /// takes it; ClaimTotalStage burns it for the `total` observation.
  bool source_stage_owner_ = true;
  bool total_claimed_ = false;
  /// Inclusive time of already-finished child spans at the current
  /// nesting level; SpanTimer saves/zeroes/restores it around each
  /// span to compute exclusive time.
  uint64_t child_us_ = 0;
  std::vector<TraceSpan> spans_;
};

/// RAII span: construct around an operator's Process call. Records the
/// span into `trace` on destruction and, when `histogram` is non-null,
/// observes the *exclusive* microseconds there. `name` must outlive
/// the timer (operators pass their own name).
class SpanTimer {
 public:
  SpanTimer(TraceContext* trace, const std::string& name,
            MetricHistogram* histogram);
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  TraceContext* trace_;
  const std::string& name_;
  MetricHistogram* histogram_;
  uint64_t start_us_;
  uint64_t saved_child_us_;
};

/// The trace active on this thread's current delivery chain, or null.
/// Operators consult this (one thread-local load + branch) instead of
/// the event, because operators emit freshly-built events that do not
/// carry the upstream event's trace pointer.
TraceContext* ActiveTrace();

/// Activates `trace` (may be null = deactivate) for the current scope;
/// restores the previous active trace on destruction.
class ScopedTraceActivation {
 public:
  explicit ScopedTraceActivation(TraceContext* trace);
  ~ScopedTraceActivation();

  ScopedTraceActivation(const ScopedTraceActivation&) = delete;
  ScopedTraceActivation& operator=(const ScopedTraceActivation&) = delete;

 private:
  TraceContext* previous_;
};

/// Bounded ring of finished traces. Thread-safe (the synchronous
/// ingest path can push from multiple producer threads). Ordinals are
/// assigned at push and survive eviction, like DeadLetterQueue.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  void Push(TraceRecord record);

  /// Reserves the next ordinal without pushing a record, so the
  /// ordinal can be attached to exemplars *while* the trace is still
  /// in flight; the finished record lands via PushReserved. A
  /// reserved ordinal that is never pushed (the event was shed after
  /// reservation) leaves a gap — total() counts reservations.
  uint64_t Reserve();
  /// Pushes a record whose ordinal was pre-assigned by Reserve().
  void PushReserved(TraceRecord record);

  struct Snapshot {
    uint64_t total = 0;                // ordinals assigned since creation
    std::vector<TraceRecord> records;  // oldest kept first
  };
  Snapshot TakeSnapshot() const;

  uint64_t total() const;
  size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t total_ = 0;
  std::deque<TraceRecord> records_;
};

/// Records one frame-lifecycle stage segment into the shared
/// `geostreams_e2e_latency_us{stage=...}` family — the end-to-end
/// latency plane. `label_key`/`label_value` scope the series (source
/// name for ingest-side stages, query/pipeline for delivery-side).
/// When `trace` carries a reserved ring ordinal the observation is
/// exemplar-linked, closing the metrics -> TRACE loop. Null registry
/// is a no-op.
void ObserveE2eStage(MetricsRegistry* metrics, const std::string& stage,
                     const std::string& label_key,
                     const std::string& label_value, uint64_t latency_us,
                     const TraceContext* trace);

}  // namespace geostreams

#endif  // GEOSTREAMS_OBS_TRACE_H_
