#include "obs/event_log.h"

#include "common/string_util.h"
#include "obs/trace.h"

namespace geostreams {

const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
  }
  return "info";
}

std::string FlightEvent::ToString() const {
  std::string line = StringPrintf(
      "EV %llu wall_us=%llu sev=%s comp=%s kind=%s",
      static_cast<unsigned long long>(ordinal),
      static_cast<unsigned long long>(wall_us), EventSeverityName(severity),
      component.c_str(), kind.c_str());
  if (!detail.empty()) {
    line += ' ';
    line += detail;
  }
  return line;
}

uint64_t EventLog::Append(EventSeverity severity, std::string component,
                          std::string kind, std::string detail) {
  FlightEvent event;
  event.wall_us = TraceWallNowUs();
  event.severity = severity;
  event.component = std::move(component);
  event.kind = std::move(kind);
  event.detail = std::move(detail);
  std::lock_guard<std::mutex> lock(mu_);
  event.ordinal = total_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t ordinal = event.ordinal;
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
  return ordinal;
}

EventLog::Snapshot EventLog::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.total = total_.load(std::memory_order_relaxed);
  snap.events.assign(events_.begin(), events_.end());
  return snap;
}

}  // namespace geostreams
