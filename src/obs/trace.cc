#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/metrics_registry.h"

namespace geostreams {

namespace {
thread_local TraceContext* g_active_trace = nullptr;
}  // namespace

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceWallNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string TraceRecord::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "TR %llu trace=%llu pipeline=%s origin=%s wall_us=%llu "
                "queue_us=%llu total_us=%llu",
                static_cast<unsigned long long>(ordinal),
                static_cast<unsigned long long>(trace_id),
                pipeline.empty() ? "-" : pipeline.c_str(),
                origin.empty() ? "-" : origin.c_str(),
                static_cast<unsigned long long>(born_wall_us),
                static_cast<unsigned long long>(queue_wait_us),
                static_cast<unsigned long long>(total_us));
  std::string out = buf;
  if (capture_wall_us != 0 || admit_wall_us != 0 || durable_wall_us != 0) {
    std::snprintf(buf, sizeof(buf),
                  " capture_us=%llu admit_us=%llu durable_us=%llu",
                  static_cast<unsigned long long>(capture_wall_us),
                  static_cast<unsigned long long>(admit_wall_us),
                  static_cast<unsigned long long>(durable_wall_us));
    out += buf;
  }
  for (const TraceSpan& span : spans) {
    std::snprintf(buf, sizeof(buf), " %s=%llu/%llu", span.name.c_str(),
                  static_cast<unsigned long long>(span.exclusive_us),
                  static_cast<unsigned long long>(span.inclusive_us));
    out += buf;
  }
  return out;
}

TraceContext::TraceContext(uint64_t trace_id, std::string origin)
    : trace_id_(trace_id),
      origin_(std::move(origin)),
      born_us_(TraceNowUs()),
      born_wall_us_(TraceWallNowUs()) {}

std::shared_ptr<TraceContext> TraceContext::Fork(std::string pipeline) {
  auto fork = std::make_shared<TraceContext>(trace_id_, origin_);
  fork->pipeline_ = std::move(pipeline);
  fork->born_us_ = born_us_;
  fork->born_wall_us_ = born_wall_us_;
  fork->capture_wall_us_ = capture_wall_us_;
  fork->admit_wall_us_ = admit_wall_us_;
  fork->durable_wall_us_ = durable_wall_us_;
  fork->last_anchor_wall_us_ = last_anchor_wall_us_;
  // Exactly one fork per frame owns the per-source stages: the first
  // takes the root's ownership, later forks (and the root) lose it.
  fork->source_stage_owner_ = source_stage_owner_;
  source_stage_owner_ = false;
  return fork;
}

bool TraceContext::ClaimTotalStage() {
  if (!source_stage_owner_ || total_claimed_) return false;
  total_claimed_ = true;
  return true;
}

uint64_t TraceContext::MarkDequeued() {
  if (enqueued_us_ == 0) return 0;
  uint64_t now = TraceNowUs();
  queue_wait_us_ = now > enqueued_us_ ? now - enqueued_us_ : 0;
  return queue_wait_us_;
}

void TraceContext::SetIngestAnchors(uint64_t capture_wall_us,
                                    uint64_t admit_wall_us,
                                    uint64_t durable_wall_us) {
  capture_wall_us_ = capture_wall_us;
  admit_wall_us_ = admit_wall_us;
  durable_wall_us_ = durable_wall_us;
  if (durable_wall_us != 0) {
    last_anchor_wall_us_ = durable_wall_us;
  } else if (admit_wall_us != 0) {
    last_anchor_wall_us_ = admit_wall_us;
  } else {
    last_anchor_wall_us_ = capture_wall_us;
  }
}

uint64_t TraceContext::AdvanceStage(uint64_t now_wall_us) {
  const uint64_t prev = last_anchor_wall_us_;
  last_anchor_wall_us_ = now_wall_us;
  if (prev == 0 || now_wall_us <= prev) return 0;
  return now_wall_us - prev;
}

TraceRecord TraceContext::Finish() const {
  TraceRecord record;
  record.ordinal = ring_ordinal_ == kNoRingOrdinal ? 0 : ring_ordinal_;
  record.trace_id = trace_id_;
  record.origin = origin_;
  record.pipeline = pipeline_;
  record.queue_wait_us = queue_wait_us_;
  record.born_wall_us = born_wall_us_;
  record.capture_wall_us = capture_wall_us_;
  record.admit_wall_us = admit_wall_us_;
  record.durable_wall_us = durable_wall_us_;
  uint64_t now = TraceNowUs();
  record.total_us = now > born_us_ ? now - born_us_ : 0;
  // SpanTimer destructors fire innermost-first; flip to delivery order.
  record.spans.assign(spans_.rbegin(), spans_.rend());
  return record;
}

SpanTimer::SpanTimer(TraceContext* trace, const std::string& name,
                     MetricHistogram* histogram)
    : trace_(trace),
      name_(name),
      histogram_(histogram),
      start_us_(TraceNowUs()),
      saved_child_us_(trace->child_us_) {
  trace_->child_us_ = 0;
}

SpanTimer::~SpanTimer() {
  uint64_t now = TraceNowUs();
  uint64_t inclusive = now > start_us_ ? now - start_us_ : 0;
  uint64_t children = trace_->child_us_;
  uint64_t exclusive = inclusive > children ? inclusive - children : 0;
  // This span is itself a child of whatever encloses it.
  trace_->child_us_ = saved_child_us_ + inclusive;
  TraceSpan span;
  span.name = name_;
  span.exclusive_us = exclusive;
  span.inclusive_us = inclusive;
  trace_->spans_.push_back(std::move(span));
  if (histogram_ != nullptr) {
    if (trace_->ring_ordinal_ != TraceContext::kNoRingOrdinal) {
      histogram_->ObserveWithExemplar(exclusive, trace_->ring_ordinal_,
                                      trace_->pipeline_);
    } else {
      histogram_->Observe(exclusive);
    }
  }
}

TraceContext* ActiveTrace() { return g_active_trace; }

ScopedTraceActivation::ScopedTraceActivation(TraceContext* trace)
    : previous_(g_active_trace) {
  g_active_trace = trace;
}

ScopedTraceActivation::~ScopedTraceActivation() { g_active_trace = previous_; }

void TraceRing::Push(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.ordinal = total_++;
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

uint64_t TraceRing::Reserve() {
  std::lock_guard<std::mutex> lock(mu_);
  return total_++;
}

void TraceRing::PushReserved(TraceRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

TraceRing::Snapshot TraceRing::TakeSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.total = total_;
  snap.records.assign(records_.begin(), records_.end());
  return snap;
}

uint64_t TraceRing::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void ObserveE2eStage(MetricsRegistry* metrics, const std::string& stage,
                     const std::string& label_key,
                     const std::string& label_value, uint64_t latency_us,
                     const TraceContext* trace) {
  if (metrics == nullptr) return;
  MetricHistogram* hist = metrics->GetHistogram(
      "geostreams_e2e_latency_us",
      "Frame lifecycle stage latency (wall-clock microseconds between "
      "consecutive stage anchors; stage=total is capture to delivery)",
      {{"stage", stage}, {label_key, label_value}},
      MetricHistogram::LatencyBucketsUs());
  if (hist == nullptr) return;
  if (trace != nullptr &&
      trace->ring_ordinal() != TraceContext::kNoRingOrdinal) {
    hist->ObserveWithExemplar(latency_us, trace->ring_ordinal(),
                              trace->pipeline());
  } else {
    hist->Observe(latency_us);
  }
}

}  // namespace geostreams
