// Structured flight recorder: a bounded ring of the control-plane
// moments an operator asks about first when a stream goes stale —
// storage degraded/healed, a pipeline quarantined or restarted, a
// source silenced by the liveness sweep, an overload NACK burst, a
// retention prune, a slow consumer disconnected. Subsystems append
// one-line structured events; the ring keeps the most recent
// `capacity` of them and is dumped over the control plane by the
// `EVENTS` verb and `GET /eventz`.
//
// The contract mirrors TraceRing/DeadLetterQueue: ordinals are
// assigned at append and survive eviction, so a reader can tell "I
// missed 40 events" from "nothing happened". Appends take one short
// mutex hold (no I/O, no allocation beyond the strings already
// built); the hot data path never appends — only control-plane
// transitions do, so the lock is uncontended in steady state.

#ifndef GEOSTREAMS_OBS_EVENT_LOG_H_
#define GEOSTREAMS_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace geostreams {

enum class EventSeverity : uint8_t {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
};

const char* EventSeverityName(EventSeverity severity);

/// One recorded control-plane transition.
struct FlightEvent {
  uint64_t ordinal = 0;     // assigned at append; survives eviction
  uint64_t wall_us = 0;     // Unix-epoch microseconds at append
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;    // emitting subsystem, e.g. "governor"
  std::string kind;         // transition, e.g. "degraded"
  std::string detail;       // free-form context (may contain spaces)

  /// One line: `EV <ordinal> wall_us=<epoch-us> sev=<s> comp=<c>
  /// kind=<k> <detail>`.
  std::string ToString() const;
};

/// Bounded, thread-safe event ring. Capacity 0 is clamped to 1.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 256)
      : capacity_(capacity ? capacity : 1) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Records one event, evicting the oldest beyond capacity. Returns
  /// the assigned ordinal.
  uint64_t Append(EventSeverity severity, std::string component,
                  std::string kind, std::string detail);

  struct Snapshot {
    uint64_t total = 0;               // appended since creation
    std::vector<FlightEvent> events;  // oldest kept first
  };
  Snapshot TakeSnapshot() const;

  /// Appended since creation (>= kept). Lock-free read.
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<FlightEvent> events_;
};

}  // namespace geostreams

#endif  // GEOSTREAMS_OBS_EVENT_LOG_H_
