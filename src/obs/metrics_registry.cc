#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geostreams {

namespace {

// Prometheus label values escape backslash, double-quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// Renders `{k1="v1",k2="v2"}` (empty string for no labels). Used both
// as the series map key and verbatim in the exposition output.
std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first;
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += "\"";
  }
  out += "}";
  return out;
}

// Same, but with an extra `le` label appended for histogram buckets.
std::string RenderLabelsWithLe(const MetricLabels& labels,
                               const std::string& le) {
  std::string out = "{";
  for (const auto& kv : labels) {
    out += kv.first;
    out += "=\"";
    out += EscapeLabelValue(kv.second);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

// OpenMetrics exemplar annotation appended to a `_bucket` line (before
// its newline): ` # {trace="<ordinal>",pipeline="<p>"} <value>`. The
// trace label is the TraceRing ordinal of the exemplared observation,
// so `TRACE <query-id>` output lines (`TR <ordinal> ...`) resolve it.
void AppendExemplar(std::string* out,
                    const std::vector<MetricHistogram::Exemplar>& exemplars,
                    size_t bucket) {
  if (bucket >= exemplars.size()) return;
  const MetricHistogram::Exemplar& ex = exemplars[bucket];
  if (!ex.has) return;
  *out += " # {trace=\"" + std::to_string(ex.trace_ordinal) +
          "\",pipeline=\"" + EscapeLabelValue(ex.pipeline) + "\"} " +
          std::to_string(ex.value);
}

}  // namespace

MetricHistogram::MetricHistogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_.push_back(1);
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<uint64_t> MetricHistogram::ExponentialBuckets(uint64_t start,
                                                    double factor,
                                                    size_t count) {
  std::vector<uint64_t> bounds;
  bounds.reserve(count);
  double bound = static_cast<double>(start);
  for (size_t i = 0; i < count; ++i) {
    uint64_t rounded = static_cast<uint64_t>(std::llround(bound));
    if (bounds.empty() || rounded > bounds.back()) bounds.push_back(rounded);
    bound *= factor;
  }
  return bounds;
}

const std::vector<uint64_t>& MetricHistogram::LatencyBucketsUs() {
  // 1us, 4us, 16us, ..., ~16.8s: 13 bounds cover sub-microsecond
  // operators through multi-second stalls at 4x resolution.
  static const std::vector<uint64_t> kBounds = ExponentialBuckets(1, 4.0, 13);
  return kBounds;
}

const std::vector<uint64_t>& MetricHistogram::DepthBuckets() {
  // 1, 4, 16, ..., 65536: queue depths and batch sizes.
  static const std::vector<uint64_t> kBounds = ExponentialBuckets(1, 4.0, 9);
  return kBounds;
}

size_t MetricHistogram::BucketIndex(uint64_t value) const {
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void MetricHistogram::Observe(uint64_t value) {
  size_t idx = BucketIndex(value);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void MetricHistogram::ObserveWithExemplar(uint64_t value,
                                          uint64_t trace_ordinal,
                                          const std::string& pipeline) {
  Observe(value);
  const size_t idx = BucketIndex(value);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (!exemplars_) {
    exemplars_ = std::make_unique<Exemplar[]>(bounds_.size() + 1);
  }
  Exemplar& slot = exemplars_[idx];
  slot.has = true;
  slot.value = value;
  slot.trace_ordinal = trace_ordinal;
  slot.pipeline = pipeline;
}

MetricHistogram::Snapshot MetricHistogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  // A racing Observe may have bumped count_ before its bucket store
  // was visible (or vice versa); make the snapshot self-consistent.
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  snap.count = bucket_total;
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    if (exemplars_) {
      snap.exemplars.assign(exemplars_.get(),
                            exemplars_.get() + bounds_.size() + 1);
    }
  }
  return snap;
}

double MetricHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the target sample, 1-based; percentile 0 answers with the
  // first sample's bucket.
  double target = std::max(1.0, p / 100.0 * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      if (i >= bounds.size()) {
        // +Inf bucket: the best honest answer is the largest finite bound.
        return static_cast<double>(bounds.back());
      }
      double lower = (i == 0) ? 0.0 : static_cast<double>(bounds[i - 1]);
      double upper = static_cast<double>(bounds[i]);
      double frac = (target - static_cast<double>(cumulative)) /
                    static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(bounds.back());
}

void MetricHistogram::MergeFrom(const MetricHistogram& other) {
  if (other.bounds_ != bounds_) return;
  Snapshot snap = other.TakeSnapshot();
  for (size_t i = 0; i < snap.counts.size(); ++i) {
    buckets_[i].fetch_add(snap.counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(snap.count, std::memory_order_relaxed);
  sum_.fetch_add(snap.sum, std::memory_order_relaxed);
}

MetricsRegistry::Series* MetricsRegistry::GetSeries(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind,
                                                    MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, family_created] = families_.try_emplace(name);
  Family& family = fit->second;
  if (family_created) {
    family.kind = kind;
    family.help = help;
  } else if (family.kind != kind) {
    if (!family.kind_conflict_logged) {
      family.kind_conflict_logged = true;
      std::fprintf(stderr,
                   "[metrics] family '%s' re-registered with a different "
                   "type; ignoring\n",
                   name.c_str());
    }
    return nullptr;
  }
  std::string key = RenderLabels(labels);
  auto [sit, series_created] = family.series.try_emplace(std::move(key));
  Series& series = sit->second;
  if (series_created) series.labels = std::move(labels);
  return &series;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     MetricLabels labels) {
  Series* s = GetSeries(name, help, Kind::kCounter, std::move(labels));
  if (s == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (!s->counter) s->counter = std::make_unique<Counter>();
  return s->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 MetricLabels labels) {
  Series* s = GetSeries(name, help, Kind::kGauge, std::move(labels));
  if (s == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (!s->gauge) s->gauge = std::make_unique<Gauge>();
  return s->gauge.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         MetricLabels labels,
                                         std::vector<uint64_t> bounds) {
  Series* s = GetSeries(name, help, Kind::kHistogram, std::move(labels));
  if (s == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  if (!s->histogram) {
    if (bounds.empty()) bounds = MetricHistogram::LatencyBucketsUs();
    s->histogram = std::make_unique<MetricHistogram>(std::move(bounds));
  }
  return s->histogram.get();
}

void MetricsRegistry::AddCollector(std::function<void()> collect) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(collect));
}

std::string MetricsRegistry::RenderPrometheus() {
  return RenderExposition(/*openmetrics=*/false);
}

std::string MetricsRegistry::RenderOpenMetrics() {
  return RenderExposition(/*openmetrics=*/true);
}

std::string MetricsRegistry::RenderExposition(bool openmetrics) {
  // Collectors call back into Get* and refresh mirror metrics, so run
  // them on a copy of the list without holding the registry lock.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& collect : collectors) collect();

  char line[160];
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    // OpenMetrics names the counter family without its `_total`
    // suffix; the sample line keeps the full name.
    std::string meta_name = name;
    if (openmetrics && family.kind == Kind::kCounter &&
        name.size() > 6 && name.compare(name.size() - 6, 6, "_total") == 0) {
      meta_name.resize(name.size() - 6);
    }
    out += "# HELP " + meta_name + " " + family.help + "\n";
    out += "# TYPE " + meta_name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const auto& [label_str, series] : family.series) {
      if (family.kind == Kind::kCounter && series.counter) {
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(series.counter->Value()));
        out += name + label_str + line;
      } else if (family.kind == Kind::kGauge && series.gauge) {
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(series.gauge->Value()));
        out += name + label_str + line;
      } else if (family.kind == Kind::kHistogram && series.histogram) {
        MetricHistogram::Snapshot snap = series.histogram->TakeSnapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < snap.bounds.size(); ++i) {
          cumulative += snap.counts[i];
          std::snprintf(line, sizeof(line), " %llu",
                        static_cast<unsigned long long>(cumulative));
          out += name + "_bucket" +
                 RenderLabelsWithLe(series.labels,
                                    std::to_string(snap.bounds[i])) +
                 line;
          if (openmetrics) AppendExemplar(&out, snap.exemplars, i);
          out += "\n";
        }
        cumulative += snap.counts.back();
        std::snprintf(line, sizeof(line), " %llu",
                      static_cast<unsigned long long>(cumulative));
        out += name + "_bucket" + RenderLabelsWithLe(series.labels, "+Inf") +
               line;
        if (openmetrics) {
          AppendExemplar(&out, snap.exemplars, snap.bounds.size());
        }
        out += "\n";
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(snap.sum));
        out += name + "_sum" + label_str + line;
        std::snprintf(line, sizeof(line), " %llu\n",
                      static_cast<unsigned long long>(snap.count));
        out += name + "_count" + label_str + line;
      }
    }
  }
  if (openmetrics) out += "# EOF\n";
  return out;
}

size_t MetricsRegistry::NumSeries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, family] : families_) n += family.series.size();
  return n;
}

}  // namespace geostreams
