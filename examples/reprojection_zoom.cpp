// Re-projection and zoom: the prototype's data flow for map clients.
//
// A geostationary instrument delivers imagery in satellite scan-angle
// coordinates ("GOES Variable Format" in the paper). The server
// re-projects to latitude/longitude (Sec. 4), a client then asks for
// a magnified (zoomed) view of a sub-region in Mercator, as a web map
// front end would. Writes one PGM per stage so the geometry is easy
// to inspect.
//
//   ./reprojection_zoom [output_dir]

#include <cstdio>
#include <string>

#include "raster/pnm_io.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A geostationary imager at 75W: native coordinates are scan angles.
  InstrumentConfig config;
  config.crs_name = "geos:-75";
  config.cells_per_sector = 128 * 96;
  config.bands = {SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  DsmsServer server;
  auto desc = generator.Descriptor(0);
  if (!desc.ok()) return Fail(desc.status(), "descriptor");
  if (Status st = server.RegisterStream(*desc); !st.ok()) {
    return Fail(st, "register stream");
  }
  std::printf("instrument stream: %s\n", desc->ToString().c_str());

  struct Stage {
    const char* name;
    const char* query;
    int written = 0;
  };
  Stage stages[] = {
      // Raw satellite view (scan-angle lattice).
      {"native", "goes.band1"},
      // The server's standard product: re-projected to lat/lon.
      {"latlon", "reproject(goes.band1, \"latlon\", \"bilinear\")"},
      // A client zoom: Mercator viewport over the Gulf coast,
      // magnified 2x. The optimizer pushes the viewport's region back
      // through both transforms to the satellite stream.
      {"zoom",
       "magnify(region(reproject(goes.band1, \"mercator\", \"bilinear\"), "
       "bbox(-10800000, 2800000, -8900000, 3900000)), 2)"},
  };

  for (Stage& stage : stages) {
    Stage* raw = &stage;
    std::string base = out_dir;
    auto id = server.RegisterQuery(
        stage.query,
        [raw, base](int64_t frame_id, const Raster& raster,
                    const std::vector<uint8_t>&) {
          const std::string path = base + "/" + raw->name + "_scan" +
                                   std::to_string(frame_id) + ".pgm";
          if (WriteRasterPnm(raster, path, 0.0, 1.0).ok()) {
            std::printf("%s scan %lld -> %s (%lld x %lld)\n", raw->name,
                        static_cast<long long>(frame_id), path.c_str(),
                        static_cast<long long>(raster.width()),
                        static_cast<long long>(raster.height()));
            ++raw->written;
          }
        });
    if (!id.ok()) return Fail(id.status(), stage.query);
    auto plan = server.Explain(*id);
    if (plan.ok()) {
      std::printf("--- %s plan ---\n%s", stage.name, plan->c_str());
    }
  }

  if (Status st =
          generator.GenerateScans(0, 2, {server.ingest("goes.band1")});
      !st.ok()) {
    return Fail(st, "generate");
  }
  if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");

  for (const Stage& stage : stages) {
    if (stage.written == 0) {
      std::fprintf(stderr, "stage %s delivered nothing\n", stage.name);
      return 1;
    }
  }
  std::printf("done\n");
  return 0;
}
