// geoquery: command-line continuous-query runner.
//
// Registers an ad-hoc query against a simulated GOES-East instrument
// (5 spectral bands: goes.band1..goes.band5), streams scans through
// the DSMS, and writes every delivered frame as PNG. The closest thing
// to the paper's web front end in a terminal.
//
//   ./geoquery "<query>" [scans] [output_dir]
//
// Examples:
//   ./geoquery "ndvi(goes.band2, goes.band1)" 4 /tmp
//   ./geoquery "region(reproject(goes.band4, \"lcc\"), \
//               bbox(-2000000, -1500000, 2000000, 1500000))" 2 /tmp
//   ./geoquery "aggregate(goes.band4, \"avg\", 4, 1, \
//               bbox(-124, 32, -114, 42))" 8 /tmp

#include <cstdio>
#include <cstdlib>
#include <string>

#include "raster/png_encoder.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: geoquery \"<query>\" [scans] [output_dir]\n"
               "streams: goes.band1 (vis), goes.band2 (nir), goes.band3 "
               "(wv), goes.band4 (ir), goes.band5 (split window)\n");
  return 2;
}

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string query_text = argv[1];
  const int scans = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::string out_dir = argc > 3 ? argv[3] : ".";
  if (scans < 1) return Usage();

  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 128 * 96;
  config.bands = {SpectralBand::kVisible, SpectralBand::kNearInfrared,
                  SpectralBand::kWaterVapor, SpectralBand::kInfrared,
                  SpectralBand::kSplitWindow};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  DsmsServer server;
  for (size_t band = 0; band < config.bands.size(); ++band) {
    auto desc = generator.Descriptor(band);
    if (!desc.ok()) return Fail(desc.status(), "descriptor");
    if (Status st = server.RegisterStream(*desc); !st.ok()) {
      return Fail(st, "register stream");
    }
  }

  int delivered = 0;
  auto id = server.RegisterQuery(
      query_text,
      [&](int64_t frame_id, const Raster& raster,
          const std::vector<uint8_t>&) {
        const std::string path =
            out_dir + "/frame" + std::to_string(frame_id) + ".png";
        Status st = WriteRasterPng(raster, path);
        if (st.ok()) {
          double lo = 0.0, hi = 0.0;
          raster.MinMax(0, &lo, &hi);
          std::printf(
              "scan %-4lld  %4lld x %-4lld x%d  values [%.4g, %.4g]  -> %s\n",
              static_cast<long long>(frame_id),
              static_cast<long long>(raster.width()),
              static_cast<long long>(raster.height()), raster.bands(), lo,
              hi, path.c_str());
          ++delivered;
        } else {
          std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
        }
      });
  if (!id.ok()) return Fail(id.status(), "register query");

  auto plan = server.Explain(*id);
  if (plan.ok()) std::printf("plan:\n%s\n", plan->c_str());

  std::vector<EventSink*> sinks;
  sinks.reserve(config.bands.size());
  for (int b = 1; b <= 5; ++b) {
    sinks.push_back(server.ingest("goes.band" + std::to_string(b)));
  }
  if (Status st = generator.GenerateScans(0, scans, sinks); !st.ok()) {
    return Fail(st, "generate");
  }
  if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");

  std::printf("%d frame(s) delivered\n", delivered);
  return delivered > 0 ? 0 : 1;
}
