// Wildfire monitoring: a disaster-management workload from the
// paper's introduction ("emerging application areas such as ...
// disaster management").
//
// Watches the thermal 10.7um band for anomalously hot pixels inside a
// California-like region of interest, raising an alert whenever hot
// pixels appear, and runs a windowed spatio-temporal aggregate (the
// Sec. 6 extension operator) over the same region to track the mean
// scene temperature per 4-scan window.
//
//   ./wildfire_monitoring

#include <cstdio>
#include <vector>

#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // The imager: visible band plus the 10.7um thermal window.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 128 * 64;
  config.bands = {SpectralBand::kVisible, SpectralBand::kInfrared};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  DsmsServer server;
  for (size_t band = 0; band < config.bands.size(); ++band) {
    auto desc = generator.Descriptor(band);
    if (!desc.ok()) return Fail(desc.status(), "descriptor");
    if (Status st = server.RegisterStream(*desc); !st.ok()) {
      return Fail(st, "register stream");
    }
  }

  // Alert query: thermal pixels hotter than 305 K inside California.
  // The value restriction composes with the spatial one; both are
  // non-blocking filters (Sec. 3.1).
  int alerts = 0;
  auto alert_query = server.RegisterQuery(
      "vrange(region(goes.band4, "
      "polygon(-124.4, 42.0, -120.0, 42.0, -114.1, 34.3, "
      "-114.6, 32.7, -120.7, 33.4, -124.4, 40.2)), 0, 305, 400)",
      [&alerts](int64_t frame_id, const Raster& raster,
                const std::vector<uint8_t>&) {
        // Count delivered hot pixels (nodata cells stay at 0).
        int hot = 0;
        for (int64_t r = 0; r < raster.height(); ++r) {
          for (int64_t c = 0; c < raster.width(); ++c) {
            if (raster.At(c, r) >= 305.0) ++hot;
          }
        }
        if (hot > 0) {
          std::printf("ALERT scan %lld: %d hot pixels (>305 K)\n",
                      static_cast<long long>(frame_id), hot);
          ++alerts;
        }
      });
  if (!alert_query.ok()) return Fail(alert_query.status(), "alert query");

  // Climatology query: mean scene temperature per 4-scan window.
  std::vector<double> window_means;
  auto climate_query = server.RegisterQuery(
      "aggregate(goes.band4, \"avg\", 4, bbox(-124.4, 32.7, -114.1, 42.0))",
      [&window_means](int64_t frame_id, const Raster& raster,
                      const std::vector<uint8_t>&) {
        window_means.push_back(raster.At(0, 0));
        std::printf("window starting scan %lld: mean 10.7um temp %.2f K\n",
                    static_cast<long long>(frame_id), raster.At(0, 0));
      });
  if (!climate_query.ok()) {
    return Fail(climate_query.status(), "climate query");
  }

  std::vector<EventSink*> sinks = {server.ingest("goes.band1"),
                                   server.ingest("goes.band4")};
  if (Status st = generator.GenerateScans(0, 12, sinks); !st.ok()) {
    return Fail(st, "generate");
  }
  if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");

  std::printf("done: %d alert scans, %zu aggregate windows\n", alerts,
              window_means.size());
  // 12 scans of 4-frame windows = 3 complete windows.
  return window_means.size() >= 3 ? 0 : 1;
}
