// Record & replay: archive a live product stream, then run a new
// continuous query over the recorded history.
//
// The paper motivates stream processing against the prevailing
// file-based batch workflows; the archive bridges both worlds — the
// DSMS computes a product stream once, persists it, and any later
// query treats the recording as just another GeoStream.
//
//   ./record_replay [archive_dir]

#include <cstdio>
#include <string>

#include "ops/aggregate_op.h"
#include "server/dsms_server.h"
#include "server/frame_archive.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "./ndvi_archive";
  // The archive directory must exist (no mkdir dependency here).
  if (std::FILE* probe = std::fopen((dir + "/.probe").c_str(), "w")) {
    std::fclose(probe);
    std::remove((dir + "/.probe").c_str());
  } else {
    std::fprintf(stderr, "archive directory %s is not writable\n",
                 dir.c_str());
    return 1;
  }

  // --- Phase 1: record. A live 2-band instrument feeds an NDVI
  // --- product stream whose frames land in the archive.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 96 * 64;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  {
    DsmsServer server;
    for (size_t band = 0; band < 2; ++band) {
      auto desc = generator.Descriptor(band);
      if (!desc.ok()) return Fail(desc.status(), "descriptor");
      if (Status st = server.RegisterStream(*desc); !st.ok()) {
        return Fail(st, "register stream");
      }
    }
    // NDVI values live in [-1, 1]: archive with that fixed range.
    ArchiveWriter archive(dir, -1.0, 1.0);
    // The delivery callback re-feeds assembled frames into the
    // archive writer as a framed stream.
    auto id = server.RegisterQuery(
        "ndvi(goes.band2, goes.band1)",
        [&archive](int64_t frame_id, const Raster& raster,
                   const std::vector<uint8_t>&) {
          FrameInfo info;
          info.frame_id = frame_id;
          info.lattice = raster.lattice();
          Status st = archive.Consume(StreamEvent::FrameBegin(info));
          auto batch = std::make_shared<PointBatch>();
          batch->frame_id = frame_id;
          batch->band_count = 1;
          for (int64_t r = 0; st.ok() && r < raster.height(); ++r) {
            for (int64_t c = 0; c < raster.width(); ++c) {
              batch->Append1(static_cast<int32_t>(c),
                             static_cast<int32_t>(r), frame_id,
                             raster.At(c, r));
            }
          }
          if (st.ok()) st = archive.Consume(StreamEvent::Batch(batch));
          if (st.ok()) {
            st = archive.Consume(StreamEvent::FrameEnd(info));
          }
          if (!st.ok()) {
            std::fprintf(stderr, "archive error: %s\n",
                         st.ToString().c_str());
          }
        });
    if (!id.ok()) return Fail(id.status(), "register query");
    std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                     server.ingest("goes.band1")};
    if (Status st = generator.GenerateScans(0, 6, sinks); !st.ok()) {
      return Fail(st, "generate");
    }
    if (Status st = archive.Finish(); !st.ok()) return Fail(st, "finish");
    std::printf("recorded %lld NDVI frames into %s\n",
                static_cast<long long>(archive.frames_written()),
                dir.c_str());
  }

  // --- Phase 2: replay. A spatio-temporal aggregate runs over the
  // --- recorded product as if it were live.
  ReplayGenerator replay(dir);
  if (Status st = replay.Open(); !st.ok()) return Fail(st, "open archive");
  std::printf("archive holds %zu frames\n", replay.frames().size());

  AggregateOp agg("historical_mean", AggregateFn::kAvg,
                  {MakeBBoxRegion(-125.0, 24.0, -66.0, 50.0)},
                  /*window=*/3, /*slide=*/1);
  NullSink sink;
  agg.BindOutput(&sink);
  if (Status st = replay.Replay(agg.input(0)); !st.ok()) {
    return Fail(st, "replay");
  }
  for (const AggregateResult& r : agg.results()) {
    std::printf("window [%lld, %lld]: mean NDVI %.4f over %llu pixels\n",
                static_cast<long long>(r.window_start_frame),
                static_cast<long long>(r.window_end_frame), r.value,
                static_cast<unsigned long long>(r.count));
  }
  return agg.results().empty() ? 1 : 0;
}
