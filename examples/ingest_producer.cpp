// Remote instrument feeding regional_server's ingest plane.
//
// The GOES-like StreamGenerator that normally runs inside the server
// process runs here instead, publishing through a ProducerClient —
// an EventSink, so the generator cannot tell the difference between
// the in-process ingest boundary and a TCP link. Every event travels
// as a sequenced, checksummed GSF1 ingest message; the client holds
// it in a bounded replay buffer until the server's cumulative ack
// covers it, reconnects with backoff when the link drops, and resumes
// idempotently from the server's `ATTACH` answer.
//
//   ./regional_server --port=7070 --ingest-port=7071 --delay-ms=500 1 20 &
//   ./ingest_producer --port=7071 --scans=20 --delay-ms=400
//
//   ./ingest_producer --port=P [--host=H] [--scans=N] [--delay-ms=D]
//                     [--token=T] [--window=N] [--chaos[=seed]]
//
// --token presents the server's shared producer credential on ATTACH
// (required when the server runs with --ingest-token). --window caps
// the in-flight batch budget of the sliding ack window (0 =
// byte-bounded only).
//
// --chaos wraps the connection in the deterministic fault injector
// (partial writes, mid-frame resets, dropped and delayed acks) and
// prints the fault counters at the end: the stream still arrives
// exactly once because the transport is at-least-once and the server
// deduplicates by sequence number.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "net/producer_client.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ProducerClientOptions options;
  options.source = "goes.band1";
  int num_scans = 6;
  int delay_ms = 150;
  bool chaos = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--host=", 7) == 0) {
      options.host = argv[a] + 7;
    } else if (std::strncmp(argv[a], "--port=", 7) == 0) {
      options.port = static_cast<uint16_t>(std::atoi(argv[a] + 7));
    } else if (std::strncmp(argv[a], "--scans=", 8) == 0) {
      num_scans = std::atoi(argv[a] + 8);
    } else if (std::strncmp(argv[a], "--delay-ms=", 11) == 0) {
      delay_ms = std::atoi(argv[a] + 11);
    } else if (std::strncmp(argv[a], "--token=", 8) == 0) {
      options.auth_token = argv[a] + 8;
    } else if (std::strncmp(argv[a], "--window=", 9) == 0) {
      options.window_messages = static_cast<size_t>(std::atoi(argv[a] + 9));
    } else if (std::strncmp(argv[a], "--chaos", 7) == 0) {
      chaos = true;
      options.flaky.seed = argv[a][7] == '=' ? std::atoll(argv[a] + 8) : 7;
      options.flaky.partial_write_p = 0.05;
      options.flaky.reset_write_p = 0.01;
      options.flaky.drop_read_p = 0.2;
      options.flaky.delay_read_p = 0.1;
    }
  }
  if (options.port == 0) {
    std::fprintf(stderr,
                 "usage: ingest_producer --port=P [--host=H] [--scans=N] "
                 "[--delay-ms=D] [--token=T] [--window=N] "
                 "[--chaos[=seed]]\n");
    return 2;
  }

  // The same instrument regional_server simulates in-process — the
  // server registered `goes.band1` from an identical config, so the
  // lattices line up.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 128 * 96;
  config.bands = {SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  ProducerClient producer(options);
  if (Status st = producer.Connect(); !st.ok()) return Fail(st, "connect");
  std::printf("attached to %s:%u as producer of %s%s\n",
              options.host.c_str(), options.port, options.source.c_str(),
              chaos ? " (chaos faults on)" : "");

  for (int scan = 0; scan < num_scans; ++scan) {
    if (Status st = generator.GenerateScans(scan, 1, {&producer}); !st.ok()) {
      return Fail(st, "generate");
    }
    // Paced like a real downlink; the heartbeat keeps the server's
    // liveness sweep off our back through longer pauses.
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    if (Status st = producer.Heartbeat(); !st.ok()) return Fail(st, "ping");
  }
  // Drain the replay buffer: done only when every batch is acked.
  // Stream-end authority stays with the server, so a later producer
  // run can attach again and resume from the last ack.
  if (Status st = producer.Flush(10000); !st.ok()) return Fail(st, "flush");

  const ProducerClientStats& stats = producer.stats();
  std::printf(
      "published=%llu acked=%llu retransmits=%llu reconnects=%llu "
      "nacks=%llu window_stalls=%llu\n",
      static_cast<unsigned long long>(stats.published),
      static_cast<unsigned long long>(stats.acked),
      static_cast<unsigned long long>(stats.retransmits),
      static_cast<unsigned long long>(stats.reconnects),
      static_cast<unsigned long long>(stats.nacks),
      static_cast<unsigned long long>(stats.window_stalls));
  if (chaos) {
    const FlakySocketStats faults = producer.TotalSocketStats();
    std::printf(
        "faults survived: partial_writes=%llu resets=%llu "
        "dropped_acks=%llu delayed_acks=%llu\n",
        static_cast<unsigned long long>(faults.partial_writes),
        static_cast<unsigned long long>(faults.resets),
        static_cast<unsigned long long>(faults.dropped_reads),
        static_cast<unsigned long long>(faults.delayed_reads));
  }
  producer.Close();
  return stats.acked == stats.published ? 0 : 1;
}
