// Multi-user regional subscription server: the Fig. 3 scenario.
//
// Many clients register continuous queries with individual regions of
// interest against one GOES-like stream. The server's dynamic cascade
// tree acts as a single shared spatial-restriction operator (Sec. 4);
// ingest runs decoupled from a consumer thread through a bounded
// queue, like a receiving station would operate.
//
//   ./regional_server [num_clients] [num_scans] [--workers=N]
//                     [--port=P] [--delay-ms=D] [--ingest-port=P]
//                     [--metrics-interval=MS] [--trace-every=N]
//                     [--journal-dir=DIR] [--fsync=per-record|group-commit|off]
//                     [--ingest-token=T] [--store-dir=DIR]
//                     [--control-token=T] [--journal-max-bytes=N]
//                     [--store-max-bytes=N] [--store-max-frames=N]
//
// With --journal-dir=DIR every acked ingest batch is journaled to DIR
// before the ack goes out (--fsync picks the durability policy), and a
// restart recovers the per-source sequence state from disk — acked
// batches survive kill -9, producers resume from the last ack. With
// --ingest-token=T producers must present the token on ATTACH.
//
// With --store-dir=DIR every assembled frame is also recorded into a
// tiled + pyramided historical store, and clients can register hybrid
// queries: `QUERY <text> SINCE <t>` replays recorded frames >= t
// through the query's plan and then cuts over to the live stream
// exactly once. With --control-token=T, mutating control verbs
// (QUERY / UNREGISTER / RESTART / DLQ) require `AUTH T` first; GET
// /metrics and the read-only verbs stay open.
//
// --journal-max-bytes / --store-max-bytes / --store-max-frames put
// disk budgets on the durable planes: retention retires settled
// journal segments (compacting still-unacked records forward) and
// prunes the oldest stored frames to stay inside them. If the disk
// fills anyway, the storage governor degrades the plane — producers
// are NACKed, PutFrame sheds, HEALTH says storage=DEGRADED — and
// self-heals once space frees; queries keep serving throughout.
//
// With --metrics-interval=MS a background thread prints one summary
// line (DsmsServer::SummaryLine) every MS milliseconds — the
// minute-by-minute operator's view; the full registry is one METRICS
// command away. With --trace-every=N every Nth ingested batch carries
// a trace context (TRACE <query-id> shows the sampled spans).
//
// With --workers=N the server runs its query worker pool: every
// client query becomes one scheduler pipeline and N threads execute
// them in parallel (N=0, the default, keeps execution synchronous on
// the ingest thread).
//
// With --port=P the example turns into a real TCP server: instead of
// simulating clients in-process it listens on 127.0.0.1:P (P=0 picks
// an ephemeral port and prints it), streams num_scans scans with
// --delay-ms between them so remote clients (`nc 127.0.0.1 P`) can
// register queries and watch frames arrive, then exits — it never
// runs forever, so scripted runs cannot hang.
//
// With --ingest-port=P (implies server mode) the instrument moves out
// of this process entirely: a second listener accepts remote
// producers (see ingest_producer.cpp) that stream sequenced GSF1
// ingest batches into `goes.band1`, while clients keep registering
// queries on the main port. The server waits a bounded window
// (num_scans * delay_ms), reports the source's ingest counters, and
// exits.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/math_util.h"
#include "net/net_server.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "stream/executor.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

/// Background one-line-summary printer (--metrics-interval). Wakes on
/// a condition variable so shutdown never waits a full interval.
class SummaryPrinter {
 public:
  SummaryPrinter(DsmsServer* server, int interval_ms)
      : server_(server), interval_ms_(interval_ms) {
    if (interval_ms_ > 0) {
      thread_ = std::thread([this] { Loop(); });
    }
  }
  ~SummaryPrinter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                   [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      std::printf("[metrics] %s\n", server_->SummaryLine().c_str());
      std::fflush(stdout);
      lock.lock();
    }
  }

  DsmsServer* server_;
  const int interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

int main(int argc, char** argv) {
  int num_clients = 40;
  int num_scans = 6;
  size_t workers = 0;
  bool serve = false;
  uint16_t port = 0;
  int ingest_port = -1;  // -1 = no producer listener
  int delay_ms = 150;
  int metrics_interval_ms = 0;
  int trace_every = 0;
  std::string journal_dir;
  std::string fsync_policy = "per-record";
  std::string ingest_token;
  std::string store_dir;
  std::string control_token;
  uint64_t journal_max_bytes = 0;
  uint64_t store_max_bytes = 0;
  uint64_t store_max_frames = 0;
  int positional = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::strncmp(argv[a], "--workers=", 10) == 0) {
      const int parsed = std::atoi(argv[a] + 10);
      workers = parsed > 0 ? static_cast<size_t>(parsed) : 0;
    } else if (std::strncmp(argv[a], "--port=", 7) == 0) {
      serve = true;
      port = static_cast<uint16_t>(std::atoi(argv[a] + 7));
    } else if (std::strncmp(argv[a], "--ingest-port=", 14) == 0) {
      serve = true;
      ingest_port = std::atoi(argv[a] + 14);
    } else if (std::strncmp(argv[a], "--delay-ms=", 11) == 0) {
      delay_ms = std::atoi(argv[a] + 11);
    } else if (std::strncmp(argv[a], "--metrics-interval=", 19) == 0) {
      metrics_interval_ms = std::atoi(argv[a] + 19);
    } else if (std::strncmp(argv[a], "--trace-every=", 14) == 0) {
      trace_every = std::atoi(argv[a] + 14);
    } else if (std::strncmp(argv[a], "--journal-dir=", 14) == 0) {
      journal_dir = argv[a] + 14;
    } else if (std::strncmp(argv[a], "--fsync=", 8) == 0) {
      fsync_policy = argv[a] + 8;
    } else if (std::strncmp(argv[a], "--ingest-token=", 15) == 0) {
      ingest_token = argv[a] + 15;
    } else if (std::strncmp(argv[a], "--store-dir=", 12) == 0) {
      store_dir = argv[a] + 12;
    } else if (std::strncmp(argv[a], "--control-token=", 16) == 0) {
      control_token = argv[a] + 16;
    } else if (std::strncmp(argv[a], "--journal-max-bytes=", 20) == 0) {
      journal_max_bytes = std::strtoull(argv[a] + 20, nullptr, 10);
    } else if (std::strncmp(argv[a], "--store-max-bytes=", 18) == 0) {
      store_max_bytes = std::strtoull(argv[a] + 18, nullptr, 10);
    } else if (std::strncmp(argv[a], "--store-max-frames=", 19) == 0) {
      store_max_frames = std::strtoull(argv[a] + 19, nullptr, 10);
    } else if (positional == 0) {
      num_clients = std::atoi(argv[a]);
      ++positional;
    } else {
      num_scans = std::atoi(argv[a]);
      ++positional;
    }
  }

  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 128 * 96;
  config.bands = {SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  DsmsOptions options;
  options.shared_restriction = true;
  options.index_kind = DsmsOptions::IndexKind::kCascadeTree;
  options.workers = workers;
  if (trace_every > 0) {
    options.trace_sample_every = static_cast<size_t>(trace_every);
  }
  if (!journal_dir.empty()) {
    options.journal_dir = journal_dir;
    if (fsync_policy == "per-record") {
      options.journal.fsync = FsyncPolicy::kPerRecord;
    } else if (fsync_policy == "group-commit") {
      options.journal.fsync = FsyncPolicy::kGroupCommit;
    } else if (fsync_policy == "off") {
      options.journal.fsync = FsyncPolicy::kOff;
    } else {
      std::fprintf(stderr,
                   "unknown --fsync=%s (per-record | group-commit | off)\n",
                   fsync_policy.c_str());
      return 1;
    }
  }
  options.store_dir = store_dir;
  // Disk budgets: retention enforces them (settled journal records
  // retire, old store frames prune); real disk pressure beyond them
  // degrades the storage plane instead of crashing the server.
  options.journal_budget.max_bytes = journal_max_bytes;
  options.store_budget.max_bytes = store_max_bytes;
  options.store.retention_max_frames = store_max_frames;
  DsmsServer server(options);
  if (server.store() != nullptr) {
    const TileStoreRecovery& rec = server.store()->recovery();
    std::printf(
        "tile store at %s: %llu frames recovered (%llu tile pages), "
        "%llu torn tails, %llu corrupt regions\n",
        store_dir.c_str(),
        static_cast<unsigned long long>(rec.frames_recovered),
        static_cast<unsigned long long>(rec.tile_pages_recovered),
        static_cast<unsigned long long>(rec.torn_tails),
        static_cast<unsigned long long>(rec.corrupt_regions));
  }
  if (server.journal() != nullptr) {
    const JournalRecovery& rec = server.journal()->recovery();
    std::printf(
        "durable journal at %s (%s fsync): %zu sources recovered, "
        "%llu records replayed, %llu torn tails truncated, "
        "%llu corrupt regions quarantined\n",
        journal_dir.c_str(), FsyncPolicyName(server.journal()->options().fsync),
        rec.sources.size(),
        static_cast<unsigned long long>(rec.records_replayed),
        static_cast<unsigned long long>(rec.torn_tails),
        static_cast<unsigned long long>(rec.corrupt_regions));
    for (const auto& [name, src] : rec.sources) {
      std::printf("  %s: next_seq=%llu (%llu records, %llu dup)\n",
                  name.c_str(),
                  static_cast<unsigned long long>(src.next_seq),
                  static_cast<unsigned long long>(src.records_replayed),
                  static_cast<unsigned long long>(src.duplicate_records));
    }
  }
  if (workers > 0) {
    std::printf("query worker pool: %zu threads\n", server.num_workers());
  }
  if (trace_every > 0) {
    std::printf("tracing every %dth ingested batch (TRACE <id> to dump)\n",
                trace_every);
  }
  SummaryPrinter summaries(&server, metrics_interval_ms);
  auto desc = generator.Descriptor(0);
  if (!desc.ok()) return Fail(desc.status(), "descriptor");
  if (Status st = server.RegisterStream(*desc); !st.ok()) {
    return Fail(st, "register stream");
  }

  if (serve) {
    // Real TCP mode: remote clients register their own queries over
    // the control plane while this thread plays instrument.
    NetServerOptions net_options;
    net_options.port = port;
    net_options.ingest_port = ingest_port;
    net_options.ingest_auth_token = ingest_token;
    net_options.control_auth_token = control_token;
    NetServer net(&server, net_options);
    if (!ingest_token.empty()) {
      std::printf("producers must ATTACH with the shared token\n");
    }
    if (!control_token.empty()) {
      std::printf("mutating control verbs require AUTH <token>\n");
    }
    if (Status st = net.Start(); !st.ok()) return Fail(st, "net start");
    std::printf("listening on 127.0.0.1:%u (%d scans, %d ms apart)\n",
                net.port(), num_scans, delay_ms);
    std::printf("  try:  nc 127.0.0.1 %u\n", net.port());
    std::printf(
        "        QUERY region(goes.band1, bbox(-105, 35, -100, 40))\n");
    std::printf("        METRICS            (Prometheus exposition)\n");
    if (server.store() != nullptr) {
      std::printf(
          "        QUERY goes.band1 SINCE 0   (replay history, then live)\n");
    }
    if (trace_every > 0) {
      std::printf("        TRACE <query-id>   (sampled span records)\n");
    }
    if (ingest_port >= 0) {
      // Remote-fed mode: the instrument lives in a producer process
      // (ingest_producer.cpp). Wait a bounded window for its batches,
      // report the source's ingest counters, and exit — this process
      // keeps stream-end authority, so a producer that merely
      // disconnects can attach again and resume from the last ack.
      std::printf("ingest plane on 127.0.0.1:%u\n", net.ingest_port());
      std::printf("  feed it:  ./ingest_producer --port=%u --scans=%d\n",
                  net.ingest_port(), num_scans);
      for (int scan = 0; scan < num_scans; ++scan) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      if (auto stats = net.IngestStats("goes.band1"); stats.ok()) {
        std::printf(
            "ingest: delivered=%llu duplicates=%llu gaps=%llu next=%llu\n",
            static_cast<unsigned long long>(stats->delivered),
            static_cast<unsigned long long>(stats->duplicates),
            static_cast<unsigned long long>(stats->gaps),
            static_cast<unsigned long long>(stats->next_expected));
      } else {
        std::printf("ingest: no producer attached\n");
      }
      if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");
      net.Stop();
      std::printf("ingest window closed after %d x %d ms; exiting\n",
                  num_scans, delay_ms);
      return 0;
    }
    for (int scan = 0; scan < num_scans; ++scan) {
      if (Status st =
              generator.GenerateScans(scan, 1, {server.ingest("goes.band1")});
          !st.ok()) {
        return Fail(st, "generate");
      }
      if (Status st = server.Flush(); !st.ok()) return Fail(st, "flush");
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");
    net.Stop();
    std::printf("served %d scans to %zu connected clients; exiting\n",
                num_scans, net.num_sessions());
    return 0;
  }

  // Each "client" subscribes to a random city-to-state-sized window
  // over the CONUS footprint.
  struct Client {
    QueryId id = 0;
    uint64_t frames = 0;
    uint64_t pixels = 0;
  };
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < num_clients; ++i) {
    const double lon0 =
        -124.0 + HashToUnit(static_cast<uint64_t>(i) * 3 + 0) * 50.0;
    const double lat0 =
        25.0 + HashToUnit(static_cast<uint64_t>(i) * 3 + 1) * 18.0;
    const double size =
        1.0 + HashToUnit(static_cast<uint64_t>(i) * 3 + 2) * 7.0;
    char query[160];
    std::snprintf(query, sizeof(query),
                  "region(goes.band1, bbox(%.2f, %.2f, %.2f, %.2f))", lon0,
                  lat0, lon0 + size, lat0 + size);
    auto client = std::make_unique<Client>();
    Client* raw = client.get();
    auto id = server.RegisterQuery(
        query, [raw](int64_t, const Raster& raster,
                     const std::vector<uint8_t>&) {
          ++raw->frames;
          raw->pixels +=
              static_cast<uint64_t>(raster.num_pixels());
        });
    if (!id.ok()) return Fail(id.status(), "register client query");
    client->id = *id;
    clients.push_back(std::move(client));
  }
  std::printf("registered %d regional subscriptions\n", num_clients);

  // Decoupled ingest: the generator produces into a bounded queue, the
  // worker thread drives the server.
  {
    StageRunner ingest(server.ingest("goes.band1"), 128);
    if (Status st = generator.GenerateScans(0, num_scans, {&ingest});
        !st.ok()) {
      return Fail(st, "generate");
    }
    if (Status st = ingest.Drain(); !st.ok()) return Fail(st, "drain");
  }
  if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");

  // Per-client report + a sample unsubscribe.
  uint64_t total_pixels = 0;
  for (size_t i = 0; i < clients.size(); ++i) {
    total_pixels += clients[i]->pixels;
    if (i < 5) {
      std::printf("client %zu: %llu frames, %llu pixels delivered\n", i,
                  static_cast<unsigned long long>(clients[i]->frames),
                  static_cast<unsigned long long>(clients[i]->pixels));
    }
  }
  std::printf("... (%zu clients total, %llu pixels delivered overall)\n",
              clients.size(),
              static_cast<unsigned long long>(total_pixels));
  std::printf("operator memory: %llu bytes across %zu owners (peak %llu)\n",
              static_cast<unsigned long long>(server.memory().TotalBytes()),
              server.memory().Snapshot().size(),
              static_cast<unsigned long long>(
                  server.memory().HighWaterBytes()));

  if (workers > 0) {
    // Supervision summary: per-health query counts plus pool-wide
    // fault counters (all zero on a clean run).
    size_t healthy = 0, degraded = 0, quarantined = 0;
    for (const auto& client : clients) {
      auto health = server.QueryHealth(client->id);
      if (!health.ok()) continue;
      switch (*health) {
        case PipelineHealth::kRunning:
          ++healthy;
          break;
        case PipelineHealth::kDegraded:
          ++degraded;
          break;
        case PipelineHealth::kQuarantined:
          ++quarantined;
          std::printf("  quarantined query %lld: %s\n",
                      static_cast<long long>(client->id),
                      server.QueryError(client->id).ToString().c_str());
          break;
      }
    }
    ScheduledQueueStats totals;
    for (const auto& qs : server.SchedulerStats()) totals.MergeFrom(qs);
    std::printf(
        "query health: %zu running, %zu degraded, %zu quarantined "
        "(%llu dead-lettered, %llu restarts, %llu rejected)\n",
        healthy, degraded, quarantined,
        static_cast<unsigned long long>(totals.dead_letters),
        static_cast<unsigned long long>(totals.restarts),
        static_cast<unsigned long long>(totals.rejected));
  }

  if (Status st = server.UnregisterQuery(clients[0]->id); !st.ok()) {
    return Fail(st, "unregister");
  }
  std::printf("client 0 unsubscribed; %zu queries remain\n",
              server.num_queries());
  return server.num_queries() == clients.size() - 1 ? 0 : 1;
}
