// Quickstart: the GeoStreams DSMS in ~80 lines.
//
// Simulates a GOES-East-like imager, registers a continuous NDVI
// query with a region of interest, streams three scans through the
// server, and writes the delivered frames as PNG images.
//
//   ./quickstart [output_dir]

#include <cstdio>
#include <string>

#include "query/explain.h"
#include "raster/png_encoder.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"

using namespace geostreams;

namespace {

int Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "error (%s): %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. A simulated instrument: two reflective bands, row-by-row scan
  //    organization, GOES-style sector schedule.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 96 * 64;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  if (Status st = generator.Init(); !st.ok()) return Fail(st, "generator");

  // 2. A DSMS server with the instrument's bands registered as
  //    GeoStreams.
  DsmsServer server;
  for (size_t band = 0; band < config.bands.size(); ++band) {
    auto desc = generator.Descriptor(band);
    if (!desc.ok()) return Fail(desc.status(), "descriptor");
    if (Status st = server.RegisterStream(*desc); !st.ok()) {
      return Fail(st, "register stream");
    }
  }

  // 3. A continuous query: NDVI over the two bands, restricted to the
  //    south-western US. Delivered frames are written as PNGs.
  int frames_written = 0;
  auto query_id = server.RegisterQuery(
      "region(ndvi(goes.band2, goes.band1), bbox(-125, 30, -100, 45))",
      [&](int64_t frame_id, const Raster& raster,
          const std::vector<uint8_t>&) {
        const std::string path =
            out_dir + "/ndvi_scan" + std::to_string(frame_id) + ".png";
        // NDVI is in [-1, 1]; map that range to gray levels.
        Status st = WriteRasterPng(raster, path, -1.0, 1.0);
        if (st.ok()) {
          std::printf("scan %lld: wrote %s (%lld x %lld)\n",
                      static_cast<long long>(frame_id), path.c_str(),
                      static_cast<long long>(raster.width()),
                      static_cast<long long>(raster.height()));
          ++frames_written;
        }
      });
  if (!query_id.ok()) return Fail(query_id.status(), "register query");

  // 4. Show what the optimizer did with the query.
  auto plan_text = server.Explain(*query_id);
  if (plan_text.ok()) {
    std::printf("optimized plan:\n%s\n", plan_text->c_str());
  }

  // 5. Stream three scans through the server.
  std::vector<EventSink*> sinks = {server.ingest("goes.band2"),
                                   server.ingest("goes.band1")};
  if (Status st = generator.GenerateScans(0, 3, sinks); !st.ok()) {
    return Fail(st, "generate");
  }
  if (Status st = server.EndAllStreams(); !st.ok()) return Fail(st, "end");

  std::printf("done: %d NDVI frames delivered\n", frames_written);
  return frames_written == 3 ? 0 : 1;
}
