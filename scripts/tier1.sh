#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the concurrency-
# sensitive tests (scheduler / executor / multiband) rebuilt and run
# under ThreadSanitizer in a separate build tree.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier-1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tier-1: crash-recovery lane (journal + tile-store kill points) =="
# The chaos audit: 200 seeded server crash/restart cycles against one
# journal directory, the recovery fuzzers (truncation at every offset,
# random bit flips), and the tile store's byte-budget sweep through
# every tile-page write. Seeds are fixed inside the tests, so a
# failure here reproduces deterministically.
cmake --build build -j "${JOBS}" \
      --target journal_test journal_killpoint_test journal_compaction_test \
               tile_store_test tile_store_retention_test
(cd build && \
 ctest --output-on-failure -j "${JOBS}" \
       -R '^(JournalTest|JournalRecoveryTest|JournalFaultTest|JournalFuzzTest|DeadLetterStoreTest|JournalKillPointTest|JournalCompactionTest|TileStoreTest|TileStoreRecoveryTest|TileStoreKillPointTest|TileStoreRetentionTest)')

echo "== tier-1: disk-pressure chaos lane (ENOSPC incidents + governor self-heal) =="
# 200 seeded crash/restart cycles where the injected failures are
# space failures: the disk fills mid-record, the journal NACKs the
# producer at admission, the governor degrades, space frees, and the
# SAME incarnation must heal end to end with zero lost acked records
# (exactly-once delivery + contiguous journal audit). Plus the
# governor state machine, the byte-budget/compaction suites, and the
# live-server ENOSPC e2e (HEALTH/ISTATS DEGRADED, producer NACKs,
# live queries and stored reads keep serving, self-heal).
cmake --build build -j "${JOBS}" \
      --target storage_governor_test disk_pressure_killpoint_test \
               disk_pressure_e2e_test
(cd build && \
 ctest --output-on-failure -j "${JOBS}" \
       -R '^(StorageGovernorTest|DiskPressureKillPointTest|DiskPressureE2eTest)')

echo "== tier-1: TSan lane (scheduler/supervision/server/executor/multiband/net/ingest/obs) =="
cmake -B build-tsan -S . -DGEOSTREAMS_SANITIZE=thread \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "${JOBS}" \
      --target scheduler_test supervisor_test failure_test server_test \
               executor_test multiband_test net_test ingest_test obs_test \
               kernels_test journal_test journal_killpoint_test \
               tile_store_test tile_store_retention_test \
               tile_store_churn_test storage_governor_test catchup_test
(cd build-tsan && \
 ctest --output-on-failure -j "${JOBS}" \
       -R '^(SchedulerTest|SupervisorTest|SchedulerSupervisionTest|FaultInjectorTest|FaultInjectionE2eTest|FailureTest|DsmsServerTest|StageRunnerTest|BoundedEventQueueTest|PipelineTest|MultibandTest|WireProtocolTest|FrameDecoderTest|CommandDispatchTest|ClientSessionTest|NetServerE2eTest|IngestChecksumTest|ServerDlqTest|DeadLetterQueueTest|GeoStreamsClientTest|SocketUtilTest|IngestWireTest|IngestSessionTest|FlakySocketTest|ProducerE2eTest|ProducerAuthTest|JournalTest|JournalRecoveryTest|JournalFaultTest|DeadLetterStoreTest|CounterTest|MetricHistogramTest|MetricsRegistryTest|TraceTest|TraceRingTest|ObsIngestTest|ObsE2eTest|ObsSummaryTest|ObserveE2eStageTest|EventLogTest|LatencyPlaneE2eTest|KernelParityTest|FilterBatchTest|OperatorParityTest|SimdDispatchTest|TileStoreTest|TileStoreRecoveryTest|TileStoreRetentionTest|TileStoreChurnTest|StorageGovernorTest|CatchUpTest)')

echo "== tier-1: ASan+UBSan lane (same concurrency/supervision set) =="
cmake -B build-asan -S . "-DGEOSTREAMS_SANITIZE=address,undefined" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "${JOBS}" \
      --target scheduler_test supervisor_test failure_test server_test \
               executor_test multiband_test net_test ingest_test obs_test \
               kernels_test journal_test journal_killpoint_test \
               journal_compaction_test tile_store_test \
               tile_store_retention_test storage_governor_test \
               disk_pressure_e2e_test catchup_test
(cd build-asan && \
 ctest --output-on-failure -j "${JOBS}" \
       -R '^(SchedulerTest|SupervisorTest|SchedulerSupervisionTest|FaultInjectorTest|FaultInjectionE2eTest|FailureTest|DsmsServerTest|StageRunnerTest|BoundedEventQueueTest|PipelineTest|MultibandTest|WireProtocolTest|FrameDecoderTest|CommandDispatchTest|ClientSessionTest|NetServerE2eTest|IngestChecksumTest|ServerDlqTest|DeadLetterQueueTest|GeoStreamsClientTest|SocketUtilTest|IngestWireTest|IngestSessionTest|FlakySocketTest|ProducerE2eTest|ProducerAuthTest|JournalTest|JournalRecoveryTest|JournalFaultTest|DeadLetterStoreTest|CounterTest|MetricHistogramTest|MetricsRegistryTest|TraceTest|TraceRingTest|ObsIngestTest|ObsE2eTest|ObsSummaryTest|ObserveE2eStageTest|EventLogTest|LatencyPlaneE2eTest|KernelParityTest|FilterBatchTest|OperatorParityTest|SimdDispatchTest|TileStoreTest|TileStoreRecoveryTest|TileStoreRetentionTest|StorageGovernorTest|JournalCompactionTest|DiskPressureE2eTest|CatchUpTest)')

echo "== tier-1: scalar-only lane (GEOSTREAMS_SIMD=OFF) =="
# The portable fallback must pass the same kernel/operator suites it
# shares with the AVX2 build (non-x86 targets compile exactly this).
cmake -B build-scalar -S . -DGEOSTREAMS_SIMD=OFF >/dev/null
cmake --build build-scalar -j "${JOBS}" \
      --target kernels_test restriction_ops_test transform_ops_test \
               compose_test planner_test
(cd build-scalar && \
 ctest --output-on-failure -j "${JOBS}" \
       -R '^(KernelParityTest|FilterBatchTest|OperatorParityTest|SimdDispatchTest|SpatialRestrictionTest|TemporalRestrictionTest|ValueRestrictionTest|RestrictionsTest|ValueTransformTest|StretchTransformTest|AffineTest|MagnifyTest|ReduceTest|ComposeTest|NdviMacroTest|MacroOpsTest|PlannerTest)')

echo "== tier-1: metrics exposition lint (live /metrics scrape) =="
# A malformed exposition fails silently (Prometheus drops the whole
# scrape), so a strict parse of a real GET /metrics body — duplicate
# series, label escaping, le ordering, bucket monotonicity, exemplar
# syntax — gates the build.
(cd build && \
 ctest --output-on-failure \
       -R '^NetServerE2eTest.MetricsExpositionLintPasses$')

echo "== tier-1: tracing overhead microbench (sampling off vs on) =="
# Informational: the sample_every=0 row must sit within run-to-run
# noise of the traced rows (the disabled path is one thread-local
# load + branch per operator); the exemplar/event-log rows price the
# latency plane's primitives.
cmake --build build -j "${JOBS}" --target bench_tracing
./build/bench/bench_tracing --benchmark_min_time=0.2 \
    --benchmark_filter='BM_Tracing_(EndToEnd|UntracedBranch|HistogramObserve|HistogramObserveExemplar|EventLogAppend)' || true

echo "tier-1 OK"
