#include "query/optimizer.h"

#include <gtest/gtest.h>

#include <functional>

#include "query/explain.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::MakeTestCatalog;

Result<ExprPtr> Analyzed(const StreamCatalog& catalog,
                         const std::string& query) {
  GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseQuery(query));
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, e));
  return e;
}

/// Counts nodes of a kind in the tree.
int CountKind(const ExprPtr& e, ExprKind kind) {
  if (!e) return 0;
  return (e->kind == kind ? 1 : 0) + CountKind(e->child, kind) +
         CountKind(e->right, kind);
}

/// Depth (root = 0) of the shallowest node of a kind; -1 if absent.
int DepthOfKind(const ExprPtr& e, ExprKind kind, int depth = 0) {
  if (!e) return -1;
  if (e->kind == kind) return depth;
  const int l = DepthOfKind(e->child, kind, depth + 1);
  if (l >= 0) return l;
  return DepthOfKind(e->right, kind, depth + 1);
}

TEST(OptimizerTest, RemovesTrivialRestrictions) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "region(time(g.nir, all()), all())");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kStreamRef);
}

TEST(OptimizerTest, MergesNestedSpatialRestrictions) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(region(g.nir, bbox(-125,40,-121,45)), "
                    "bbox(-123,40,-119,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(CountKind(*opt, ExprKind::kSpatialRestrict), 1);
  ASSERT_EQ((*opt)->kind, ExprKind::kSpatialRestrict);
  // The merged region is the conjunction.
  EXPECT_TRUE((*opt)->region->Contains(-122.0, 42.0));
  EXPECT_FALSE((*opt)->region->Contains(-124.0, 42.0));
  EXPECT_FALSE((*opt)->region->Contains(-120.0, 42.0));
}

TEST(OptimizerTest, PushesSpatialThroughValueTransform) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(rescale(g.nir, 2, 0), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  // The restriction ends up below the transform.
  EXPECT_EQ((*opt)->kind, ExprKind::kValueTransform);
  EXPECT_EQ((*opt)->child->kind, ExprKind::kSpatialRestrict);
}

TEST(OptimizerTest, PushesRestrictionsThroughShed) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(shed(g.nir, \"points\", 0.5), "
                    "bbox(-125, 40, -123, 45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kShed);
  EXPECT_EQ((*opt)->child->kind, ExprKind::kSpatialRestrict);
}

TEST(OptimizerTest, PushesSpatialThroughBandStack) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(stack(g.nir, g.vis), bbox(-125, 40, -123, 45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kBandStack);
  EXPECT_EQ(CountKind(*opt, ExprKind::kSpatialRestrict), 2);
}

TEST(OptimizerTest, PushesSpatialThroughComposition) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(ndvi(g.nir, g.vis), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  // The top restriction disappears; both inputs are restricted.
  EXPECT_EQ((*opt)->kind, ExprKind::kNdviMacro);
  EXPECT_EQ((*opt)->child->kind, ExprKind::kSpatialRestrict);
  EXPECT_EQ((*opt)->right->kind, ExprKind::kSpatialRestrict);
  EXPECT_EQ(CountKind(*opt, ExprKind::kSpatialRestrict), 2);
}

TEST(OptimizerTest, PushesSpatialThroughReprojectConservatively) {
  StreamCatalog catalog = MakeTestCatalog();
  // The Sec. 3.4 query: R given in UTM must be mapped back into the
  // source CRS and planted below the re-projection.
  auto e = Analyzed(catalog,
                    "region(reproject(g.nir, \"utm:10n\"), "
                    "bbox(500000, 4500000, 600000, 4800000))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  // The original restriction stays on top (conservative rewrite)...
  ASSERT_EQ((*opt)->kind, ExprKind::kSpatialRestrict);
  ASSERT_EQ((*opt)->child->kind, ExprKind::kReproject);
  // ...and a derived restriction appears below the reproject.
  ASSERT_EQ((*opt)->child->child->kind, ExprKind::kSpatialRestrict);
  EXPECT_TRUE((*opt)->child->child->derived_restriction);
  // The derived region, expressed in lat/lon, must cover the UTM box
  // mapped back: UTM 10N easting 500000-600000 is lon -123..-121.8.
  EXPECT_TRUE((*opt)->child->child->region->Contains(-122.5, 41.5));
  // It must not balloon to the whole domain.
  EXPECT_FALSE((*opt)->child->child->region->Contains(-100.0, 20.0));
  // No repeated firing.
  EXPECT_EQ(CountKind(*opt, ExprKind::kSpatialRestrict), 2);
}

TEST(OptimizerTest, PushesSpatialThroughReduce) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(reduce(g.nir, 2), bbox(-125,43,-123,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  ASSERT_EQ((*opt)->kind, ExprKind::kSpatialRestrict);
  ASSERT_EQ((*opt)->child->kind, ExprKind::kReduce);
  ASSERT_EQ((*opt)->child->child->kind, ExprKind::kSpatialRestrict);
  EXPECT_TRUE((*opt)->child->child->derived_restriction);
  // The derived box is inflated by the neighbourhood margin.
  const BoundingBox inner = (*opt)->child->child->region->bounds();
  EXPECT_LT(inner.min_x, -125.0);
  EXPECT_GT(inner.max_x, -123.0);
}

TEST(OptimizerTest, DoesNotPushSpatialThroughStretch) {
  // A stretch computes frame statistics: restricting first would
  // change them, so the rewrite must not fire.
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(stretch(g.nir, \"linear\"), "
                    "bbox(-125,43,-123,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kSpatialRestrict);
  EXPECT_EQ((*opt)->child->kind, ExprKind::kStretch);
  EXPECT_EQ((*opt)->child->child->kind, ExprKind::kStreamRef);
}

TEST(OptimizerTest, PushesTemporalThroughComposition) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "time(ndvi(g.nir, g.vis), range(0, 5))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kNdviMacro);
  EXPECT_EQ(CountKind(*opt, ExprKind::kTemporalRestrict), 2);
}

TEST(OptimizerTest, SpatialSinksBelowTemporal) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(
      catalog, "region(time(g.nir, range(0, 5)), bbox(-125,43,-123,45))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kTemporalRestrict);
  EXPECT_EQ((*opt)->child->kind, ExprKind::kSpatialRestrict);
  // And the rewrite terminates (no ping-pong).
}

TEST(OptimizerTest, FusesNdviPattern) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "div(sub(g.nir, g.vis), add(g.nir, g.vis))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kNdviMacro);
  EXPECT_EQ(CountKind(*opt, ExprKind::kCompose), 0);
}

TEST(OptimizerTest, DoesNotFuseMismatchedPattern) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "div(sub(g.nir, g.vis), add(g.vis, g.nir))");
  ASSERT_TRUE(e.ok());
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kCompose);
}

TEST(OptimizerTest, ExpandsMacrosWhenAsked) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "ndvi(g.nir, g.vis)");
  ASSERT_TRUE(e.ok());
  OptimizerOptions opts;
  opts.expand_macros = true;
  auto opt = OptimizeQuery(catalog, *e, opts);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->kind, ExprKind::kCompose);
  EXPECT_EQ((*opt)->gamma, ComposeFn::kDivide);
  EXPECT_EQ(CountKind(*opt, ExprKind::kNdviMacro), 0);
  EXPECT_EQ(CountKind(*opt, ExprKind::kStreamRef), 4);
}

TEST(OptimizerTest, DisabledRulesLeaveTreeAlone) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(ndvi(g.nir, g.vis), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  OptimizerOptions opts;
  opts.spatial_pushdown = false;
  opts.temporal_pushdown = false;
  opts.merge_restrictions = false;
  opts.remove_trivial = false;
  opts.fuse_ndvi_macro = false;
  OptimizerStats stats;
  auto opt = OptimizeQuery(catalog, *e, opts, &stats);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*opt)->ToString(), (*e)->ToString());
  EXPECT_EQ(stats.rewrites, 0);
}

TEST(OptimizerTest, OriginalTreeIsNotMutated) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(rescale(g.nir, 2, 0), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  const std::string before = (*e)->ToString();
  auto opt = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ((*e)->ToString(), before);
  EXPECT_NE((*opt)->ToString(), before);
}

TEST(OptimizerTest, StatsCountRewrites) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(ndvi(g.nir, g.vis), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  OptimizerStats stats;
  auto opt = OptimizeQuery(catalog, *e, OptimizerOptions{}, &stats);
  ASSERT_TRUE(opt.ok());
  EXPECT_GT(stats.rewrites, 0);
  EXPECT_GT(stats.passes, 1);
}

// --- Equivalence property: optimized and naive plans deliver the
// --- same points on generated streams.

struct EquivalenceCase {
  const char* name;
  const char* query;
};

class RewriteEquivalence : public ::testing::TestWithParam<EquivalenceCase> {
 protected:
  /// Runs `expr` over 3 scans of a 2-band generated instrument and
  /// returns the delivered point map.
  static std::map<std::tuple<int32_t, int32_t, int64_t>, double> Run(
      const ExprPtr& expr) {
    CollectingSink sink;
    auto plan = BuildPlan(expr, &sink);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return {};

    InstrumentConfig config;
    config.crs_name = "latlon";
    config.cells_per_sector = 16 * 12;
    config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
    config.name_prefix = "g";
    StreamGenerator gen(config, ScanSchedule::GoesRoutine());
    EXPECT_TRUE(gen.Init().ok());

    // Wire generator band sinks to plan inputs (missing inputs get a
    // throwaway sink).
    // Band order matches config.bands: index 0 = NIR ("g.band2"),
    // index 1 = VIS ("g.band1").
    NullSink null;
    EventSink* nir = (*plan)->input("g.band2");
    EventSink* vis = (*plan)->input("g.band1");
    std::vector<EventSink*> sinks = {
        nir ? nir : static_cast<EventSink*>(&null),
        vis ? vis : static_cast<EventSink*>(&null)};
    Status st = gen.GenerateScans(0, 3, sinks);
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = gen.Finish(sinks);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return CollectPoints(sink.events());
  }
};

TEST_P(RewriteEquivalence, OptimizedEqualsNaive) {
  // Catalog mirrors the generator's band descriptors.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 16 * 12;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "g";
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  ASSERT_TRUE(gen.Init().ok());
  StreamCatalog catalog;
  for (size_t b = 0; b < 2; ++b) {
    auto d = gen.Descriptor(b);
    ASSERT_TRUE(d.ok());
    GS_ASSERT_OK(catalog.Register(*d));
  }

  auto parsed = ParseQuery(GetParam().query);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  GS_ASSERT_OK(AnalyzeQuery(catalog, *parsed));

  OptimizerOptions naive_opts;
  naive_opts.spatial_pushdown = false;
  naive_opts.temporal_pushdown = false;
  naive_opts.merge_restrictions = false;
  naive_opts.remove_trivial = false;
  naive_opts.fuse_ndvi_macro = false;
  auto naive = OptimizeQuery(catalog, *parsed, naive_opts);
  ASSERT_TRUE(naive.ok());
  auto optimized = OptimizeQuery(catalog, *parsed);
  ASSERT_TRUE(optimized.ok());

  auto naive_points = Run(*naive);
  auto optimized_points = Run(*optimized);
  ASSERT_GT(naive_points.size(), 0u) << GetParam().name;
  EXPECT_EQ(naive_points.size(), optimized_points.size());
  for (const auto& [key, v] : naive_points) {
    auto it = optimized_points.find(key);
    ASSERT_NE(it, optimized_points.end())
        << GetParam().name << ": missing point";
    EXPECT_NEAR(it->second, v, 1e-9) << GetParam().name;
  }
}

// The generator emits CONUS-like sectors spanning lon [-125, -66],
// lat [24, 50] (ScanSchedule::GoesRoutine); regions below target that.
INSTANTIATE_TEST_SUITE_P(
    Queries, RewriteEquivalence,
    ::testing::Values(
        EquivalenceCase{"restricted_ndvi",
                        "region(ndvi(g.band2, g.band1), "
                        "bbox(-120, 30, -100, 45))"},
        EquivalenceCase{"restricted_expanded_ndvi",
                        "region(div(sub(g.band2, g.band1), "
                        "add(g.band2, g.band1)), bbox(-110, 28, -90, 40))"},
        EquivalenceCase{"nested_restrictions",
                        "region(region(vrange(g.band1, 0, 0.1, 0.9), "
                        "bbox(-120, 25, -80, 48)), bbox(-110, 30, -90, 45))"},
        EquivalenceCase{"temporal_over_compose",
                        "time(sub(g.band2, g.band1), range(1, 2))"},
        EquivalenceCase{"rescale_then_region",
                        "region(rescale(g.band1, 100, 5), "
                        "bbox(-115, 30, -95, 42))"},
        EquivalenceCase{
            "reduce_with_region",
            "region(reduce(g.band1, 2), bbox(-115, 30, -95, 42))"},
        EquivalenceCase{"magnify_with_region",
                        "region(magnify(g.band1, 2), "
                        "bbox(-115, 30, -95, 42))"},
        EquivalenceCase{"shed_with_region",
                        "region(shed(g.band1, \"rows\", 0.5), "
                        "bbox(-115, 30, -95, 42))"},
        EquivalenceCase{"stacked_bands_with_region",
                        "region(stack(g.band2, g.band1), "
                        "bbox(-115, 30, -95, 42))"},
        EquivalenceCase{"fused_vs_region_over_shed",
                        "time(region(div(sub(g.band2, g.band1), "
                        "add(g.band2, g.band1)), bbox(-120, 26, -90, 48)), "
                        "range(0, 1))"}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace geostreams
