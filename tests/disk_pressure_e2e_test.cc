// Disk-pressure end-to-end acceptance tests.
//
// The contract under ENOSPC (injected deterministically through the
// shared FaultyFileInjector that backs journal, store, AND the
// governor's write probe): a running server keeps serving live
// queries and stored reads, reports DEGRADED through HEALTH / ISTATS
// / metrics, NACKs producers at journal admission (no fake
// durability), and returns to healthy — with zero lost acked records
// — once space frees up. Plus the catch-up clamp: QUERY ... SINCE a
// frame that retention already pruned serves what remains and counts
// the truncation instead of failing or silently lying.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/geostreams_client.h"
#include "net/net_server.h"
#include "net/producer_client.h"
#include "server/dsms_server.h"
#include "storage/faulty_file.h"
#include "storage/governor.h"
#include "storage/journal.h"
#include "store/tile_store.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestDescriptor;

std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsdp-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Collects the frame ids a query callback delivers.
class FrameIdCollector {
 public:
  FrameCallback Callback() {
    return [this](int64_t frame_id, const Raster&,
                  const std::vector<uint8_t>&) {
      std::lock_guard<std::mutex> lock(mu_);
      ids_.push_back(frame_id);
    };
  }
  std::vector<int64_t> ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> ids_;
};

// ---------------------------------------------------------------------------
// Catch-up clamp: SINCE below the retention horizon

TEST(DiskPressureE2eTest, CatchUpClampsToRetainedHistoryAndCountsIt) {
  DsmsOptions options;
  options.store_dir = FreshDir("store");
  options.store.segment_max_bytes = 1;  // one frame per segment
  options.store.retention_max_frames = 3;
  DsmsServer server(options);
  GS_ASSERT_OK(server.RegisterStream(TestDescriptor("hist.src")));

  const GridLattice lattice = LatLonLattice(16, 12);
  EventSink* sink = server.ingest("hist.src");
  ASSERT_NE(sink, nullptr);
  for (int64_t frame = 1; frame <= 10; ++frame) {
    GS_ASSERT_OK(PushFrame(sink, lattice, frame));
  }
  GS_ASSERT_OK(server.Flush());

  // Retention prunes frames 1..7 (the budget keeps the newest 3).
  ASSERT_NE(server.store(), nullptr);
  GS_ASSERT_OK(server.store()->RunRetentionNow());
  const StoreHorizon horizon = server.store()->Horizon("hist.src");
  ASSERT_EQ(horizon.oldest_frame_id, 8);
  ASSERT_EQ(horizon.pruned_upto, 7);
  ASSERT_GT(horizon.frames_pruned, 0u);

  // A subscriber asks for history from frame 1: the replay clamps to
  // the oldest retained frame, serves 8..10, and counts the clamp.
  FrameIdCollector truncated;
  CatchUpOptions catch_up;
  catch_up.since = 1;
  auto id = server.RegisterQuery("hist.src", truncated.Callback(), catch_up);
  GS_ASSERT_OK(id.status());
  GS_ASSERT_OK(server.Flush());
  EXPECT_EQ(truncated.ids(), (std::vector<int64_t>{8, 9, 10}));
  EXPECT_TRUE(
      Contains(server.RenderMetrics(),
               "geostreams_store_catchup_truncated_total 1"))
      << server.RenderMetrics();

  // A request entirely inside retained history does not count.
  FrameIdCollector intact;
  catch_up.since = 9;
  id = server.RegisterQuery("hist.src", intact.Callback(), catch_up);
  GS_ASSERT_OK(id.status());
  GS_ASSERT_OK(server.Flush());
  EXPECT_EQ(intact.ids(), (std::vector<int64_t>{9, 10}));
  EXPECT_TRUE(
      Contains(server.RenderMetrics(),
               "geostreams_store_catchup_truncated_total 1"))
      << server.RenderMetrics();
}

// ---------------------------------------------------------------------------
// The full ENOSPC incident, over TCP

TEST(DiskPressureE2eTest, ServerShedsNacksAndSelfHealsUnderEnospc) {
  const std::string journal_dir = FreshDir("journal");
  const std::string store_dir = FreshDir("store");

  // One injector backs the journal, the store, and (by the server's
  // governor defaulting) the write probe — exactly one disk.
  FaultyFileInjector injector{FaultyFileOptions{}};

  DsmsOptions options;
  options.journal_dir = journal_dir;
  options.journal.fsync = FsyncPolicy::kPerRecord;
  options.journal.file_factory = injector.Factory();
  options.store_dir = store_dir;
  options.store.file_factory = injector.Factory();
  options.storage_governor.probe_interval_ms = 50;
  auto server = std::make_unique<DsmsServer>(options);
  GS_ASSERT_OK(server->RegisterStream(TestDescriptor("net.src")));
  GS_ASSERT_OK(server->RegisterStream(TestDescriptor("live.src")));
  auto net = std::make_unique<NetServer>(server.get(), NetServerOptions{});
  GS_ASSERT_OK(net->Start());

  // A live subscriber on the in-process band that never touches the
  // journal (its frames only brush the store sink, which sheds).
  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", net->port()));
  auto response = client.Command("QUERY live.src");
  ASSERT_TRUE(response.ok()) << response.status().ToString();

  // A remote producer journals two frames while the disk is healthy.
  ProducerClientOptions popts;
  popts.port = net->port();
  popts.source = "net.src";
  popts.backoff_initial_ms = 1;
  popts.backoff_max_ms = 20;
  popts.backoff_jitter_ms = 2;
  ProducerClient producer(popts);
  GS_ASSERT_OK(producer.Connect());
  const GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame(&producer, lattice, 1));
  GS_ASSERT_OK(PushFrame(&producer, lattice, 2));
  GS_ASSERT_OK(producer.Flush(10000));
  ASSERT_EQ(producer.unacked(), 0u);
  ASSERT_NE(server->store(), nullptr);
  EXPECT_EQ(server->store()->FrameIds("net.src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{1, 2}));

  GS_ASSERT_OK(PushFrame(server->ingest("live.src"), lattice, 1));
  auto live = client.ReadFrame(10000);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live->frame_id, 1);

  // --- The disk fills. -----------------------------------------------------
  injector.SetSpaceQuota(1);

  // The producer's next frame is refused at journal admission: every
  // message is NACKed, nothing is falsely acked, the backlog stays in
  // the replay buffer.
  GS_ASSERT_OK(PushFrame(&producer, lattice, 3));
  EXPECT_FALSE(producer.Flush(500).ok());
  EXPECT_GT(producer.stats().nacks, 0u);
  EXPECT_GT(producer.unacked(), 0u);

  ASSERT_NE(server->governor(), nullptr);
  EXPECT_TRUE(server->governor()->degraded());

  // The incident is loud on every surface.
  auto health = client.Command("HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(Contains(*health, "storage=DEGRADED")) << *health;
  auto istats = client.Command("ISTATS net.src");
  ASSERT_TRUE(istats.ok()) << istats.status().ToString();
  EXPECT_TRUE(Contains(*istats, "storage_degraded=1")) << *istats;
  EXPECT_TRUE(
      Contains(server->RenderMetrics(), "geostreams_storage_degraded 1"));

  // Live queries keep flowing: the store sink sheds the frame loudly
  // but the delivery chain never stalls.
  const uint64_t rejected_before = server->store()->TotalStats().frames_rejected;
  GS_ASSERT_OK(PushFrame(server->ingest("live.src"), lattice, 2));
  live = client.ReadFrame(10000);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  EXPECT_EQ(live->frame_id, 2);
  EXPECT_GT(server->store()->TotalStats().frames_rejected, rejected_before);

  // Stored reads still serve the committed history.
  FrameIdCollector replayed;
  CatchUpOptions catch_up;
  auto qid = server->RegisterQuery("net.src", replayed.Callback(), catch_up);
  GS_ASSERT_OK(qid.status());
  GS_ASSERT_OK(server->Flush());
  EXPECT_EQ(replayed.ids(), (std::vector<int64_t>{1, 2}));

  // --- Space frees up. -----------------------------------------------------
  injector.SetSpaceQuota(0);

  // The producer's retransmits pass the (re-probed) admission gate;
  // the backlog drains and frame 3 lands durably and in the store.
  Status flushed = Status::Unavailable("never flushed");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    flushed = producer.Flush(1000);
    if (flushed.ok()) break;
  }
  GS_ASSERT_OK(flushed);
  EXPECT_EQ(producer.unacked(), 0u);
  EXPECT_EQ(producer.stats().acked, producer.stats().published);
  EXPECT_FALSE(server->governor()->degraded());
  EXPECT_GE(server->governor()->stats().healed, 1u);

  health = client.Command("HEALTH");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(Contains(*health, "storage=OK")) << *health;
  EXPECT_TRUE(
      Contains(server->RenderMetrics(), "geostreams_storage_degraded 0"));

  // Frame 3 reached the store once admission reopened.
  std::vector<int64_t> stored;
  const auto store_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < store_deadline) {
    stored = server->store()->FrameIds("net.src", INT64_MIN, INT64_MAX);
    if (stored.size() == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(stored, (std::vector<int64_t>{1, 2, 3}));

  const uint64_t published = producer.stats().published;

  // --- Zero lost acked records. --------------------------------------------
  // Tear everything down and audit the journal with a clean factory:
  // every acked sequence number is present exactly once, contiguous.
  net.reset();
  server.reset();
  JournalOptions jopts;
  jopts.dir = journal_dir;
  auto journal = IngestJournal::Open(jopts);
  GS_ASSERT_OK(journal.status());
  std::set<uint64_t> seqs;
  uint64_t duplicates = 0;
  GS_ASSERT_OK((*journal)->Replay("net.src", [&](const IngestMessage& m) {
    if (!seqs.insert(m.seq).second) ++duplicates;
  }));
  EXPECT_EQ(duplicates, 0u);
  ASSERT_EQ(seqs.size(), published);
  EXPECT_EQ(*seqs.begin(), 1u);
  EXPECT_EQ(*seqs.rbegin(), published);
}

}  // namespace
}  // namespace geostreams
