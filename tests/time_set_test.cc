#include "ops/time_set.h"

#include <gtest/gtest.h>

namespace geostreams {
namespace {

TEST(TimeSetTest, DefaultContainsNothing) {
  TimeSet empty;
  EXPECT_FALSE(empty.Contains(0));
  EXPECT_FALSE(empty.IsAll());
}

TEST(TimeSetTest, All) {
  TimeSet all = TimeSet::All();
  EXPECT_TRUE(all.IsAll());
  EXPECT_TRUE(all.Contains(-1000));
  EXPECT_TRUE(all.Contains(1LL << 40));
  EXPECT_FALSE(all.DisjointFromRange(0, 0));
}

TEST(TimeSetTest, Instants) {
  TimeSet s = TimeSet::Instants({5, 3, 5, 9});
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(9));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_FALSE(s.Contains(0));
}

TEST(TimeSetTest, Range) {
  TimeSet s = TimeSet::Range(10, 20);
  EXPECT_TRUE(s.Contains(10));
  EXPECT_TRUE(s.Contains(20));  // inclusive
  EXPECT_TRUE(s.Contains(15));
  EXPECT_FALSE(s.Contains(9));
  EXPECT_FALSE(s.Contains(21));
}

TEST(TimeSetTest, RecurringDailyWindow) {
  // Period 96 (15-minute sectors per day), window sectors 40..55.
  TimeSet s = TimeSet::Every(96, 40, 55);
  EXPECT_TRUE(s.Contains(40));
  EXPECT_TRUE(s.Contains(55));
  EXPECT_TRUE(s.Contains(96 + 47));
  EXPECT_TRUE(s.Contains(96 * 10 + 40));
  EXPECT_FALSE(s.Contains(39));
  EXPECT_FALSE(s.Contains(96 + 56));
}

TEST(TimeSetTest, RecurringWithNegativeTimes) {
  TimeSet s = TimeSet::Every(10, 2, 4);
  EXPECT_TRUE(s.Contains(-8));   // -8 mod 10 == 2
  EXPECT_FALSE(s.Contains(-10));  // phase 0
}

TEST(TimeSetTest, UnionOfSpecs) {
  TimeSet s = TimeSet::Instants({1});
  s.Add(TimeSet::Range(10, 12));
  s.Add(TimeSet::Every(100, 50, 51));
  EXPECT_TRUE(s.Contains(1));
  EXPECT_TRUE(s.Contains(11));
  EXPECT_TRUE(s.Contains(150));
  EXPECT_FALSE(s.Contains(2));
  EXPECT_FALSE(s.Contains(52));
}

TEST(TimeSetTest, AddAllAbsorbs) {
  TimeSet s = TimeSet::Instants({1});
  s.Add(TimeSet::All());
  EXPECT_TRUE(s.IsAll());
  EXPECT_TRUE(s.Contains(123456));
}

TEST(TimeSetTest, DisjointFromRangeInstants) {
  TimeSet s = TimeSet::Instants({5, 100});
  EXPECT_TRUE(s.DisjointFromRange(6, 99));
  EXPECT_FALSE(s.DisjointFromRange(0, 5));
  EXPECT_FALSE(s.DisjointFromRange(100, 200));
}

TEST(TimeSetTest, DisjointFromRangeIntervals) {
  TimeSet s = TimeSet::Range(10, 20);
  EXPECT_TRUE(s.DisjointFromRange(21, 30));
  EXPECT_TRUE(s.DisjointFromRange(0, 9));
  EXPECT_FALSE(s.DisjointFromRange(20, 25));
  EXPECT_FALSE(s.DisjointFromRange(0, 10));
  EXPECT_FALSE(s.DisjointFromRange(12, 13));
}

TEST(TimeSetTest, DisjointFromRangeRecurring) {
  TimeSet s = TimeSet::Every(100, 10, 20);
  // A range longer than the period always intersects.
  EXPECT_FALSE(s.DisjointFromRange(0, 150));
  // Within one period, outside the phase window.
  EXPECT_TRUE(s.DisjointFromRange(30, 90));
  EXPECT_FALSE(s.DisjointFromRange(15, 17));
  EXPECT_FALSE(s.DisjointFromRange(5, 12));
  // Range wrapping the period boundary into the next window.
  EXPECT_FALSE(s.DisjointFromRange(95, 112));
  EXPECT_TRUE(s.DisjointFromRange(21, 29));
}

// Property: DisjointFromRange never contradicts Contains.
class DisjointConsistency : public ::testing::TestWithParam<int64_t> {};

TEST_P(DisjointConsistency, NoFalseDisjointness) {
  const int64_t p = GetParam();
  TimeSet s = TimeSet::Every(p, p / 4, p / 2);
  s.Add(TimeSet::Instants({3, p + 1}));
  s.Add(TimeSet::Range(5 * p, 5 * p + 2));
  for (int64_t lo = 0; lo < 3 * p; lo += 7) {
    const int64_t hi = lo + 11;
    if (s.DisjointFromRange(lo, hi)) {
      for (int64_t t = lo; t <= hi; ++t) {
        EXPECT_FALSE(s.Contains(t))
            << "period " << p << " claims disjoint [" << lo << "," << hi
            << "] but contains " << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DisjointConsistency,
                         ::testing::Values(16, 24, 50, 96, 97));

TEST(TimeSetTest, ToStringMentionsPieces) {
  TimeSet s = TimeSet::Instants({7});
  s.Add(TimeSet::Range(1, 2));
  s.Add(TimeSet::Every(10, 3, 4));
  const std::string str = s.ToString();
  EXPECT_NE(str.find("7"), std::string::npos);
  EXPECT_NE(str.find("[1, 2]"), std::string::npos);
  EXPECT_NE(str.find("every 10"), std::string::npos);
}

}  // namespace
}  // namespace geostreams
