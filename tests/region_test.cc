#include "geo/region.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace geostreams {
namespace {

TEST(BoundingBoxTest, Basics) {
  BoundingBox box(10.0, 20.0, 30.0, 40.0);
  EXPECT_FALSE(box.empty());
  EXPECT_DOUBLE_EQ(box.width(), 20.0);
  EXPECT_DOUBLE_EQ(box.height(), 20.0);
  EXPECT_DOUBLE_EQ(box.area(), 400.0);
  EXPECT_TRUE(box.Contains(10.0, 20.0));  // closed boundary
  EXPECT_TRUE(box.Contains(30.0, 40.0));
  EXPECT_FALSE(box.Contains(9.99, 20.0));
}

TEST(BoundingBoxTest, CornerOrderNormalized) {
  BoundingBox box(30.0, 40.0, 10.0, 20.0);
  EXPECT_DOUBLE_EQ(box.min_x, 10.0);
  EXPECT_DOUBLE_EQ(box.max_y, 40.0);
}

TEST(BoundingBoxTest, DefaultIsEmpty) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_FALSE(box.Contains(0.0, 0.0));
  EXPECT_DOUBLE_EQ(box.area(), 0.0);
}

TEST(BoundingBoxTest, IntersectionAndContains) {
  BoundingBox a(0, 0, 10, 10);
  BoundingBox b(5, 5, 15, 15);
  EXPECT_TRUE(a.Intersects(b));
  BoundingBox c = a.Intersection(b);
  EXPECT_DOUBLE_EQ(c.min_x, 5.0);
  EXPECT_DOUBLE_EQ(c.max_x, 10.0);
  EXPECT_TRUE(a.ContainsBox(BoundingBox(1, 1, 9, 9)));
  EXPECT_FALSE(a.ContainsBox(b));
  EXPECT_FALSE(a.Intersects(BoundingBox(20, 20, 30, 30)));
}

TEST(BoundingBoxTest, ExpandToInclude) {
  BoundingBox box;
  box.ExpandToInclude(3.0, 4.0);
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains(3.0, 4.0));
  box.ExpandToInclude(-1.0, 10.0);
  EXPECT_TRUE(box.Contains(0.0, 7.0));
}

TEST(BBoxRegionTest, ContainsMatchesBox) {
  BBoxRegion region(0.0, 0.0, 4.0, 2.0);
  EXPECT_EQ(region.kind(), RegionKind::kBBox);
  EXPECT_TRUE(region.Contains(2.0, 1.0));
  EXPECT_FALSE(region.Contains(5.0, 1.0));
  EXPECT_EQ(region.bounds(), BoundingBox(0.0, 0.0, 4.0, 2.0));
}

TEST(PolygonRegionTest, Triangle) {
  PolygonRegion tri({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_TRUE(tri.Contains(1.0, 1.0));
  EXPECT_TRUE(tri.Contains(4.0, 4.0));
  EXPECT_FALSE(tri.Contains(6.0, 6.0));  // beyond the hypotenuse
  EXPECT_FALSE(tri.Contains(-1.0, 1.0));
}

TEST(PolygonRegionTest, ConcavePolygon) {
  // A "U" shape: the notch in the middle is outside.
  PolygonRegion u({{0, 0}, {10, 0}, {10, 10}, {7, 10}, {7, 3},
                   {3, 3}, {3, 10}, {0, 10}});
  EXPECT_TRUE(u.Contains(1.0, 8.0));   // left arm
  EXPECT_TRUE(u.Contains(9.0, 8.0));   // right arm
  EXPECT_TRUE(u.Contains(5.0, 1.0));   // base
  EXPECT_FALSE(u.Contains(5.0, 8.0));  // notch
}

TEST(PolygonRegionTest, RectanglePolygonMatchesBBox) {
  PolygonRegion rect({{2, 3}, {8, 3}, {8, 7}, {2, 7}});
  BBoxRegion box(2, 3, 8, 7);
  for (double x = 0.25; x < 10.0; x += 0.5) {
    for (double y = 0.25; y < 10.0; y += 0.5) {
      EXPECT_EQ(rect.Contains(x, y), box.Contains(x, y))
          << "at (" << x << ", " << y << ")";
    }
  }
}

TEST(ConstraintRegionTest, Disk) {
  auto disk = ConstraintRegion::Disk(5.0, 5.0, 2.0);
  EXPECT_EQ(disk->kind(), RegionKind::kConstraint);
  EXPECT_TRUE(disk->Contains(5.0, 5.0));
  EXPECT_TRUE(disk->Contains(6.9, 5.0));
  EXPECT_FALSE(disk->Contains(7.1, 5.0));
  EXPECT_FALSE(disk->Contains(6.5, 6.5));  // sqrt(2*1.5^2) > 2
  EXPECT_TRUE(disk->bounds().Contains(3.0, 3.0));
}

TEST(ConstraintRegionTest, HalfPlane) {
  // x + y - 10 <= 0.
  PolynomialConstraint c;
  c.terms = {{1.0, 1, 0}, {1.0, 0, 1}, {-10.0, 0, 0}};
  ConstraintRegion region({c}, BoundingBox(0, 0, 10, 10));
  EXPECT_TRUE(region.Contains(4.0, 4.0));
  EXPECT_FALSE(region.Contains(6.0, 6.0));
}

TEST(EnumeratedRegionTest, SnapsToCells) {
  EnumeratedRegion region({{1.0, 1.0}, {2.0, 3.0}}, /*cell_size=*/1.0);
  EXPECT_EQ(region.size(), 2u);
  EXPECT_TRUE(region.Contains(1.0, 1.0));
  EXPECT_TRUE(region.Contains(1.2, 0.9));   // same cell after rounding
  EXPECT_FALSE(region.Contains(1.6, 1.0));  // next cell
  EXPECT_TRUE(region.Contains(2.0, 3.0));
  EXPECT_FALSE(region.Contains(3.0, 2.0));
}

TEST(EnumeratedRegionTest, DeduplicatesPoints) {
  EnumeratedRegion region({{1.0, 1.0}, {1.1, 1.1}, {0.9, 0.9}}, 1.0);
  EXPECT_EQ(region.size(), 1u);
}

TEST(CompositeRegionTest, UnionAndIntersection) {
  auto a = MakeBBoxRegion(0, 0, 4, 4);
  auto b = MakeBBoxRegion(2, 2, 6, 6);
  auto u = MakeUnionRegion({a, b});
  auto i = MakeIntersectionRegion({a, b});
  EXPECT_TRUE(u->Contains(1.0, 1.0));
  EXPECT_TRUE(u->Contains(5.0, 5.0));
  EXPECT_FALSE(u->Contains(5.0, 1.0));
  EXPECT_TRUE(i->Contains(3.0, 3.0));
  EXPECT_FALSE(i->Contains(1.0, 1.0));
  EXPECT_FALSE(i->Contains(5.0, 5.0));
  // Bounds: union covers both, intersection only the overlap.
  EXPECT_TRUE(u->bounds().Contains(6.0, 6.0));
  EXPECT_FALSE(i->bounds().Contains(1.0, 1.0));
}

TEST(CompositeRegionTest, EmptyIntersectionContainsNothing) {
  CompositeRegion empty(RegionKind::kIntersection, {});
  EXPECT_FALSE(empty.Contains(0.0, 0.0));
}

TEST(AllRegionTest, ContainsEverything) {
  auto all = AllRegion::Instance();
  EXPECT_TRUE(all->Contains(1e9, -1e9));
  EXPECT_EQ(all->kind(), RegionKind::kAll);
}

// Property: for random rectangles, the polygon form and bbox form of
// the same rectangle agree everywhere.
class RectangleEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RectangleEquivalence, PolygonMatchesBBox) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  const double x0 = HashToUnit(seed * 4 + 0) * 100.0;
  const double y0 = HashToUnit(seed * 4 + 1) * 100.0;
  const double w = HashToUnit(seed * 4 + 2) * 50.0 + 0.1;
  const double h = HashToUnit(seed * 4 + 3) * 50.0 + 0.1;
  PolygonRegion poly({{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + h}, {x0, y0 + h}});
  BBoxRegion box(x0, y0, x0 + w, y0 + h);
  for (int i = 0; i < 200; ++i) {
    const double px = HashToUnit(seed * 1000 + static_cast<uint64_t>(i) * 2) *
                      160.0 - 5.0;
    const double py =
        HashToUnit(seed * 1000 + static_cast<uint64_t>(i) * 2 + 1) * 160.0 -
        5.0;
    // Skip points within epsilon of the boundary where the even-odd
    // rule and the closed bbox legitimately differ.
    if (std::fabs(px - x0) < 1e-6 || std::fabs(px - (x0 + w)) < 1e-6 ||
        std::fabs(py - y0) < 1e-6 || std::fabs(py - (y0 + h)) < 1e-6) {
      continue;
    }
    EXPECT_EQ(poly.Contains(px, py), box.Contains(px, py))
        << "seed " << seed << " point (" << px << ", " << py << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RectangleEquivalence,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace geostreams
