// The disk-pressure chaos lane: one ProducerClient survives 200
// seeded server crash/restart cycles where the injected disk failures
// are *space* failures, not just torn tails — a fixed-seed schedule
// of ENOSPC incidents (the FaultyFileInjector space quota fills the
// "disk" mid-record), dead-disk kill points, and lossy acks.
//
// On every ENOSPC cycle the incident must run its full course WITHIN
// the incarnation: the journal NACKs the producer at admission, the
// governor degrades, space frees (the quota lifts), the admission
// probe heals the plane, and the producer's retries drain to zero
// unacked — no restart in between. The torn prefix the failed append
// persisted must be repaired in place (not buried mid-file by the
// healed appends).
//
// The audit, across ALL incarnations: every batch ordinal delivered
// into the chain exactly once; the journal replays sequence 1..N
// contiguously, payload-faithful; ENOSPC really fired; the governor
// really degraded and really healed, every time.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/net_server.h"
#include "net/producer_client.h"
#include "net/wire_protocol.h"
#include "server/dsms_server.h"
#include "storage/faulty_file.h"
#include "storage/governor.h"
#include "storage/journal.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;

using testing_util::TestValue;

constexpr int kCycles = 200;
constexpr int kBatchesPerCycle = 3;
constexpr int kBatches = kCycles * kBatchesPerCycle;
constexpr const char* kSource = "pressure.src";

/// Audit-stamped batch: every timestamp carries `ordinal`.
StreamEvent BatchEvent(int64_t ordinal, size_t n = 8) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = ordinal / 14;
  batch->band_count = 1;
  for (size_t i = 0; i < n; ++i) {
    batch->Append1(static_cast<int32_t>(i),
                   static_cast<int32_t>(ordinal % 12), ordinal,
                   TestValue(batch->frame_id, static_cast<int64_t>(i),
                             ordinal % 12));
  }
  batch->checksum = batch->ComputeChecksum();
  return StreamEvent::Batch(std::move(batch));
}

/// Thread-safe sink recording delivered batch ordinals.
class AuditSink : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (event.kind == EventKind::kPointBatch && event.batch &&
        !event.batch->timestamps.empty()) {
      batch_ids_.push_back(event.batch->timestamps[0]);
    }
    return Status::OK();
  }
  std::vector<int64_t> batch_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> batch_ids_;
};

enum class DiskPlan { kHealthy, kDeadAtByte, kEnospcThenHeal };

/// One server lifetime bound to the shared journal directory.
struct Incarnation {
  std::unique_ptr<AuditSink> audit;
  std::unique_ptr<FaultyFileInjector> injector;  // null = healthy disk
  std::unique_ptr<DsmsServer> server;
  std::unique_ptr<NetServer> net;

  void Crash() {
    if (net) net->Stop();
    net.reset();
    server.reset();
  }
};

TEST(DiskPressureKillPointTest, EnospcIncidentsHealAcross200CrashCycles) {
  const std::string journal_dir =
      ::testing::TempDir() + "gsjournal-pressure-killpoints";
  fs::remove_all(journal_dir);

  const IngestMessage probe = [] {
    IngestMessage m;
    m.source = kSource;
    m.seq = 1;
    m.event = BatchEvent(0);
    return m;
  }();
  const uint64_t record_size = EncodeIngestMessage(probe).size();

  uint16_t port = 0;
  uint64_t torn_tails_recovered = 0;
  uint64_t enospc_injected = 0;
  // Sinks and injectors must outlive their server (reader threads and
  // the journal hold raw pointers), so incarnations are kept.
  std::vector<Incarnation> history;
  history.reserve(kCycles + 1);

  auto boot = [&](DiskPlan plan) -> Incarnation& {
    history.emplace_back();
    Incarnation& inc = history.back();
    inc.audit = std::make_unique<AuditSink>();

    DsmsOptions options;
    options.journal_dir = journal_dir;
    options.journal.fsync = FsyncPolicy::kPerRecord;
    options.storage_governor.probe_interval_ms = 10;
    FaultyFileOptions fopts;
    switch (plan) {
      case DiskPlan::kHealthy:
        break;
      case DiskPlan::kDeadAtByte:
        // Crosses the byte budget mid-record: a torn half-record
        // reaches the file, then the disk is dead for the rest of
        // this incarnation (appends and probes all fail -> NACKs).
        fopts.fail_at_byte = record_size + record_size / 2;
        break;
      case DiskPlan::kEnospcThenHeal:
        // The disk fills mid-record: one append lands, the next
        // tears and fails ResourceExhausted. SetSpaceQuota(0) later
        // in the cycle models the operator freeing space.
        fopts.space_quota_bytes = record_size + record_size / 2;
        break;
    }
    if (plan != DiskPlan::kHealthy) {
      inc.injector = std::make_unique<FaultyFileInjector>(fopts);
      options.journal.file_factory = inc.injector->Factory();
    }
    inc.server = std::make_unique<DsmsServer>(options);
    EXPECT_TRUE(inc.server->journal() != nullptr);
    EXPECT_TRUE(inc.server->governor() != nullptr);
    torn_tails_recovered += inc.server->journal()->recovery().torn_tails;

    NetServerOptions net_options;
    net_options.port = port;
    AuditSink* audit = inc.audit.get();
    net_options.ingest_resolver = [audit](const std::string&) -> EventSink* {
      return audit;
    };
    inc.net = std::make_unique<NetServer>(inc.server.get(), net_options);
    Status started = inc.net->Start();
    for (int attempt = 0; !started.ok() && attempt < 100; ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      started = inc.net->Start();
    }
    EXPECT_TRUE(started.ok()) << started.ToString();
    port = inc.net->port();
    return inc;
  };

  ProducerClientOptions popts;
  popts.source = kSource;
  popts.backoff_initial_ms = 1;
  popts.backoff_max_ms = 20;
  popts.backoff_jitter_ms = 2;
  popts.max_reconnect_attempts = 16;
  popts.resend_timeout_ms = 50;
  popts.flaky.seed = 20260808;
  popts.flaky.drop_read_p = 0.1;  // lossy acks on every connection

  int cycles_crashed_with_unacked = 0;
  int dead_disk_cycles = 0;
  int enospc_cycles = 0;
  int degraded_observed = 0;
  int healed_in_cycle = 0;
  std::unique_ptr<ProducerClient> producer;

  int64_t ordinal = 0;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    DiskPlan plan = DiskPlan::kHealthy;
    if (cycle % 7 == 3) plan = DiskPlan::kDeadAtByte;
    if (cycle % 7 == 5) plan = DiskPlan::kEnospcThenHeal;
    dead_disk_cycles += plan == DiskPlan::kDeadAtByte ? 1 : 0;
    enospc_cycles += plan == DiskPlan::kEnospcThenHeal ? 1 : 0;
    Incarnation& inc = boot(plan);
    if (producer == nullptr) {
      popts.port = port;
      producer = std::make_unique<ProducerClient>(popts);
      Status connected = producer->Connect();
      ASSERT_TRUE(connected.ok()) << connected.ToString();
    } else if (plan == DiskPlan::kHealthy && producer->unacked() > 0) {
      // Best-effort drain on healthy incarnations: bounds the unacked
      // backlog below the in-flight window cap so a dead-disk cycle
      // can never wedge every publish. Failure is fine.
      (void)producer->Flush(1000);
    }

    for (int b = 0; b < kBatchesPerCycle; ++b, ++ordinal) {
      // Publish until the event is in the replay buffer: `published`
      // advances only when the sequence number was consumed, so a
      // retry after any failure mode is safe (no double-assign).
      const StreamEvent event = BatchEvent(ordinal);
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 300) << "ordinal " << ordinal
                                << " never entered the replay buffer";
        const uint64_t before = producer->stats().published;
        Status published = producer->Publish(event);
        (void)published;  // transient trouble is the point
        if (producer->stats().published > before) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }

    if (plan == DiskPlan::kEnospcThenHeal) {
      // Drive the backlog into the full disk until the incident is
      // visible: journal ENOSPC -> NACK -> governor degraded.
      const auto degrade_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!inc.server->governor()->degraded() &&
             std::chrono::steady_clock::now() < degrade_deadline) {
        (void)producer->Flush(100);
      }
      ASSERT_TRUE(inc.server->governor()->degraded())
          << "cycle " << cycle << ": full disk never degraded the plane";
      ++degraded_observed;
      EXPECT_GT(inc.injector->stats().enospc_failures, 0u);
      enospc_injected += inc.injector->stats().enospc_failures;

      // Space frees up. The same incarnation must heal end to end:
      // admission probe flips healthy, retries drain, zero unacked.
      inc.injector->SetSpaceQuota(0);
      Status flushed = Status::Unavailable("never flushed");
      const auto heal_deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (std::chrono::steady_clock::now() < heal_deadline) {
        flushed = producer->Flush(1000);
        if (flushed.ok()) break;
      }
      ASSERT_TRUE(flushed.ok())
          << "cycle " << cycle << ": incident never healed: "
          << flushed.ToString();
      EXPECT_EQ(producer->unacked(), 0u);
      EXPECT_FALSE(inc.server->governor()->degraded());
      EXPECT_GE(inc.server->governor()->stats().healed, 1u);
      ++healed_in_cycle;
    }

    // Crash mid-stream. No flush: whatever the lossy link and the
    // (possibly dead) journal disk left unacked rides the replay
    // buffer into the next incarnation.
    if (producer->unacked() > 0) ++cycles_crashed_with_unacked;
    inc.Crash();
  }

  // Final incarnation on a healthy disk: drain everything.
  boot(DiskPlan::kHealthy);
  Status flushed = Status::OK();
  for (int round = 0; round < 40; ++round) {
    flushed = producer->Flush(2000);
    if (flushed.ok()) break;
  }
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(producer->unacked(), 0u);
  EXPECT_EQ(producer->stats().published, static_cast<uint64_t>(kBatches));

  // --- The audit ---------------------------------------------------
  // Exactly-once delivery across every incarnation and every ENOSPC
  // retry storm: no ordinal delivered twice, none missing.
  std::map<int64_t, int> delivered;
  for (const Incarnation& inc : history) {
    for (int64_t id : inc.audit->batch_ids()) ++delivered[id];
  }
  uint64_t missing = 0;
  for (int64_t o = 0; o < kBatches; ++o) {
    auto it = delivered.find(o);
    if (it == delivered.end()) {
      ++missing;
      ADD_FAILURE() << "ordinal " << o << " was acked but never delivered";
      continue;
    }
    EXPECT_EQ(it->second, 1) << "ordinal " << o << " delivered "
                             << it->second << " times";
  }
  EXPECT_EQ(missing, 0u);
  EXPECT_EQ(delivered.size(), static_cast<size_t>(kBatches));

  // The incidents were real: ENOSPC fired, the plane degraded, and
  // every single incident healed within its own incarnation.
  EXPECT_GT(enospc_cycles, 20);
  EXPECT_GT(enospc_injected, 0u);
  EXPECT_EQ(degraded_observed, enospc_cycles);
  EXPECT_EQ(healed_in_cycle, enospc_cycles);
  // Dead-disk kill points and lossy acks kept the crash path honest.
  EXPECT_GT(dead_disk_cycles, 20);
  EXPECT_GT(cycles_crashed_with_unacked, 0);
  EXPECT_GT(torn_tails_recovered, 0u);
  EXPECT_GT(producer->stats().reconnects, 0u);
  EXPECT_GT(producer->stats().retransmits, 0u);
  EXPECT_GT(producer->stats().nacks, 0u);

  // Tear down the final server, then audit the journal itself: the
  // full sequence 1..N, contiguous, each exactly once, bit-faithful.
  history.back().Crash();
  JournalOptions jopts;
  jopts.dir = journal_dir;
  auto journal = IngestJournal::Open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  std::map<uint64_t, int64_t> journaled;
  Status replayed =
      (*journal)->Replay(kSource, [&journaled](const IngestMessage& m) {
        const int64_t stamp =
            m.event.batch && !m.event.batch->timestamps.empty()
                ? m.event.batch->timestamps[0]
                : -1;
        EXPECT_EQ(journaled.count(m.seq), 0u)
            << "seq " << m.seq << " replayed twice";
        journaled[m.seq] = stamp;
      });
  ASSERT_TRUE(replayed.ok()) << replayed.ToString();
  ASSERT_EQ(journaled.size(), static_cast<size_t>(kBatches));
  for (uint64_t seq = 1; seq <= static_cast<uint64_t>(kBatches); ++seq) {
    ASSERT_EQ(journaled.count(seq), 1u) << "gap at seq " << seq;
    EXPECT_EQ(journaled.at(seq), static_cast<int64_t>(seq - 1));
  }

  fs::remove_all(journal_dir);
}

}  // namespace
}  // namespace geostreams
