#include "stream/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stream/pipeline.h"
#include "ops/restriction_ops.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

StreamEvent MakeBatchEvent(int64_t frame, int32_t col) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = frame;
  batch->band_count = 1;
  batch->Append1(col, 0, frame, 1.0);
  return StreamEvent::Batch(batch);
}

TEST(BoundedEventQueueTest, FifoOrder) {
  BoundedEventQueue queue(8);
  GS_ASSERT_OK(queue.Push(MakeBatchEvent(0, 1)));
  GS_ASSERT_OK(queue.Push(MakeBatchEvent(0, 2)));
  queue.Close();
  StreamEvent e;
  ASSERT_TRUE(queue.Pop(&e));
  EXPECT_EQ(e.batch->cols[0], 1);
  ASSERT_TRUE(queue.Pop(&e));
  EXPECT_EQ(e.batch->cols[0], 2);
  EXPECT_FALSE(queue.Pop(&e));  // closed and drained
}

TEST(BoundedEventQueueTest, PushAfterCloseFails) {
  BoundedEventQueue queue(2);
  queue.Close();
  EXPECT_FALSE(queue.Push(MakeBatchEvent(0, 0)).ok());
}

TEST(BoundedEventQueueTest, BlocksWhenFullUntilConsumed) {
  BoundedEventQueue queue(1);
  GS_ASSERT_OK(queue.Push(MakeBatchEvent(0, 0)));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    Status st = queue.Push(MakeBatchEvent(0, 1));
    EXPECT_TRUE(st.ok());
    second_pushed.store(true);
  });
  // Give the producer a chance to block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  StreamEvent e;
  ASSERT_TRUE(queue.Pop(&e));  // frees capacity
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(StageRunnerTest, DeliversAllEventsToDownstream) {
  CollectingSink sink;
  {
    StageRunner runner(&sink, 16);
    for (int i = 0; i < 100; ++i) {
      GS_ASSERT_OK(runner.Consume(MakeBatchEvent(0, i)));
    }
    GS_ASSERT_OK(runner.Drain());
  }
  EXPECT_EQ(sink.TotalPoints(), 100u);
  // Order preserved.
  int32_t expected = 0;
  for (const StreamEvent& e : sink.events()) {
    EXPECT_EQ(e.batch->cols[0], expected++);
  }
}

TEST(StageRunnerTest, PropagatesDownstreamErrors) {
  class FailingSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      return Status::Internal("boom");
    }
  };
  FailingSink failing;
  StageRunner runner(&failing, 4);
  // The first push may enqueue before the error is seen; eventually
  // pushes start failing and Drain reports the error.
  Status st = Status::OK();
  for (int i = 0; i < 100 && st.ok(); ++i) {
    st = runner.Consume(MakeBatchEvent(0, i));
  }
  Status drain = runner.Drain();
  EXPECT_FALSE(drain.ok());
  EXPECT_EQ(drain.code(), StatusCode::kInternal);
}

TEST(StageRunnerTest, PipelineBehindARunner) {
  // A whole operator chain running on the worker thread.
  auto pipeline = std::make_unique<Pipeline>();
  pipeline->Add(std::make_unique<SpatialRestrictionOp>(
      "r", MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0)));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline->Finish(&sink));
  {
    StageRunner runner(pipeline.get(), 32);
    GridLattice lattice = LatLonLattice(10, 8);
    GS_ASSERT_OK(PushFrame(&runner, lattice, 0));
    GS_ASSERT_OK(runner.Drain());
  }
  EXPECT_EQ(sink.TotalPoints(), 2u * 8u);
}

TEST(StageRunnerTest, ConcurrentDrainIsIdempotent) {
  // Drain used to read/write drained_ and join without a lock, racing
  // with concurrent Drain callers, Consume, and the destructor. Now
  // exactly one caller closes and joins; everyone gets the status.
  CollectingSink sink;
  auto runner = std::make_unique<StageRunner>(&sink, 64);
  for (int i = 0; i < 50; ++i) {
    GS_ASSERT_OK(runner->Consume(MakeBatchEvent(0, i)));
  }
  std::vector<std::thread> drainers;
  for (int t = 0; t < 4; ++t) {
    drainers.emplace_back([&runner] {
      Status st = runner->Drain();
      EXPECT_TRUE(st.ok()) << st.ToString();
    });
  }
  for (auto& t : drainers) t.join();
  runner.reset();  // destructor drains again: still safe
  EXPECT_EQ(sink.TotalPoints(), 50u);
}

TEST(StageRunnerTest, DrainRacesProducersSafely) {
  // Producers keep pushing while another thread drains; pushes after
  // Close fail cleanly, everything accepted before it is delivered.
  CollectingSink sink;
  StageRunner runner(&sink, 16);
  std::atomic<uint64_t> accepted{0};
  std::thread producer([&] {
    for (int i = 0; i < 2000; ++i) {
      if (runner.Consume(MakeBatchEvent(0, i)).ok()) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      } else {
        break;  // queue closed by the drainer
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  GS_ASSERT_OK(runner.Drain());
  producer.join();
  EXPECT_EQ(sink.TotalPoints(), accepted.load());
}

TEST(PipelineTest, EmptyPipelinePassesThrough) {
  Pipeline pipeline;
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  GS_ASSERT_OK(pipeline.Consume(MakeBatchEvent(0, 7)));
  EXPECT_EQ(sink.TotalPoints(), 1u);
}

TEST(PipelineTest, ChainsOperatorsInOrder) {
  Pipeline pipeline;
  pipeline.Add(std::make_unique<SpatialRestrictionOp>(
      "r", MakeBBoxRegion(-125.0, 40.0, -122.0, 45.0)));
  pipeline.Add(std::make_unique<TemporalRestrictionOp>(
      "t", TimeSet::Instants({1})));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  EXPECT_EQ(pipeline.size(), 2u);
  GridLattice lattice = LatLonLattice(10, 8);
  GS_ASSERT_OK(PushFrame(&pipeline, lattice, 0));
  GS_ASSERT_OK(PushFrame(&pipeline, lattice, 1));
  auto points = testing_util::CollectPoints(sink.events());
  ASSERT_GT(points.size(), 0u);
  for (const auto& [key, v] : points) {
    EXPECT_EQ(std::get<2>(key), 1);
  }
}

TEST(PipelineTest, CannotConsumeBeforeFinish) {
  Pipeline pipeline;
  EXPECT_FALSE(pipeline.Consume(MakeBatchEvent(0, 0)).ok());
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  EXPECT_FALSE(pipeline.Finish(&sink).ok());  // double finish
}

}  // namespace
}  // namespace geostreams
