#include "server/synthetic_earth.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geostreams {
namespace {

TEST(SyntheticEarthTest, Deterministic) {
  SyntheticEarth a(42), b(42), c(43);
  EXPECT_DOUBLE_EQ(a.Radiance(SpectralBand::kVisible, -100.0, 35.0, 0),
                   b.Radiance(SpectralBand::kVisible, -100.0, 35.0, 0));
  EXPECT_NE(a.Radiance(SpectralBand::kVisible, -100.0, 35.0, 0),
            c.Radiance(SpectralBand::kVisible, -100.0, 35.0, 0));
}

TEST(SyntheticEarthTest, ReflectiveBandsInUnitRange) {
  SyntheticEarth earth;
  for (int i = 0; i < 500; ++i) {
    const double lon = -180.0 + i * 0.7;
    const double lat = -80.0 + (i % 160);
    for (SpectralBand band :
         {SpectralBand::kVisible, SpectralBand::kNearInfrared}) {
      const double v = earth.Radiance(band, lon, lat, i % 7);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(SyntheticEarthTest, ThermalBandsLookLikeBrightnessTemps) {
  SyntheticEarth earth;
  for (int i = 0; i < 300; ++i) {
    const double lon = -140.0 + i * 0.4;
    const double lat = -60.0 + (i % 120);
    for (SpectralBand band : {SpectralBand::kWaterVapor,
                              SpectralBand::kInfrared,
                              SpectralBand::kSplitWindow}) {
      const double v = earth.Radiance(band, lon, lat, 0);
      EXPECT_GT(v, 150.0);
      EXPECT_LT(v, 370.0);  // fire hotspots can spike ~60 K above sfc
    }
  }
}

TEST(SyntheticEarthTest, FieldsAreSpatiallySmooth) {
  // Consecutive points have close values: the coherence property the
  // paper's stream model relies on.
  SyntheticEarth earth;
  double prev = earth.Radiance(SpectralBand::kVisible, -120.0, 38.0, 0);
  for (int i = 1; i < 200; ++i) {
    const double v = earth.Radiance(SpectralBand::kVisible,
                                    -120.0 + i * 0.01, 38.0, 0);
    EXPECT_LT(std::fabs(v - prev), 0.12) << "jump at step " << i;
    prev = v;
  }
}

TEST(SyntheticEarthTest, NdviRecoversVegetation) {
  // The headline data product: (NIR - VIS) / (NIR + VIS) computed from
  // the two reflective bands must correlate with the underlying
  // vegetation field on cloud-free land.
  SyntheticEarth earth;
  double correlation_num = 0.0, veg_var = 0.0, ndvi_var = 0.0;
  double veg_mean = 0.0, ndvi_mean = 0.0;
  std::vector<std::pair<double, double>> samples;
  for (int i = 0; i < 4000; ++i) {
    const double lon = -130.0 + (i % 80) * 0.9;
    const double lat = 20.0 + (i / 80) * 0.6;
    if (earth.CloudCover(lon, lat, 0) > 0.05) continue;
    if (earth.LandFraction(lon, lat) < 0.9) continue;
    const double nir =
        earth.Radiance(SpectralBand::kNearInfrared, lon, lat, 0);
    const double vis = earth.Radiance(SpectralBand::kVisible, lon, lat, 0);
    const double ndvi = (nir - vis) / (nir + vis);
    samples.emplace_back(earth.Vegetation(lon, lat), ndvi);
  }
  ASSERT_GT(samples.size(), 100u);
  for (const auto& [veg, ndvi] : samples) {
    veg_mean += veg;
    ndvi_mean += ndvi;
  }
  veg_mean /= samples.size();
  ndvi_mean /= samples.size();
  for (const auto& [veg, ndvi] : samples) {
    correlation_num += (veg - veg_mean) * (ndvi - ndvi_mean);
    veg_var += (veg - veg_mean) * (veg - veg_mean);
    ndvi_var += (ndvi - ndvi_mean) * (ndvi - ndvi_mean);
  }
  const double r = correlation_num / std::sqrt(veg_var * ndvi_var);
  EXPECT_GT(r, 0.9) << "NDVI/vegetation correlation too weak";
}

TEST(SyntheticEarthTest, CloudsDriftWithTime) {
  // The cloud deck translates eastward 0.4 degrees per scan: the field
  // at time t equals the t=0 field shifted west by 0.4*t.
  SyntheticEarth earth;
  int cloudy_samples = 0;
  for (int i = 0; i < 400; ++i) {
    const double lon = -140.0 + (i % 40) * 1.7;
    const double lat = -40.0 + (i / 40) * 8.0;
    const double later = earth.CloudCover(lon, lat, 50);
    const double shifted = earth.CloudCover(lon - 0.4 * 50, lat, 0);
    EXPECT_NEAR(later, shifted, 1e-12);
    if (later > 0.0) ++cloudy_samples;
  }
  EXPECT_GT(cloudy_samples, 5);  // the sample actually saw clouds
}

TEST(SyntheticEarthTest, CloudsBrightenVisible) {
  SyntheticEarth earth;
  // Find a heavily clouded point and a clear point over water.
  double clouded_vis = -1.0, clear_vis = -1.0;
  for (int i = 0; i < 20000 && (clouded_vis < 0 || clear_vis < 0); ++i) {
    const double lon = -170.0 + (i % 200) * 0.8;
    const double lat = -50.0 + (i / 200) * 0.7;
    if (earth.LandFraction(lon, lat) > 0.0) continue;  // water only
    const double cloud = earth.CloudCover(lon, lat, 0);
    const double vis = earth.Radiance(SpectralBand::kVisible, lon, lat, 0);
    if (cloud > 0.9 && clouded_vis < 0) clouded_vis = vis;
    if (cloud == 0.0 && clear_vis < 0) clear_vis = vis;
  }
  ASSERT_GE(clouded_vis, 0.0) << "no clouded water point found";
  ASSERT_GE(clear_vis, 0.0) << "no clear water point found";
  EXPECT_GT(clouded_vis, clear_vis + 0.3);
}

TEST(SyntheticEarthTest, InfraredCloudTopsAreCold) {
  SyntheticEarth earth;
  for (int i = 0; i < 20000; ++i) {
    const double lon = -170.0 + (i % 200) * 0.8;
    const double lat = -50.0 + (i / 200) * 0.7;
    if (earth.CloudCover(lon, lat, 0) > 0.95) {
      const double ir = earth.Radiance(SpectralBand::kInfrared, lon, lat, 0);
      EXPECT_LT(ir, 230.0);
      return;
    }
  }
  GTEST_SKIP() << "no opaque cloud found in the sample";
}

TEST(SyntheticEarthTest, FireHotspotsAreTransientThermalAnomalies) {
  SyntheticEarth earth;
  // The pinned northern-California event: active scans 2..9, peaked
  // mid-life, absent before and after.
  EXPECT_DOUBLE_EQ(earth.FireIntensity(-121.5, 39.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(earth.FireIntensity(-121.5, 39.0, 20), 0.0);
  EXPECT_GT(earth.FireIntensity(-121.5, 39.0, 5), 0.5);
  // The anomaly shows in the thermal window against the quiet scene.
  const double before =
      earth.Radiance(SpectralBand::kInfrared, -121.5, 39.0, 0);
  const double during =
      earth.Radiance(SpectralBand::kInfrared, -121.5, 39.0, 5);
  EXPECT_GT(during, before + 20.0);
  // Away from any site the field is unaffected.
  EXPECT_DOUBLE_EQ(earth.FireIntensity(0.0, 0.0, 5), 0.0);
  // Spatially localized: a few degrees away the intensity has decayed.
  EXPECT_LT(earth.FireIntensity(-124.0, 39.0, 5), 0.01);
}

TEST(SyntheticEarthTest, TemperatureDropsTowardPoles) {
  SyntheticEarth earth;
  double equator_sum = 0.0, polar_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    equator_sum += earth.SurfaceTemperatureK(-150.0 + i * 3.0, 0.0);
    polar_sum += earth.SurfaceTemperatureK(-150.0 + i * 3.0, 75.0);
  }
  EXPECT_GT(equator_sum / 50.0, polar_sum / 50.0 + 15.0);
}

}  // namespace
}  // namespace geostreams
