#include "ops/restriction_ops.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

TEST(SpatialRestrictionTest, KeepsOnlyPointsInRegion) {
  // Lattice: 10 x 8 cells of 0.5 deg starting at (-124.75, 44.75).
  GridLattice lattice = LatLonLattice(10, 8);
  // Region covering the first 2 columns (x <= -123.75 boundary is
  // inclusive; use a box strictly between cell centres).
  SpatialRestrictionOp op("r", MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));

  EXPECT_TRUE(WellFormedFrames(sink.events()));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 2u * 8u);
  for (const auto& [key, value] : points) {
    EXPECT_LT(std::get<0>(key), 2);  // only columns 0 and 1 survive
  }
}

TEST(SpatialRestrictionTest, AllRegionPassesEverythingUnchanged) {
  GridLattice lattice = LatLonLattice(6, 5);
  SpatialRestrictionOp op("r", AllRegion::Instance());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 2));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 30u);
  EXPECT_DOUBLE_EQ(points.at({3, 2, 2}), TestValue(2, 3, 2));
}

TEST(SpatialRestrictionTest, DisjointFramePrunedWithoutPointTests) {
  GridLattice lattice = LatLonLattice(10, 8);
  // Region far away from the lattice extent.
  SpatialRestrictionOp op("r", MakeBBoxRegion(0.0, 0.0, 10.0, 10.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  EXPECT_EQ(sink.TotalPoints(), 0u);
  // Frame metadata still flows (frames are forwarded for downstream
  // bookkeeping).
  EXPECT_EQ(sink.NumFrames(), 1u);
}

TEST(SpatialRestrictionTest, NonBlockingNoBuffering) {
  GridLattice lattice = LatLonLattice(20, 20);
  SpatialRestrictionOp op("r", MakeBBoxRegion(-124.0, 41.0, -121.0, 44.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  EXPECT_EQ(op.metrics().buffered_bytes_high_water, 0u);
  EXPECT_GT(op.metrics().points_in, 0u);
}

TEST(SpatialRestrictionTest, PolygonRegionExactTest) {
  GridLattice lattice = LatLonLattice(10, 8);
  // Triangle covering roughly the north-west corner of the extent.
  auto tri = MakePolygonRegion(
      {{-125.0, 45.0}, {-122.0, 45.0}, {-125.0, 42.0}});
  SpatialRestrictionOp op("r", tri);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  auto points = CollectPoints(sink.events());
  ASSERT_GT(points.size(), 0u);
  for (const auto& [key, value] : points) {
    const double x = lattice.CellX(std::get<0>(key));
    const double y = lattice.CellY(std::get<1>(key));
    EXPECT_TRUE(tri->Contains(x, y)) << "(" << x << ", " << y << ")";
  }
}

TEST(TemporalRestrictionTest, FiltersByTimestamp) {
  GridLattice lattice = LatLonLattice(4, 4);
  TemporalRestrictionOp op("t", TimeSet::Range(2, 3));
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 6; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 2u * 16u);
  for (const auto& [key, value] : points) {
    const int64_t t = std::get<2>(key);
    EXPECT_TRUE(t == 2 || t == 3);
  }
  // Frames still forwarded (6 of them).
  EXPECT_EQ(sink.NumFrames(), 6u);
}

TEST(TemporalRestrictionTest, RecurringWindow) {
  GridLattice lattice = LatLonLattice(2, 2);
  TemporalRestrictionOp op("t", TimeSet::Every(4, 0, 0));
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 8; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 2u * 4u);  // frames 0 and 4
}

TEST(ValueRestrictionTest, FiltersByRange) {
  GridLattice lattice = LatLonLattice(10, 1);
  // TestValue(1, col, 0) = 0.01 * col + 0.1; keep [0.12, 0.15].
  ValueRestrictionOp op("v", {{0, 0.115, 0.155}});
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 4u);  // cols 2, 3, 4, 5
  for (const auto& [key, value] : points) {
    EXPECT_GE(value, 0.115);
    EXPECT_LE(value, 0.155);
  }
}

TEST(ValueRestrictionTest, ConjunctionOfRanges) {
  PointBatch batch;
  batch.band_count = 2;
  const double a[2] = {1.0, 10.0};
  const double b[2] = {1.0, 20.0};
  const double c[2] = {2.0, 10.0};
  batch.Append(0, 0, 0, a);
  batch.Append(1, 0, 0, b);
  batch.Append(2, 0, 0, c);
  ValueRestrictionOp op("v", {{0, 0.5, 1.5}, {1, 5.0, 15.0}});
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(
      StreamEvent::Batch(std::make_shared<PointBatch>(batch))));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 1u);  // only point (0,0) passes both
  EXPECT_EQ(std::get<0>(points.begin()->first), 0);
}

TEST(ValueRestrictionTest, BandOutOfRangeFails) {
  PointBatch batch;
  batch.band_count = 1;
  batch.Append1(0, 0, 0, 1.0);
  ValueRestrictionOp op("v", {{3, 0.0, 1.0}});
  CollectingSink sink;
  op.BindOutput(&sink);
  // A predicate on a missing band cannot match: the point is dropped.
  GS_ASSERT_OK(op.input(0)->Consume(
      StreamEvent::Batch(std::make_shared<PointBatch>(batch))));
  EXPECT_EQ(sink.TotalPoints(), 0u);
}

TEST(ValueRestrictionTest, NegativeBandIsError) {
  PointBatch batch;
  batch.band_count = 1;
  batch.Append1(0, 0, 0, 1.0);
  ValueRestrictionOp op("v", {{-1, 0.0, 1.0}});
  CollectingSink sink;
  op.BindOutput(&sink);
  // A negative band would index before the values column (out-of-
  // bounds read); it must surface as an error, not filter results.
  const Status st = op.input(0)->Consume(
      StreamEvent::Batch(std::make_shared<PointBatch>(batch)));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(sink.TotalPoints(), 0u);
}

TEST(SpatialRestrictionTest, BatchBeforeAnyFrameIsError) {
  // No FrameBegin has arrived and no reference lattice was supplied:
  // there is no geometry to map cells to coordinates, and silently
  // using a default lattice would misplace every point.
  SpatialRestrictionOp op("r", MakeBBoxRegion(-125.0, 40.0, -120.0, 45.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(3, 2, 7, 0.5);
  const Status st = op.input(0)->Consume(StreamEvent::Batch(batch));
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sink.TotalPoints(), 0u);
}

TEST(SpatialRestrictionTest, FramelessStreamUsesReferenceLattice) {
  // Point-by-point organizations never emit FrameBegin; the planner
  // passes the stream's reference lattice so bare batches are
  // evaluated against real geometry.
  GridLattice lattice = LatLonLattice(10, 8);
  auto region = MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0);
  SpatialRestrictionOp op("r", region, lattice);
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  for (int32_t col = 0; col < 10; ++col) batch->Append1(col, 0, col, 1.0);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 2u);  // columns 0 and 1, as in the framed test
  for (const auto& [key, value] : points) {
    EXPECT_TRUE(region->Contains(lattice.CellX(std::get<0>(key)),
                                 lattice.CellY(std::get<1>(key))));
  }
}

TEST(SpatialRestrictionTest, ResetRestoresReferenceLattice) {
  GridLattice reference = LatLonLattice(10, 8);
  SpatialRestrictionOp op("r", AllRegion::Instance(), reference);
  CollectingSink sink;
  op.BindOutput(&sink);
  // A frame with a different lattice opens, then the operator is
  // reset mid-frame (supervisor fault path): bare batches must fall
  // back to the reference lattice, not the dead frame's.
  GS_ASSERT_OK(PushFrame(op.input(0), LatLonLattice(4, 4, 2.0), 1));
  op.Reset();
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(0, 0, 9, 1.0);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  EXPECT_GT(sink.TotalPoints(), 0u);
}

TEST(RestrictionsTest, ComposeInSequence) {
  // Chained restrictions behave like a conjunction.
  GridLattice lattice = LatLonLattice(10, 8);
  SpatialRestrictionOp spatial("r",
                               MakeBBoxRegion(-124.3, 40.0, -122.0, 45.0));
  TemporalRestrictionOp temporal("t", TimeSet::Instants({5}));
  CollectingSink sink;
  spatial.BindOutput(temporal.input(0));
  temporal.BindOutput(&sink);
  for (int64_t f = 4; f <= 6; ++f) {
    GS_ASSERT_OK(PushFrame(spatial.input(0), lattice, f));
  }
  auto points = CollectPoints(sink.events());
  ASSERT_GT(points.size(), 0u);
  for (const auto& [key, value] : points) {
    EXPECT_EQ(std::get<2>(key), 5);
  }
}

TEST(RestrictionsTest, ErrorWithoutBoundOutput) {
  SpatialRestrictionOp op("r", AllRegion::Instance());
  GridLattice lattice = LatLonLattice(2, 2);
  EXPECT_FALSE(PushFrame(op.input(0), lattice, 1).ok());
}

}  // namespace
}  // namespace geostreams
