// Coverage for the small shared utilities: logging, metrics,
// diagnostic string forms.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"
#include "core/stream_event.h"
#include "stream/memory_tracker.h"
#include "stream/metrics.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Messages below the level are dropped (no crash, no output check
  // needed beyond exercising the path).
  GEOSTREAMS_LOG(kDebug) << "suppressed " << 42;
  GEOSTREAMS_LOG(kError) << "emitted " << 43;
  SetLogLevel(before);
}

TEST(MetricsTest, HighWaterTracksPeak) {
  OperatorMetrics metrics;
  metrics.SetBuffered(100);
  metrics.SetBuffered(50);
  EXPECT_EQ(metrics.buffered_bytes, 50u);
  EXPECT_EQ(metrics.buffered_bytes_high_water, 100u);
  metrics.SetBuffered(200);
  EXPECT_EQ(metrics.buffered_bytes_high_water, 200u);
  const std::string s = metrics.ToString();
  EXPECT_NE(s.find("high_water=200"), std::string::npos);
  metrics.Reset();
  EXPECT_EQ(metrics.buffered_bytes_high_water, 0u);
}

TEST(MetricsTest, MergeFromSumsHighWaterButKeepsTrueMax) {
  OperatorMetrics a;
  a.SetBuffered(300);
  a.SetBuffered(0);
  OperatorMetrics b;
  b.SetBuffered(120);
  OperatorMetrics merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  // The summed high water is an upper bound (peaks need not coincide);
  // the max records the worst single operator.
  EXPECT_EQ(merged.buffered_bytes_high_water, 420u);
  EXPECT_EQ(merged.buffered_bytes_high_water_max, 300u);
  EXPECT_EQ(merged.buffered_bytes, 120u);
  const std::string s = merged.ToString();
  EXPECT_NE(s.find("high_water=420"), std::string::npos);
  EXPECT_NE(s.find("high_water_max=300"), std::string::npos);
}

TEST(MemoryTrackerTest, AggregatesAcrossOwners) {
  MemoryTracker tracker;
  tracker.Update("a", 100);
  tracker.Update("b", 50);
  EXPECT_EQ(tracker.TotalBytes(), 150u);
  tracker.Update("a", 10);  // replaces, not adds
  EXPECT_EQ(tracker.TotalBytes(), 60u);
  EXPECT_EQ(tracker.HighWaterBytes(), 150u);
  EXPECT_EQ(tracker.OwnerHighWater("a"), 100u);
  EXPECT_EQ(tracker.OwnerHighWater("unknown"), 0u);
  tracker.Reset();
  EXPECT_EQ(tracker.TotalBytes(), 0u);
  EXPECT_EQ(tracker.HighWaterBytes(), 0u);
}

TEST(DiagnosticsTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCrsMismatch), "CrsMismatch");
  EXPECT_STREQ(StatusCodeName(StatusCode::kLatticeMismatch),
               "LatticeMismatch");
}

TEST(DiagnosticsTest, FrameInfoToString) {
  FrameInfo info;
  info.frame_id = 12;
  info.lattice = testing_util::LatLonLattice(4, 4);
  info.expected_points = 16;
  const std::string s = info.ToString();
  EXPECT_NE(s.find("frame 12"), std::string::npos);
  EXPECT_NE(s.find("expected=16"), std::string::npos);
  EXPECT_NE(s.find("latlon"), std::string::npos);
}

TEST(DiagnosticsTest, CollectingSinkHelpers) {
  CollectingSink sink;
  GridLattice lattice = testing_util::LatLonLattice(3, 3);
  GS_ASSERT_OK(testing_util::PushFrame(&sink, lattice, 0));
  GS_ASSERT_OK(testing_util::PushFrame(&sink, lattice, 1));
  EXPECT_EQ(sink.NumFrames(), 2u);
  EXPECT_EQ(sink.TotalPoints(), 18u);
  sink.Clear();
  EXPECT_EQ(sink.events().size(), 0u);
}

TEST(DiagnosticsTest, NullSinkCounts) {
  NullSink sink;
  GridLattice lattice = testing_util::LatLonLattice(3, 2);
  GS_ASSERT_OK(testing_util::PushFrame(&sink, lattice, 0));
  EXPECT_EQ(sink.points(), 6u);
  EXPECT_EQ(sink.events(), 2u + 2u);  // begin + 2 rows + end
}

}  // namespace
}  // namespace geostreams
