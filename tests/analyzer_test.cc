#include "query/analyzer.h"

#include <gtest/gtest.h>

#include <functional>

#include "geo/crs_registry.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::MakeTestCatalog;

Result<ExprPtr> ParseAndAnalyze(const StreamCatalog& catalog,
                                const std::string& query) {
  GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseQuery(query));
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, e));
  return e;
}

TEST(CatalogTest, RegisterAndLookup) {
  StreamCatalog catalog = MakeTestCatalog();
  auto d = catalog.Lookup("g.nir");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->value_set().bands(), 1);
  EXPECT_FALSE(catalog.Lookup("nope").ok());
  // Duplicate registration rejected.
  EXPECT_EQ(catalog.Register(*d).code(), StatusCode::kAlreadyExists);
}

TEST(AnalyzerTest, StreamRefGetsDescriptor) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(catalog, "g.nir");
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->analyzed);
  EXPECT_EQ((*e)->out_desc.name(), "g.nir");
}

TEST(AnalyzerTest, UnknownStreamFails) {
  StreamCatalog catalog = MakeTestCatalog();
  EXPECT_EQ(ParseAndAnalyze(catalog, "missing.stream").status().code(),
            StatusCode::kNotFound);
}

TEST(AnalyzerTest, ClosurePropertyEveryNodeIsAGeoStream) {
  // The algebra is closed: after analysis, every node carries a valid
  // GeoStream descriptor (value set + lattice + CRS).
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(
      catalog,
      "region(reproject(stretch(ndvi(g.nir, g.vis), \"linear\"), "
      "\"utm:10n\"), bbox(400000, 4400000, 700000, 5000000))");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  std::function<void(const ExprPtr&)> check = [&](const ExprPtr& node) {
    if (!node) return;
    EXPECT_TRUE(node->analyzed);
    Status st = node->out_desc.Validate();
    EXPECT_TRUE(st.ok()) << ExprKindName(node->kind) << ": "
                         << st.ToString();
    EXPECT_NE(node->out_desc.crs(), nullptr);
    check(node->child);
    check(node->right);
  };
  check(*e);
}

TEST(AnalyzerTest, ValueTransformResolvesBands) {
  StreamCatalog catalog = MakeTestCatalog();
  auto gray = ParseAndAnalyze(catalog, "gray(cam.rgb)");
  ASSERT_TRUE(gray.ok());
  EXPECT_EQ((*gray)->out_desc.value_set().bands(), 1);
  EXPECT_EQ((*gray)->value_fn.in_bands, 3);
  // gray() on a single-band stream fails.
  EXPECT_FALSE(ParseAndAnalyze(catalog, "gray(g.nir)").ok());
  // band() out of range fails.
  EXPECT_FALSE(ParseAndAnalyze(catalog, "band(cam.rgb, 3)").ok());
  auto band = ParseAndAnalyze(catalog, "band(cam.rgb, 1)");
  ASSERT_TRUE(band.ok());
  EXPECT_EQ((*band)->out_desc.value_set().bands(), 1);
}

TEST(AnalyzerTest, VrangeBandChecks) {
  StreamCatalog catalog = MakeTestCatalog();
  EXPECT_TRUE(ParseAndAnalyze(catalog, "vrange(cam.rgb, 2, 0, 255)").ok());
  EXPECT_FALSE(ParseAndAnalyze(catalog, "vrange(cam.rgb, 3, 0, 255)").ok());
  EXPECT_FALSE(ParseAndAnalyze(catalog, "vrange(g.nir, 0, 1, 0)").ok());
}

TEST(AnalyzerTest, StretchPreconditions) {
  StreamCatalog catalog = MakeTestCatalog();
  EXPECT_TRUE(ParseAndAnalyze(catalog, "stretch(g.nir, \"linear\")").ok());
  // Multi-band: rejected.
  EXPECT_FALSE(ParseAndAnalyze(catalog, "stretch(cam.rgb, \"linear\")").ok());
  // Point-by-point: rejected (no frames to compute statistics over).
  EXPECT_FALSE(ParseAndAnalyze(catalog, "stretch(lidar.z, \"linear\")").ok());
  // Output value set fills the stretch range.
  auto e = ParseAndAnalyze(catalog, "stretch(g.nir, \"histeq\")");
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ((*e)->out_desc.value_set().max_value(), 255.0);
  EXPECT_EQ((*e)->out_desc.organization(),
            PointOrganization::kImageByImage);
}

TEST(AnalyzerTest, SpatialTransformDescriptors) {
  StreamCatalog catalog = MakeTestCatalog();
  auto mag = ParseAndAnalyze(catalog, "magnify(g.nir, 4)");
  ASSERT_TRUE(mag.ok());
  EXPECT_EQ((*mag)->out_desc.reference_lattice().width(), 64);
  auto red = ParseAndAnalyze(catalog, "reduce(g.nir, 4)");
  ASSERT_TRUE(red.ok());
  EXPECT_EQ((*red)->out_desc.reference_lattice().width(), 4);
  EXPECT_FALSE(ParseAndAnalyze(catalog, "reduce(lidar.z, 2)").ok());
  EXPECT_FALSE(ParseAndAnalyze(catalog, "reduce(cam.rgb, 2)").ok());
}

TEST(AnalyzerTest, ReprojectDescriptors) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(catalog, "reproject(g.nir, \"utm:10n\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->out_desc.crs()->name(), "utm:10n");
  EXPECT_EQ((*e)->out_desc.organization(),
            PointOrganization::kImageByImage);
  // Unknown CRS fails.
  EXPECT_FALSE(ParseAndAnalyze(catalog, "reproject(g.nir, \"epsg\")").ok());
  // Identity reprojection keeps geometry.
  auto id = ParseAndAnalyze(catalog, "reproject(g.nir, \"latlon\")");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ((*id)->out_desc.reference_lattice().width(), 16);
}

TEST(AnalyzerTest, CompositionPreconditions) {
  StreamCatalog catalog = MakeTestCatalog();
  // Aligned same-CRS single-band streams: fine.
  EXPECT_TRUE(ParseAndAnalyze(catalog, "sub(g.nir, g.vis)").ok());
  EXPECT_TRUE(ParseAndAnalyze(catalog, "ndvi(g.nir, g.vis)").ok());
  // Misaligned lattices (different resolution): rejected.
  EXPECT_EQ(
      ParseAndAnalyze(catalog, "add(g.nir, lidar.z)").status().code(),
      StatusCode::kLatticeMismatch);
  // Different band counts: rejected.
  EXPECT_FALSE(ParseAndAnalyze(catalog, "add(g.nir, cam.rgb)").ok());
  // Different CRS: rejected.
  StreamCatalog catalog2 = MakeTestCatalog();
  GridLattice merc_lattice(*ResolveCrs("mercator"), 0.0, 0.0, 1000.0,
                           -1000.0, 16, 12);
  GS_ASSERT_OK(catalog2.Register(GeoStreamDescriptor(
      "merc.band", ValueSet::ReflectanceF32(), merc_lattice,
      PointOrganization::kRowByRow, TimestampPolicy::kScanSectorId)));
  EXPECT_EQ(
      ParseAndAnalyze(catalog2, "add(g.nir, merc.band)").status().code(),
      StatusCode::kCrsMismatch);
}

TEST(AnalyzerTest, CompositionTimestampPolicyMismatch) {
  StreamCatalog catalog = MakeTestCatalog();
  GridLattice lattice = testing_util::LatLonLattice(16, 12);
  GS_ASSERT_OK(catalog.Register(GeoStreamDescriptor(
      "g.meas", ValueSet::ReflectanceF32(), lattice,
      PointOrganization::kRowByRow, TimestampPolicy::kMeasurementTime)));
  EXPECT_FALSE(ParseAndAnalyze(catalog, "add(g.nir, g.meas)").ok());
}

TEST(AnalyzerTest, NdviOutputValueSet) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(catalog, "ndvi(g.nir, g.vis)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->out_desc.value_set().name(), "index");
  EXPECT_DOUBLE_EQ((*e)->out_desc.value_set().min_value(), -1.0);
  EXPECT_DOUBLE_EQ((*e)->out_desc.value_set().max_value(), 1.0);
}

TEST(AnalyzerTest, AggregateDescriptor) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(
      catalog,
      "aggregate(g.nir, \"avg\", 4, bbox(-125,40,-123,45), "
      "bbox(-123,40,-121,45))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->out_desc.reference_lattice().width(), 2);
  EXPECT_EQ((*e)->out_desc.reference_lattice().height(), 1);
  EXPECT_FALSE(
      ParseAndAnalyze(catalog, "aggregate(cam.rgb, \"avg\", 1, all())").ok());
}

TEST(AnalyzerTest, IsIdempotent) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = ParseAndAnalyze(catalog, "ndvi(g.nir, g.vis)");
  ASSERT_TRUE(e.ok());
  const std::string before = (*e)->out_desc.ToString();
  GS_ASSERT_OK(AnalyzeQuery(catalog, *e));
  EXPECT_EQ((*e)->out_desc.ToString(), before);
}


TEST(AnalyzerTest, BandStackDescriptors) {
  StreamCatalog catalog = MakeTestCatalog();
  auto two = ParseAndAnalyze(catalog, "stack(g.nir, g.vis)");
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_EQ((*two)->out_desc.value_set().bands(), 2);
  // rgb() of three single-band streams gives a 3-band value set (Z^3).
  auto rgb = ParseAndAnalyze(catalog, "rgb(g.nir, g.vis, g.nir)");
  ASSERT_TRUE(rgb.ok());
  EXPECT_EQ((*rgb)->out_desc.value_set().bands(), 3);
  // Stacking mixed band counts works (1 + 3 = 4)...
  StreamCatalog catalog2 = MakeTestCatalog();
  GS_ASSERT_OK(catalog2.Register(GeoStreamDescriptor(
      "g.rgb", ValueSet::RgbU8(), testing_util::LatLonLattice(16, 12),
      PointOrganization::kRowByRow, TimestampPolicy::kScanSectorId)));
  auto mixed = ParseAndAnalyze(catalog2, "stack(g.nir, g.rgb)");
  ASSERT_TRUE(mixed.ok()) << mixed.status().ToString();
  EXPECT_EQ((*mixed)->out_desc.value_set().bands(), 4);
  // ...but stacks may not exceed kMaxBands, and the usual CRS/lattice
  // preconditions still apply.
  EXPECT_FALSE(
      ParseAndAnalyze(catalog, "stack(g.nir, lidar.z)").ok());
}

}  // namespace
}  // namespace geostreams
