// Scalar/SIMD parity suite for the operator kernels.
//
// Every kernel is compiled twice from one template (scalar + AVX2);
// the contract is BIT-IDENTICAL outputs on the same inputs. These
// tests force each dispatch level in turn over randomized multi-band
// batches and compare outputs with memcmp, plus semantic checks
// against the per-point reference implementations (Region::Contains,
// TimeSet::Contains, ValueFn::fn, ApplyComposeFn). On machines (or
// builds) without AVX2 the forced level clamps to scalar and the
// parity halves compare scalar to itself — still a valid run, just
// not an interesting one.

#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>

#include "core/value.h"
#include "geo/region.h"
#include "ops/restriction_ops.h"
#include "ops/time_set.h"
#include "ops/value_transform_op.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using kernels::FilterBatch;
using kernels::RegionMatcher;
using testing_util::LatLonLattice;

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

class KernelParityTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearSimdLevelForTesting(); }

  /// Runs `fill` once per dispatch level and returns the two outputs.
  template <typename Fill>
  static std::pair<std::vector<double>, std::vector<double>> BothLevels(
      size_t out_size, Fill&& fill) {
    std::vector<double> s(out_size), v(out_size);
    SetSimdLevelForTesting(SimdLevel::kScalar);
    fill(s.data());
    SetSimdLevelForTesting(SimdLevel::kAvx2);
    fill(v.data());
    ClearSimdLevelForTesting();
    return {std::move(s), std::move(v)};
  }

  static void ExpectBitIdentical(const std::vector<double>& a,
                                 const std::vector<double>& b) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
  }

  /// Runs a masking `fill(keep) -> kept` once per dispatch level and
  /// checks mask bytes and counts agree exactly.
  template <typename Fill>
  static std::vector<uint8_t> MaskBothLevels(size_t n, Fill&& fill) {
    std::vector<uint8_t> s(n, 0xAA), v(n, 0x55);  // dirty scratch
    SetSimdLevelForTesting(SimdLevel::kScalar);
    const size_t kept_s = fill(s.data());
    SetSimdLevelForTesting(SimdLevel::kAvx2);
    const size_t kept_v = fill(v.data());
    ClearSimdLevelForTesting();
    EXPECT_EQ(kept_s, kept_v);
    EXPECT_EQ(s, v);
    size_t ones = 0;
    for (uint8_t k : s) ones += k;
    EXPECT_EQ(ones, kept_s);
    return s;
  }
};

std::mt19937& Rng() {
  static std::mt19937 rng(0xC0FFEE);
  return rng;
}

/// Random cell addresses spanning (and overshooting) a w x h lattice.
void RandomCells(size_t n, int w, int h, std::vector<int32_t>* cols,
                 std::vector<int32_t>* rows) {
  std::uniform_int_distribution<int32_t> dc(-2, w + 1), dr(-2, h + 1);
  cols->resize(n);
  rows->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*cols)[i] = dc(Rng());
    (*rows)[i] = dr(Rng());
  }
}

/// Random multi-band batch over the lattice, with a few NaN samples.
PointBatchPtr RandomBatch(const GridLattice& lattice, size_t n, int bands,
                          int64_t frame_id) {
  auto b = std::make_shared<PointBatch>();
  b->frame_id = frame_id;
  b->band_count = bands;
  std::vector<int32_t> cols, rows;
  RandomCells(n, static_cast<int>(lattice.width()),
              static_cast<int>(lattice.height()), &cols, &rows);
  std::uniform_real_distribution<double> dv(-2.0, 2.0);
  std::uniform_int_distribution<int64_t> dt(0, 12);
  std::uniform_int_distribution<int> nan_lottery(0, 40);
  b->cols = std::move(cols);
  b->rows = std::move(rows);
  b->timestamps.resize(n);
  b->values.resize(n * static_cast<size_t>(bands));
  for (size_t i = 0; i < n; ++i) {
    b->timestamps[i] = dt(Rng());
    for (int k = 0; k < bands; ++k) {
      double v = dv(Rng());
      if (nan_lottery(Rng()) == 0) v = kNaN;
      b->values[i * static_cast<size_t>(bands) + static_cast<size_t>(k)] = v;
    }
  }
  return b;
}

TEST_F(KernelParityTest, CellCoordsMatchesLatticeAndLevels) {
  GridLattice lattice = LatLonLattice(32, 17);
  std::vector<int32_t> cols, rows;
  RandomCells(512, 32, 17, &cols, &rows);
  const size_t n = cols.size();
  std::vector<double> xs_s(n), ys_s(n), xs_v(n), ys_v(n);
  SetSimdLevelForTesting(SimdLevel::kScalar);
  kernels::CellCoords(lattice, cols.data(), rows.data(), n, xs_s.data(),
                      ys_s.data());
  SetSimdLevelForTesting(SimdLevel::kAvx2);
  kernels::CellCoords(lattice, cols.data(), rows.data(), n, xs_v.data(),
                      ys_v.data());
  ClearSimdLevelForTesting();
  ExpectBitIdentical(xs_s, xs_v);
  ExpectBitIdentical(ys_s, ys_v);
  for (size_t i = 0; i < n; ++i) {
    // Bitwise: the kernel must mirror CellX/CellY exactly, or spatial
    // restriction results drift from frame-pruning decisions.
    EXPECT_EQ(xs_s[i], lattice.CellX(cols[i]));
    EXPECT_EQ(ys_s[i], lattice.CellY(rows[i]));
  }
}

/// Region mask vs per-point Region::Contains over random coordinates.
void CheckRegionAgainstContains(const Region& region,
                                const RegionMatcher& matcher, size_t n) {
  std::uniform_real_distribution<double> dx(-130.0, -115.0), dy(38.0, 50.0);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = dx(Rng());
    ys[i] = dy(Rng());
  }
  std::vector<uint8_t> s(n, 0xAA), v(n, 0x55);
  SetSimdLevelForTesting(SimdLevel::kScalar);
  const size_t kept_s = matcher.Mask(xs.data(), ys.data(), n, s.data());
  SetSimdLevelForTesting(SimdLevel::kAvx2);
  const size_t kept_v = matcher.Mask(xs.data(), ys.data(), n, v.data());
  ClearSimdLevelForTesting();
  EXPECT_EQ(kept_s, kept_v);
  EXPECT_EQ(s, v);
  size_t ones = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(s[i] != 0, region.Contains(xs[i], ys[i]))
        << "at (" << xs[i] << ", " << ys[i] << ")";
    ones += s[i];
  }
  EXPECT_EQ(ones, kept_s);
}

TEST_F(KernelParityTest, BBoxMaskMatchesRegion) {
  auto region = MakeBBoxRegion(-125.0, 41.0, -120.5, 44.5);
  CheckRegionAgainstContains(*region, RegionMatcher(region), 2048);
}

TEST_F(KernelParityTest, DiskMaskMatchesRegion) {
  auto region = ConstraintRegion::Disk(-122.0, 43.0, 2.5);
  RegionMatcher matcher(region);
  EXPECT_TRUE(matcher.fully_vectorized());
  CheckRegionAgainstContains(*region, matcher, 2048);
}

TEST_F(KernelParityTest, PolygonMaskMatchesRegion) {
  // Concave polygon with a horizontal edge (dropped at precompute)
  // and a vertical one.
  auto region = MakePolygonRegion({{-126.0, 40.0},
                                   {-118.0, 40.0},
                                   {-118.0, 47.0},
                                   {-122.0, 42.5},
                                   {-125.0, 48.0}});
  RegionMatcher matcher(region);
  EXPECT_TRUE(matcher.fully_vectorized());
  CheckRegionAgainstContains(*region, matcher, 4096);
}

TEST_F(KernelParityTest, CompositeRegionsMatch) {
  auto box = MakeBBoxRegion(-125.0, 41.0, -121.0, 45.0);
  auto disk = ConstraintRegion::Disk(-121.5, 44.0, 2.0);
  auto tri =
      MakePolygonRegion({{-127.0, 39.0}, {-119.0, 39.0}, {-123.0, 49.0}});
  auto uni = MakeUnionRegion({box, disk});
  auto inter = MakeIntersectionRegion({uni, tri});
  RegionMatcher matcher(inter);
  EXPECT_TRUE(matcher.fully_vectorized());
  CheckRegionAgainstContains(*inter, matcher, 4096);
}

TEST_F(KernelParityTest, GenericFallbackMatchesEnumeratedRegion) {
  auto region = std::make_shared<EnumeratedRegion>(
      std::vector<std::pair<double, double>>{{-124.75, 44.75},
                                             {-123.25, 42.25}},
      0.5);
  RegionMatcher matcher(region);
  EXPECT_FALSE(matcher.fully_vectorized());
  CheckRegionAgainstContains(*region, matcher, 512);
}

TEST_F(KernelParityTest, ValueRangeMaskKeepsNaNAndStrides) {
  const size_t n = 777;
  const size_t stride = 3;
  std::vector<double> values(n * stride);
  std::uniform_real_distribution<double> dv(-1.0, 1.0);
  for (auto& v : values) v = dv(Rng());
  values[4 * stride] = kNaN;
  values[9 * stride] = kInf;
  values[11 * stride] = -kInf;
  auto mask = MaskBothLevels(n, [&](uint8_t* keep) {
    std::memset(keep, 1, n);
    return kernels::ValueRangeMaskAnd(values.data(), n, stride, -0.25, 0.5,
                                      keep);
  });
  for (size_t i = 0; i < n; ++i) {
    const double v = values[i * stride];
    // Reference predicate: drop when v < lo || v > hi; NaN is kept.
    const bool expect_keep = !(v < -0.25) && !(v > 0.5);
    EXPECT_EQ(mask[i] != 0, expect_keep) << "sample " << v;
  }
  EXPECT_TRUE(mask[4]);   // NaN kept
  EXPECT_FALSE(mask[9]);  // +inf > hi
  EXPECT_FALSE(mask[11]);
}

TEST_F(KernelParityTest, TimeSetMaskMatchesContains) {
  TimeSet times = TimeSet::Range(100, 200);
  times.Add(TimeSet::Every(96, 40, 55));
  times.Add(TimeSet::Instants({-7, 3, 777}));
  const size_t n = 2048;
  std::vector<int64_t> ts(n);
  std::uniform_int_distribution<int64_t> dt(-300, 900);
  for (auto& t : ts) t = dt(Rng());
  ts[0] = -7;
  ts[1] = 777;
  auto mask = MaskBothLevels(n, [&](uint8_t* keep) {
    return kernels::TimeSetMask(times, ts.data(), n, keep);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(mask[i] != 0, times.Contains(ts[i])) << "t=" << ts[i];
  }
}

TEST_F(KernelParityTest, TimestampsAllEqual) {
  std::vector<int64_t> uniform(257, 42);
  EXPECT_TRUE(kernels::TimestampsAllEqual(uniform.data(), uniform.size()));
  EXPECT_TRUE(kernels::TimestampsAllEqual(uniform.data(), 0));
  uniform[200] = 41;
  EXPECT_FALSE(kernels::TimestampsAllEqual(uniform.data(), uniform.size()));
}

TEST_F(KernelParityTest, PointwiseTransformsMatchValueFns) {
  const size_t points = 501;
  const int bands = 3;
  const size_t n = points * static_cast<size_t>(bands);
  std::vector<double> in(n);
  std::uniform_real_distribution<double> dv(-300.0, 300.0);
  for (auto& v : in) v = dv(Rng());
  in[7] = kNaN;

  struct Case {
    const char* label;
    ValueFn fn;
    size_t out_size;
  };
  const Case cases[] = {
      {"rescale", ValueFn::AffineRescale(bands, 1.7, -3.25), n},
      {"clamp", ValueFn::ClampTo(bands, -100.0, 100.0), n},
      {"abs", ValueFn::AbsValue(bands), n},
      {"gray", ValueFn::ColorToGray(), points},
      {"band", ValueFn::BandSelect(bands, 2), points},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto [s, v] = BothLevels(c.out_size, [&](double* out) {
      switch (c.fn.kind) {
        case ValueFn::Kind::kAffineRescale:
          kernels::AffineRescale(in.data(), n, c.fn.a, c.fn.b, out);
          break;
        case ValueFn::Kind::kClamp:
          kernels::ClampValues(in.data(), n, c.fn.a, c.fn.b, out);
          break;
        case ValueFn::Kind::kAbs:
          kernels::AbsValues(in.data(), n, out);
          break;
        case ValueFn::Kind::kColorToGray:
          kernels::ColorToGray(in.data(), points, out);
          break;
        case ValueFn::Kind::kBandSelect:
          kernels::BandSelect(in.data(), points, bands, c.fn.band, out);
          break;
        case ValueFn::Kind::kGeneric:
          FAIL() << "unexpected generic fn";
      }
    });
    ExpectBitIdentical(s, v);
    // Per-point reference: the std::function form of the same ValueFn.
    std::vector<double> ref(c.out_size);
    const size_t per_out = static_cast<size_t>(c.fn.out_bands);
    for (size_t i = 0; i < points; ++i) {
      c.fn.fn(&in[i * static_cast<size_t>(bands)], &ref[i * per_out]);
    }
    ExpectBitIdentical(s, ref);
  }
}

TEST_F(KernelParityTest, ComposeArithMatchesApplyComposeFn) {
  const size_t n = 1024;
  std::vector<double> a(n), b(n);
  std::uniform_real_distribution<double> dv(-50.0, 50.0);
  for (size_t i = 0; i < n; ++i) {
    a[i] = dv(Rng());
    b[i] = dv(Rng());
  }
  // Saturation and NaN corners of kDivide / kSupremum / kInfimum.
  a[0] = 0.0;   b[0] = 0.0;
  a[1] = 3.5;   b[1] = 0.0;
  a[2] = -3.5;  b[2] = 0.0;
  a[3] = kNaN;  b[3] = 1.0;
  a[4] = 1.0;   b[4] = kNaN;
  a[5] = kInf;  b[5] = -kInf;
  for (ComposeFn gamma :
       {ComposeFn::kAdd, ComposeFn::kSubtract, ComposeFn::kMultiply,
        ComposeFn::kDivide, ComposeFn::kSupremum, ComposeFn::kInfimum}) {
    SCOPED_TRACE(ComposeFnName(gamma));
    auto [s, v] = BothLevels(n, [&](double* out) {
      kernels::ComposeArith(gamma, a.data(), b.data(), n, out);
    });
    ExpectBitIdentical(s, v);
    for (size_t i = 0; i < n; ++i) {
      const double expect = ApplyComposeFn(gamma, a[i], b[i]);
      // Bitwise, so NaN == NaN and signed zeros must match too.
      EXPECT_EQ(std::memcmp(&s[i], &expect, sizeof(double)), 0)
          << "i=" << i << " a=" << a[i] << " b=" << b[i];
    }
  }
}

// ---------------------------------------------------------------------------
// FilterBatch (mask compaction)

TEST(FilterBatchTest, MultiBandPartialSelectionPreservesInterleaving) {
  GridLattice lattice = LatLonLattice(16, 12);
  PointBatchPtr src = RandomBatch(lattice, 301, /*bands=*/3, /*frame=*/9);
  std::vector<uint8_t> keep(src->size());
  std::mt19937 rng(123);
  std::uniform_int_distribution<int> coin(0, 2);
  size_t kept = 0;
  for (auto& k : keep) {
    k = coin(rng) != 0 ? 1 : 0;  // ~2/3 kept: runs and singletons
    kept += k;
  }
  PointBatchPtr out = FilterBatch(*src, keep.data(), kept);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->frame_id, 9);
  EXPECT_EQ(out->band_count, 3);
  ASSERT_EQ(out->size(), kept);
  ASSERT_EQ(out->values.size(), kept * 3u);
  size_t w = 0;
  for (size_t i = 0; i < src->size(); ++i) {
    if (!keep[i]) continue;
    EXPECT_EQ(out->cols[w], src->cols[i]);
    EXPECT_EQ(out->rows[w], src->rows[i]);
    EXPECT_EQ(out->timestamps[w], src->timestamps[i]);
    for (int bnd = 0; bnd < 3; ++bnd) {
      const double got = out->values[w * 3 + static_cast<size_t>(bnd)];
      const double want = src->ValueAt(i, bnd);
      EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0)
          << "point " << i << " band " << bnd;
    }
    ++w;
  }
  EXPECT_EQ(w, kept);
}

TEST(FilterBatchTest, EdgeSelections) {
  GridLattice lattice = LatLonLattice(8, 8);
  PointBatchPtr src = RandomBatch(lattice, 64, /*bands=*/2, /*frame=*/1);
  std::vector<uint8_t> keep(src->size(), 0);
  EXPECT_EQ(FilterBatch(*src, keep.data(), 0), nullptr);

  std::fill(keep.begin(), keep.end(), 1);
  PointBatchPtr all = FilterBatch(*src, keep.data(), keep.size());
  ASSERT_NE(all, nullptr);
  EXPECT_EQ(all->size(), src->size());
  ASSERT_EQ(all->values.size(), src->values.size());
  EXPECT_EQ(std::memcmp(all->values.data(), src->values.data(),
                        src->values.size() * sizeof(double)),
            0);

  // Only the last point: exercises the tail run.
  std::fill(keep.begin(), keep.end(), 0);
  keep.back() = 1;
  PointBatchPtr last = FilterBatch(*src, keep.data(), 1);
  ASSERT_NE(last, nullptr);
  ASSERT_EQ(last->size(), 1u);
  EXPECT_EQ(last->cols[0], src->cols.back());
  EXPECT_EQ(last->ValueAt(0, 1), src->ValueAt(src->size() - 1, 1));
}

// ---------------------------------------------------------------------------
// Whole-operator parity: the same randomized multi-band stream through
// the rewired operators at both dispatch levels, bit-identical events.

std::vector<StreamEvent> RunRestrictions(const PointBatchPtr& batch,
                                         const GridLattice& lattice,
                                         SimdLevel level) {
  SetSimdLevelForTesting(level);
  SpatialRestrictionOp spatial(
      "r", MakeUnionRegion({MakeBBoxRegion(-125.0, 41.0, -121.0, 44.0),
                            ConstraintRegion::Disk(-120.0, 46.0, 1.5)}));
  ValueRestrictionOp value("v", {{0, -0.5, 0.75}, {2, -1.5, 1.5}});
  CollectingSink sink;
  spatial.BindOutput(value.input(0));
  value.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = batch->frame_id;
  info.lattice = lattice;
  EXPECT_TRUE(spatial.input(0)->Consume(StreamEvent::FrameBegin(info)).ok());
  EXPECT_TRUE(spatial.input(0)->Consume(StreamEvent::Batch(batch)).ok());
  EXPECT_TRUE(spatial.input(0)->Consume(StreamEvent::FrameEnd(info)).ok());
  ClearSimdLevelForTesting();
  return sink.events();
}

TEST(OperatorParityTest, RestrictionChainBitIdenticalAcrossLevels) {
  GridLattice lattice = LatLonLattice(24, 16);
  PointBatchPtr batch = RandomBatch(lattice, 1500, /*bands=*/3, /*frame=*/4);
  auto scalar_events = RunRestrictions(batch, lattice, SimdLevel::kScalar);
  auto simd_events = RunRestrictions(batch, lattice, SimdLevel::kAvx2);
  ASSERT_EQ(scalar_events.size(), simd_events.size());
  for (size_t e = 0; e < scalar_events.size(); ++e) {
    ASSERT_EQ(scalar_events[e].kind, simd_events[e].kind);
    if (scalar_events[e].kind != EventKind::kPointBatch) continue;
    const PointBatch& s = *scalar_events[e].batch;
    const PointBatch& v = *simd_events[e].batch;
    EXPECT_EQ(s.cols, v.cols);
    EXPECT_EQ(s.rows, v.rows);
    EXPECT_EQ(s.timestamps, v.timestamps);
    ASSERT_EQ(s.values.size(), v.values.size());
    EXPECT_EQ(std::memcmp(s.values.data(), v.values.data(),
                          s.values.size() * sizeof(double)),
              0);
  }
}

// ---------------------------------------------------------------------------
// Dispatch plumbing

TEST(SimdDispatchTest, OverrideClampsToDetectedLevel) {
  const SimdLevel detected = DetectedSimdLevel();
  SetSimdLevelForTesting(SimdLevel::kAvx2);
  // Forcing up never exceeds what the CPU/build supports.
  EXPECT_EQ(ActiveSimdLevel(), detected);
  SetSimdLevelForTesting(SimdLevel::kScalar);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  ClearSimdLevelForTesting();
  EXPECT_EQ(ActiveSimdLevel(), detected);
}

TEST(SimdDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

}  // namespace
}  // namespace geostreams
