// Ingest plane tests: kIngest wire round-trips (strict decode),
// IngestSession sequencing/admission/liveness, FlakySocket
// determinism, and loopback end-to-end runs of ProducerClient against
// a NetServer — clean, under injected faults (the chaos audit), under
// memory overload, and through quarantine + admin RESTART. Every
// server binds port 0 (ephemeral), so tests parallelize safely.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"

#include <filesystem>

#include "net/flaky_socket.h"
#include "net/geostreams_client.h"
#include "net/ingest_session.h"
#include "net/net_server.h"
#include "net/producer_client.h"
#include "net/socket_util.h"
#include "net/wire_protocol.h"
#include "server/dsms_server.h"
#include "storage/faulty_file.h"
#include "storage/journal.h"
#include "stream/memory_tracker.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::TestDescriptor;
using testing_util::TestValue;

// ---------------------------------------------------------------------------
// Helpers

FrameInfo SectorInfo(int64_t frame_id, int64_t w = 16, int64_t h = 12) {
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = LatLonLattice(w, h);
  info.expected_points = w * h;
  return info;
}

/// A batch whose identity is recoverable on the far side: every
/// timestamp carries `ordinal`, so an audit sink can detect gaps,
/// duplicates, and reordering by sequence alone.
StreamEvent BatchEvent(int64_t ordinal, size_t n = 16) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = ordinal / 14;
  batch->band_count = 1;
  for (size_t i = 0; i < n; ++i) {
    batch->Append1(static_cast<int32_t>(i),
                   static_cast<int32_t>(ordinal % 12), ordinal,
                   TestValue(batch->frame_id, static_cast<int64_t>(i),
                             ordinal % 12));
  }
  batch->checksum = batch->ComputeChecksum();
  return StreamEvent::Batch(std::move(batch));
}

IngestMessage MakeIngest(const std::string& source, uint64_t seq,
                         StreamEvent event) {
  IngestMessage message;
  message.source = source;
  message.seq = seq;
  message.event = std::move(event);
  return message;
}

/// Thread-safe sink recording batch identity (the ordinal stamped
/// into timestamps) — the chaos tests' exactly-once audit trail.
class AuditSink : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    ++events_;
    if (event.kind == EventKind::kPointBatch && event.batch &&
        !event.batch->timestamps.empty()) {
      batch_ids_.push_back(event.batch->timestamps[0]);
      points_ += event.batch->size();
    }
    return Status::OK();
  }

  std::vector<int64_t> batch_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return batch_ids_;
  }
  uint64_t points() const {
    std::lock_guard<std::mutex> lock(mu_);
    return points_;
  }
  uint64_t events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> batch_ids_;
  uint64_t points_ = 0;
  uint64_t events_ = 0;
};

// ---------------------------------------------------------------------------
// Wire protocol: kIngest round-trips and strict decode

TEST(IngestWireTest, RoundTripAllEventKinds) {
  // FrameBegin carries the full sector geometry (CRS by name).
  {
    const auto wire = EncodeIngestMessage(
        MakeIngest("sat.band1", 7, StreamEvent::FrameBegin(SectorInfo(3))));
    auto decoded = DecodeIngestMessage(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->source, "sat.band1");
    EXPECT_EQ(decoded->seq, 7u);
    EXPECT_EQ(decoded->event.kind, EventKind::kFrameBegin);
    EXPECT_EQ(decoded->event.frame.frame_id, 3);
    EXPECT_EQ(decoded->event.frame.expected_points, 16 * 12);
    const GridLattice& lattice = decoded->event.frame.lattice;
    const GridLattice original = LatLonLattice(16, 12);
    EXPECT_EQ(lattice.width(), original.width());
    EXPECT_EQ(lattice.height(), original.height());
    EXPECT_DOUBLE_EQ(lattice.origin_x(), original.origin_x());
    EXPECT_DOUBLE_EQ(lattice.origin_y(), original.origin_y());
    EXPECT_DOUBLE_EQ(lattice.dx(), original.dx());
    EXPECT_DOUBLE_EQ(lattice.dy(), original.dy());
    EXPECT_TRUE(lattice.AlignedWith(original));
  }
  // PointBatch carries points and the FNV checksum.
  {
    const StreamEvent event = BatchEvent(5, 9);
    const auto wire = EncodeIngestMessage(MakeIngest("sat.band1", 8, event));
    auto decoded = DecodeIngestMessage(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded->event.kind, EventKind::kPointBatch);
    ASSERT_TRUE(decoded->event.batch);
    const PointBatch& batch = *decoded->event.batch;
    EXPECT_EQ(batch.size(), 9u);
    EXPECT_EQ(batch.frame_id, event.batch->frame_id);
    EXPECT_EQ(batch.cols, event.batch->cols);
    EXPECT_EQ(batch.rows, event.batch->rows);
    EXPECT_EQ(batch.timestamps, event.batch->timestamps);
    EXPECT_EQ(batch.values, event.batch->values);
    EXPECT_EQ(batch.checksum, event.batch->checksum);
    EXPECT_TRUE(batch.ChecksumValid());
  }
  // FrameEnd and StreamEnd.
  {
    const auto wire = EncodeIngestMessage(
        MakeIngest("sat.band1", 9, StreamEvent::FrameEnd(SectorInfo(3))));
    auto decoded = DecodeIngestMessage(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->event.kind, EventKind::kFrameEnd);
  }
  {
    const auto wire = EncodeIngestMessage(
        MakeIngest("sat.band1", 10, StreamEvent::StreamEnd()));
    auto decoded = DecodeIngestMessage(wire.data(), wire.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->event.kind, EventKind::kStreamEnd);
    EXPECT_EQ(decoded->seq, 10u);
  }
}

TEST(IngestWireTest, StrictDecodeRejectsMalformedInput) {
  const auto wire =
      EncodeIngestMessage(MakeIngest("sat.band1", 3, BatchEvent(0, 4)));

  // Truncations at every prefix length: never OK, never a crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto r = DecodeIngestMessage(wire.data(), len);
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
  }

  // Flipped payload byte fails the CRC.
  std::vector<uint8_t> bad = wire;
  bad[kWireHeaderSize + 5] ^= 0x10;
  auto r = DecodeIngestMessage(bad.data(), bad.size());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);

  // Trailing garbage after a complete message.
  bad = wire;
  bad.push_back(0xEE);
  EXPECT_FALSE(DecodeIngestMessage(bad.data(), bad.size()).ok());

  // A source name beyond the wire limit is refused on decode.
  const auto oversized = EncodeIngestMessage(MakeIngest(
      std::string(kMaxIngestSourceLen + 1, 'x'), 1, StreamEvent::StreamEnd()));
  auto refused = DecodeIngestMessage(oversized.data(), oversized.size());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  // An empty source name is meaningless (no session to route to).
  const auto anonymous =
      EncodeIngestMessage(MakeIngest("", 1, StreamEvent::StreamEnd()));
  EXPECT_FALSE(DecodeIngestMessage(anonymous.data(), anonymous.size()).ok());
}

TEST(IngestWireTest, DecoderDemultiplexesIngestAmongLinesAndFrames) {
  FrameMessage frame;
  frame.query_id = 4;
  frame.frame_id = 1;
  frame.width = 2;
  frame.height = 1;
  frame.bands = 1;
  frame.samples = {0.25, -1.0};

  std::vector<uint8_t> stream;
  const std::string ack = "ACK sat.band1 5\n";
  stream.insert(stream.end(), ack.begin(), ack.end());
  const auto ingest =
      EncodeIngestMessage(MakeIngest("sat.band1", 6, BatchEvent(2, 3)));
  stream.insert(stream.end(), ingest.begin(), ingest.end());
  const auto result = EncodeFrameMessage(frame);
  stream.insert(stream.end(), result.begin(), result.end());
  const std::string pong = "OK PONG\n";
  stream.insert(stream.end(), pong.begin(), pong.end());

  // Dribble in 7-byte chunks: units come out whole and in order.
  FrameDecoder decoder;
  std::vector<FrameDecoder::Unit> units;
  for (size_t off = 0; off < stream.size(); off += 7) {
    decoder.Feed(stream.data() + off,
                 std::min<size_t>(7, stream.size() - off));
    for (;;) {
      auto unit = decoder.Next();
      ASSERT_TRUE(unit.ok()) << unit.status().ToString();
      if (!unit->has_value()) break;
      units.push_back(std::move(**unit));
    }
  }
  ASSERT_EQ(units.size(), 4u);
  ASSERT_TRUE(units[0].line.has_value());
  EXPECT_EQ(*units[0].line, "ACK sat.band1 5");
  ASSERT_TRUE(units[1].ingest.has_value());
  EXPECT_EQ(units[1].ingest->seq, 6u);
  EXPECT_EQ(units[1].ingest->source, "sat.band1");
  ASSERT_TRUE(units[2].frame.has_value());
  EXPECT_EQ(units[2].frame->query_id, 4);
  ASSERT_TRUE(units[3].line.has_value());
  EXPECT_EQ(*units[3].line, "OK PONG");
}

// ---------------------------------------------------------------------------
// IngestSession: sequencing, admission, liveness

TEST(IngestSessionTest, InOrderDeliveryAcksCumulatively) {
  CollectingSink sink;
  IngestSession session("sat.band1", &sink, {});
  EXPECT_EQ(session.Attach(), 1u);

  EXPECT_EQ(session.Handle(MakeIngest(
                "sat.band1", 1, StreamEvent::FrameBegin(SectorInfo(0)))),
            "ACK sat.band1 1");
  EXPECT_EQ(session.Handle(MakeIngest("sat.band1", 2, BatchEvent(0))),
            "ACK sat.band1 2");
  EXPECT_EQ(session.Handle(MakeIngest(
                "sat.band1", 3, StreamEvent::FrameEnd(SectorInfo(0)))),
            "ACK sat.band1 3");

  EXPECT_EQ(sink.events().size(), 3u);
  const IngestSessionStats stats = session.Stats();
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_EQ(stats.next_expected, 4u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.gaps, 0u);
  // A reconnecting producer resumes from exactly here.
  EXPECT_EQ(session.Attach(), 4u);
}

TEST(IngestSessionTest, DuplicateIsReAckedNotRedelivered) {
  CollectingSink sink;
  IngestSession session("sat.band1", &sink, {});
  const IngestMessage first = MakeIngest("sat.band1", 1, BatchEvent(0));
  EXPECT_EQ(session.Handle(first), "ACK sat.band1 1");
  // The replayed copy (producer lost our ack) is acked again but the
  // chain sees it once: at-least-once transport, exactly-once delivery.
  EXPECT_EQ(session.Handle(first), "ACK sat.band1 1");
  EXPECT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(session.Stats().duplicates, 1u);
  EXPECT_EQ(session.Stats().delivered, 1u);
}

TEST(IngestSessionTest, GapIsNackedWithExpectedSequence) {
  CollectingSink sink;
  IngestSession session("sat.band1", &sink, {});
  const std::string response =
      session.Handle(MakeIngest("sat.band1", 5, BatchEvent(0)));
  EXPECT_TRUE(StartsWith(response, "NACK sat.band1 5 OutOfRange"))
      << response;
  EXPECT_NE(response.find("expected=1"), std::string::npos) << response;
  EXPECT_TRUE(sink.events().empty());
  EXPECT_EQ(session.Stats().gaps, 1u);
  EXPECT_EQ(session.Stats().next_expected, 1u);
}

TEST(IngestSessionTest, AdmissionControlNacksBatchesUnderPressure) {
  MemoryTracker tracker;
  tracker.Update("test.ballast", 1u << 20);

  CollectingSink sink;
  IngestSessionOptions options;
  options.memory = &tracker;
  options.admission_max_bytes = 1024;
  IngestSession session("sat.band1", &sink, options);

  // Control events are always admitted: downstream buffering operators
  // keep seeing well-formed frames even while batches are refused.
  EXPECT_EQ(session.Handle(MakeIngest(
                "sat.band1", 1, StreamEvent::FrameBegin(SectorInfo(0)))),
            "ACK sat.band1 1");
  const std::string refused =
      session.Handle(MakeIngest("sat.band1", 2, BatchEvent(0)));
  EXPECT_TRUE(StartsWith(refused, "NACK sat.band1 2 ResourceExhausted"))
      << refused;
  EXPECT_EQ(session.Stats().overload_nacks, 1u);
  EXPECT_EQ(session.Stats().next_expected, 2u);  // seq not consumed

  // Pressure drops; the producer's retry of the same sequence lands.
  tracker.Update("test.ballast", 0);
  EXPECT_EQ(session.Handle(MakeIngest("sat.band1", 2, BatchEvent(0))),
            "ACK sat.band1 2");
  EXPECT_EQ(sink.events().size(), 2u);
}

TEST(IngestSessionTest, ShedPolicyAcksAndDropsUnderPressure) {
  MemoryTracker tracker;
  tracker.Update("test.ballast", 1u << 20);

  CollectingSink sink;
  IngestSessionOptions options;
  options.memory = &tracker;
  options.admission_max_bytes = 1024;
  options.overload_policy = IngestSessionOptions::OverloadPolicy::kShed;
  IngestSession session("sat.band1", &sink, options);

  // kShed takes responsibility (ack) but drops the batch, so the
  // producer's replay buffer cannot amplify the overload.
  EXPECT_EQ(session.Handle(MakeIngest("sat.band1", 1, BatchEvent(0))),
            "ACK sat.band1 1");
  EXPECT_TRUE(sink.events().empty());
  const IngestSessionStats stats = session.Stats();
  EXPECT_EQ(stats.overload_shed, 1u);
  EXPECT_EQ(stats.delivered, 0u);
  EXPECT_EQ(stats.next_expected, 2u);
}

TEST(IngestSessionTest, IdleTimeoutQuarantinesOnceUntilRestart) {
  CollectingSink sink;
  IngestSessionOptions options;
  options.idle_timeout_ms = 1;
  IngestSession session("sat.band1", &sink, options);
  session.Attach();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const Status verdict = session.CheckLiveness();
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kUnavailable);
  EXPECT_NE(verdict.message().find("silent"), std::string::npos);
  // Quarantine is recorded once, not on every sweep tick.
  GS_EXPECT_OK(session.CheckLiveness());
  EXPECT_TRUE(session.Stats().quarantined);

  const std::string refused =
      session.Handle(MakeIngest("sat.band1", 1, BatchEvent(0)));
  EXPECT_TRUE(StartsWith(refused, "NACK sat.band1 1 FailedPrecondition"))
      << refused;
  EXPECT_TRUE(sink.events().empty());

  session.Unquarantine();
  EXPECT_FALSE(session.Stats().quarantined);
  EXPECT_EQ(session.Handle(MakeIngest("sat.band1", 1, BatchEvent(0))),
            "ACK sat.band1 1");
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(IngestSessionTest, LivenessIsDisarmedByStreamEndAndBeforeAttach) {
  CollectingSink sink;
  IngestSessionOptions options;
  options.idle_timeout_ms = 1;

  // Never attached: a source nobody produces to is not "silent".
  IngestSession idle("sat.band1", &sink, options);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  GS_EXPECT_OK(idle.CheckLiveness());

  // A delivered StreamEnd is an orderly goodbye, not a death.
  IngestSession ended("sat.band2", &sink, options);
  ended.Attach();
  EXPECT_EQ(ended.Handle(MakeIngest("sat.band2", 1, StreamEvent::StreamEnd())),
            "ACK sat.band2 1");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  GS_EXPECT_OK(ended.CheckLiveness());
  EXPECT_TRUE(ended.Stats().ended);
}

// ---------------------------------------------------------------------------
// FlakySocket: deterministic fault schedule

/// Writes `rounds` buffers through a FlakySocket over a local
/// socketpair, draining the peer, and returns the stats.
FlakySocketStats RunFlakySchedule(const FlakySocketOptions& options,
                                  int rounds) {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FlakySocket socket(fds[0], options);
  uint8_t payload[48];
  uint8_t drain[4096];
  for (int i = 0; i < rounds; ++i) {
    for (size_t j = 0; j < sizeof(payload); ++j) {
      payload[j] = static_cast<uint8_t>(i + static_cast<int>(j));
    }
    Status written = socket.Write(payload, sizeof(payload));
    if (!written.ok()) break;  // injected reset: schedule ends here
    // Drain so the kernel buffer never backpressures the writer.
    const ssize_t n = ::recv(fds[1], drain, sizeof(drain), MSG_DONTWAIT);
    (void)n;
  }
  const FlakySocketStats stats = socket.stats();
  ::close(fds[1]);
  return stats;
}

TEST(FlakySocketTest, DefaultOptionsArePassthrough) {
  const FlakySocketStats stats = RunFlakySchedule({}, 32);
  EXPECT_EQ(stats.writes, 32u);
  EXPECT_EQ(stats.partial_writes, 0u);
  EXPECT_EQ(stats.corrupted_writes, 0u);
  EXPECT_EQ(stats.resets, 0u);
  EXPECT_EQ(stats.dropped_reads, 0u);
}

TEST(FlakySocketTest, FaultScheduleIsDeterministicPerSeed) {
  // No resets here: a reset ends the schedule, and this test wants
  // the full 256-write walk (resets get their own test below).
  FlakySocketOptions options;
  options.seed = 7;
  options.partial_write_p = 0.3;
  options.corrupt_write_p = 0.2;

  const FlakySocketStats first = RunFlakySchedule(options, 256);
  const FlakySocketStats second = RunFlakySchedule(options, 256);
  EXPECT_EQ(first.writes, 256u);
  EXPECT_EQ(first.writes, second.writes);
  EXPECT_EQ(first.partial_writes, second.partial_writes);
  EXPECT_EQ(first.corrupted_writes, second.corrupted_writes);
  // The schedule provably fired each configured fault.
  EXPECT_GT(first.partial_writes, 0u);
  EXPECT_GT(first.corrupted_writes, 0u);

  // A different seed walks a different schedule.
  options.seed = 8;
  const FlakySocketStats other = RunFlakySchedule(options, 256);
  EXPECT_TRUE(other.partial_writes != first.partial_writes ||
              other.corrupted_writes != first.corrupted_writes);
}

TEST(FlakySocketTest, InjectedResetBreaksTheSocketForGood) {
  FlakySocketOptions options;
  options.seed = 11;
  options.reset_write_p = 0.2;
  const FlakySocketStats stats = RunFlakySchedule(options, 256);
  // The schedule ran until the first reset, which ended it.
  EXPECT_EQ(stats.resets, 1u);
  EXPECT_LT(stats.writes, 256u);

  // After a reset every further Write is refused: connection dead.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FlakySocketOptions always;
  always.seed = 11;
  always.reset_write_p = 1.0;
  FlakySocket socket(fds[0], always);
  const uint8_t byte[4] = {1, 2, 3, 4};
  EXPECT_EQ(socket.Write(byte, sizeof(byte)).code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(socket.broken());
  EXPECT_EQ(socket.Write(byte, sizeof(byte)).code(),
            StatusCode::kUnavailable);
  ::close(fds[1]);
}

TEST(FlakySocketTest, DeterministicReadDropsSurfaceAsUnavailable) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  FlakySocketOptions options;
  options.seed = 3;
  options.drop_read_p = 1.0;  // every chunk is swallowed
  FlakySocket socket(fds[0], options);

  const uint8_t chunk[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_EQ(::send(fds[1], chunk, sizeof(chunk), 0),
            static_cast<ssize_t>(sizeof(chunk)));
  uint8_t buf[64];
  auto r = socket.Read(buf, sizeof(buf));
  // The chunk is gone and nothing else is pending: the caller's poll
  // loop supplies the waiting (a dropped ack batch, not an EOF).
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(socket.stats().dropped_reads, 1u);

  // EOF is never injected away.
  ::close(fds[1]);
  auto eof = socket.Read(buf, sizeof(buf));
  ASSERT_TRUE(eof.ok()) << eof.status().ToString();
  EXPECT_EQ(*eof, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: ProducerClient against a live NetServer

class IngestFixture {
 public:
  explicit IngestFixture(NetServerOptions net_options = {},
                         DsmsOptions options = {})
      : server_(options), net_(&server_, std::move(net_options)) {
    GS_EXPECT_OK(server_.RegisterStream(TestDescriptor("sat.band1")));
    GS_EXPECT_OK(server_.RegisterStream(TestDescriptor("sat.band2")));
    GS_EXPECT_OK(net_.Start());
  }

  ProducerClientOptions ProducerOptions(const std::string& source) const {
    ProducerClientOptions options;
    options.port = net_.ingest_port() != 0 ? net_.ingest_port() : net_.port();
    options.source = source;
    options.backoff_initial_ms = 1;
    options.backoff_max_ms = 20;
    options.backoff_jitter_ms = 2;
    options.max_reconnect_attempts = 16;
    return options;
  }

  DsmsServer& server() { return server_; }
  NetServer& net() { return net_; }

 private:
  DsmsServer server_;
  NetServer net_;
};

TEST(ProducerE2eTest, CleanStreamFeedsQueryChainOverTcp) {
  DsmsOptions options;
  options.workers = 1;
  options.verify_ingest_checksums = true;
  NetServerOptions net_options;
  net_options.ingest_port = 0;  // dedicated producer listener
  IngestFixture fixture(std::move(net_options), options);
  EXPECT_NE(fixture.net().ingest_port(), 0u);
  EXPECT_NE(fixture.net().ingest_port(), fixture.net().port());

  // A client subscribes to the raw band over the client port.
  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY sat.band1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY "));

  // A remote producer streams three frames over the ingest port.
  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  const GridLattice lattice = LatLonLattice(16, 12);
  for (int64_t frame = 0; frame < 3; ++frame) {
    GS_ASSERT_OK(testing_util::PushFrame(&producer, lattice, frame));
  }
  GS_ASSERT_OK(producer.Flush(10000));
  EXPECT_EQ(producer.unacked(), 0u);
  EXPECT_EQ(producer.stats().published, producer.stats().acked);

  // The frames come out of the query chain bit-exact.
  for (int64_t expect_frame = 0; expect_frame < 3; ++expect_frame) {
    auto frame = client.ReadFrame(10000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->frame_id, expect_frame);
    ASSERT_EQ(frame->samples.size(), static_cast<size_t>(16 * 12));
    for (int64_t row = 0; row < 12; ++row) {
      for (int64_t col = 0; col < 16; ++col) {
        EXPECT_DOUBLE_EQ(frame->samples[row * 16 + col],
                         TestValue(expect_frame, col, row));
      }
    }
  }

  auto stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->delivered, 3u * (1 + 12 + 1));
  EXPECT_EQ(stats->gaps, 0u);
  EXPECT_EQ(stats->duplicates, 0u);
  EXPECT_EQ(fixture.server().IngestChecksumFailures(), 0u);
}

TEST(ProducerE2eTest, AttachToUnknownSourceIsRefused) {
  IngestFixture fixture;
  ProducerClient producer(fixture.ProducerOptions("no.such.stream"));
  const Status refused = producer.Connect();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kNotFound);
}

TEST(ProducerE2eTest, IngestBeforeAttachIsNacked) {
  IngestFixture fixture;
  // A hand-rolled producer that skips the ATTACH handshake.
  auto fd = ConnectTcp("127.0.0.1", fixture.net().port(), 2000);
  GS_ASSERT_OK(fd.status());
  FlakySocket socket(*fd);
  const auto wire =
      EncodeIngestMessage(MakeIngest("sat.band1", 1, BatchEvent(0)));
  GS_ASSERT_OK(socket.Write(wire.data(), wire.size()));

  FrameDecoder decoder;
  uint8_t buf[4096];
  std::string line;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (line.empty() && std::chrono::steady_clock::now() < deadline) {
    auto readable = socket.PollReadable(100);
    GS_ASSERT_OK(readable.status());
    if (!*readable) continue;
    auto n = socket.Read(buf, sizeof(buf));
    GS_ASSERT_OK(n.status());
    ASSERT_GT(*n, 0u);
    decoder.Feed(buf, *n);
    auto unit = decoder.Next();
    GS_ASSERT_OK(unit.status());
    if (unit->has_value() && (*unit)->line) line = *(*unit)->line;
  }
  EXPECT_TRUE(StartsWith(line, "NACK sat.band1 1 FailedPrecondition"))
      << line;
}

/// Publishes `batches` audit-stamped batches (grouped into frames of
/// 14 with begin/end markers) through `producer`, tolerating the
/// transient errors fault injection provokes: a ResourceExhausted
/// publish did not consume the event (retry it), anything else left
/// the event safely in the replay buffer.
void PublishAuditedBatches(ProducerClient* producer, int batches) {
  int64_t ordinal = 0;
  while (ordinal < batches) {
    if (ordinal % 14 == 0) {
      Status begin = producer->Publish(
          StreamEvent::FrameBegin(SectorInfo(ordinal / 14)));
      (void)begin;  // buffered (or refused pre-seq); replay covers it
    }
    for (int attempt = 0; attempt < 200; ++attempt) {
      Status published = producer->Publish(BatchEvent(ordinal));
      if (published.code() != StatusCode::kResourceExhausted) break;
      // Replay buffer full: give the server room to ack, then retry
      // the SAME batch (its sequence number was not consumed).
      Status drained = producer->Flush(50);
      (void)drained;
    }
    ++ordinal;
    if (ordinal % 14 == 0) {
      Status end = producer->Publish(
          StreamEvent::FrameEnd(SectorInfo(ordinal / 14 - 1)));
      (void)end;
    }
  }
}

/// Flushes with caller-level retries: fault injection can corrupt
/// even the ATTACH handshake line, which surfaces as a non-transient
/// status that a fresh attempt clears.
Status FlushHard(ProducerClient* producer, int rounds) {
  Status flushed = Status::OK();
  for (int i = 0; i < rounds; ++i) {
    flushed = producer->Flush(2000);
    if (flushed.ok()) return flushed;
  }
  return flushed;
}

/// The chaos audit: every batch id 0..batches-1 exactly once, in
/// order — at-least-once transport plus server dedup, proven end to
/// end.
void ExpectExactlyOnceInOrder(const AuditSink& audit, int batches) {
  const std::vector<int64_t> ids = audit.batch_ids();
  ASSERT_EQ(ids.size(), static_cast<size_t>(batches));
  for (int64_t i = 0; i < batches; ++i) {
    ASSERT_EQ(ids[static_cast<size_t>(i)], i)
        << "batch " << i << " lost, duplicated, or reordered";
  }
}

TEST(ProducerE2eTest, ChaosFaultsPreserveExactlyOnceDelivery) {
  // ~11k points: 700 batches x 16 points, through a socket injecting
  // partial writes, mid-frame resets, dropped acks, and delayed acks.
  constexpr int kBatches = 700;
  AuditSink audit;
  NetServerOptions net_options;
  net_options.ingest_resolver = [&audit](const std::string&) -> EventSink* {
    return &audit;
  };
  IngestFixture fixture(std::move(net_options));

  ProducerClientOptions options = fixture.ProducerOptions("chaos.src");
  options.flaky.seed = 20260806;
  options.flaky.partial_write_p = 0.05;
  options.flaky.reset_write_p = 0.01;
  options.flaky.drop_read_p = 0.2;
  options.flaky.delay_read_p = 0.1;
  options.resend_timeout_ms = 50;
  ProducerClient producer(options);

  PublishAuditedBatches(&producer, kBatches);
  GS_ASSERT_OK(FlushHard(&producer, 20));
  EXPECT_EQ(producer.unacked(), 0u);

  ExpectExactlyOnceInOrder(audit, kBatches);
  EXPECT_GE(audit.points(), 10000u);

  // A passing run must provably have exercised the write-side faults.
  // (Read-side counters depend on how the kernel coalesces ack bytes,
  // so drops/delays get their own deterministic tests below.)
  const FlakySocketStats faults = producer.TotalSocketStats();
  EXPECT_GT(faults.partial_writes, 0u);
  EXPECT_GT(faults.resets, 0u);
  EXPECT_GT(producer.stats().reconnects, 0u);

  // And the server saw the replays for what they were: duplicates.
  auto stats = fixture.net().IngestStats("chaos.src");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->delivered, audit.events());
  EXPECT_EQ(stats->quarantined, false);
}

TEST(ProducerE2eTest, CorruptedBytesPoisonDecoderAndHealByReplay) {
  // Corruption fails the server's CRC, poisoning its decoder; the
  // server hangs up, the producer reconnects, re-attaches, and
  // replays. Delivery stays exactly-once.
  constexpr int kBatches = 120;
  AuditSink audit;
  NetServerOptions net_options;
  net_options.ingest_resolver = [&audit](const std::string&) -> EventSink* {
    return &audit;
  };
  IngestFixture fixture(std::move(net_options));

  ProducerClientOptions options = fixture.ProducerOptions("corrupt.src");
  options.flaky.seed = 42;
  options.flaky.corrupt_write_p = 0.03;
  options.resend_timeout_ms = 50;
  ProducerClient producer(options);

  PublishAuditedBatches(&producer, kBatches);
  GS_ASSERT_OK(FlushHard(&producer, 20));

  ExpectExactlyOnceInOrder(audit, kBatches);
  EXPECT_GT(producer.TotalSocketStats().corrupted_writes, 0u);
  EXPECT_GT(producer.stats().reconnects, 0u);
}

TEST(ProducerE2eTest, DroppedAckChunksHealWithExactlyOnceDelivery) {
  // Flushing after every publish forces at least one ack read per
  // batch, so the 50% drop schedule provably fires; every dropped
  // chunk costs a reconnect + idempotent resume, never a duplicate
  // delivery.
  constexpr int kBatches = 100;
  IngestFixture fixture;
  ProducerClientOptions options = fixture.ProducerOptions("sat.band1");
  options.flaky.seed = 97;
  options.flaky.drop_read_p = 0.5;
  options.resend_timeout_ms = 30;
  ProducerClient producer(options);

  for (int64_t ordinal = 0; ordinal < kBatches; ++ordinal) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      Status published = producer.Publish(BatchEvent(ordinal));
      if (published.code() != StatusCode::kResourceExhausted) break;
    }
    GS_ASSERT_OK(FlushHard(&producer, 20));
  }

  EXPECT_GT(producer.TotalSocketStats().dropped_reads, 0u);
  auto stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->delivered, static_cast<uint64_t>(kBatches));
  EXPECT_EQ(stats->next_expected, static_cast<uint64_t>(kBatches) + 1);
}

TEST(ProducerE2eTest, DelayedAcksReorderButStillDrain) {
  // delay_read_p = 1 rolls on every single read, so the counter is
  // deterministic; reordered ack arrival must not confuse the
  // cumulative-ack bookkeeping.
  constexpr int kBatches = 50;
  IngestFixture fixture;
  ProducerClientOptions options = fixture.ProducerOptions("sat.band2");
  options.flaky.seed = 13;
  options.flaky.delay_read_p = 1.0;
  options.resend_timeout_ms = 30;
  ProducerClient producer(options);

  PublishAuditedBatches(&producer, kBatches);
  GS_ASSERT_OK(FlushHard(&producer, 20));
  EXPECT_EQ(producer.unacked(), 0u);
  EXPECT_GT(producer.TotalSocketStats().delayed_reads, 0u);
  auto stats = fixture.net().IngestStats("sat.band2");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->gaps, 0u);
  EXPECT_FALSE(stats->quarantined);
}

TEST(ProducerE2eTest, OverloadNacksAtBoundaryWithoutQuarantine) {
  // A memory figure over budget: batches are refused at the front
  // door. The overloaded source is NOT quarantined, and a healthy
  // pipeline on another stream keeps running untouched.
  MemoryTracker pressure;
  pressure.Update("test.ballast", 1u << 20);

  DsmsOptions options;
  options.workers = 1;
  NetServerOptions net_options;
  net_options.ingest.memory = &pressure;
  net_options.ingest.admission_max_bytes = 1024;
  IngestFixture fixture(std::move(net_options), options);

  std::atomic<uint64_t> healthy_frames{0};
  auto query = fixture.server().RegisterQuery(
      "sat.band2",
      [&healthy_frames](int64_t, const Raster&, const std::vector<uint8_t>&) {
        healthy_frames.fetch_add(1, std::memory_order_relaxed);
      });
  GS_ASSERT_OK(query.status());

  ProducerClientOptions producer_options =
      fixture.ProducerOptions("sat.band1");
  producer_options.resend_timeout_ms = 30;
  ProducerClient producer(producer_options);
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(
      producer.Publish(StreamEvent::FrameBegin(SectorInfo(0))));
  Status published = producer.Publish(BatchEvent(0));
  if (published.ok()) published = producer.Flush(500);
  ASSERT_FALSE(published.ok());
  EXPECT_EQ(published.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(producer.stats().overload_nacks, 0u);
  EXPECT_EQ(producer.unacked(), 1u);  // the batch waits for admission

  // The refusal stayed at the boundary: no quarantine anywhere.
  auto ingest_stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(ingest_stats.ok()) << ingest_stats.status().ToString();
  EXPECT_GT(ingest_stats->overload_nacks, 0u);
  EXPECT_FALSE(ingest_stats->quarantined);
  GS_EXPECT_OK(fixture.server().SourceError("sat.band1"));

  // The healthy pipeline on the other band is oblivious.
  auto health = fixture.server().QueryHealth(*query);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, PipelineHealth::kRunning);
  GS_ASSERT_OK(testing_util::PushFrame(
      fixture.server().ingest("sat.band2"), LatLonLattice(16, 12), 0));
  GS_ASSERT_OK(fixture.server().Flush());
  EXPECT_EQ(healthy_frames.load(), 1u);

  // Pressure lifts; the producer's standing replay drains.
  pressure.Update("test.ballast", 0);
  GS_ASSERT_OK(producer.Flush(10000));
  EXPECT_EQ(producer.unacked(), 0u);
  ingest_stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(ingest_stats.ok());
  EXPECT_EQ(ingest_stats->delivered, 2u);
}

TEST(ProducerE2eTest, SilentProducerIsQuarantinedUntilAdminRestart) {
  DsmsOptions options;
  NetServerOptions net_options;
  net_options.poll_interval_ms = 10;
  net_options.ingest.idle_timeout_ms = 300;
  IngestFixture fixture(std::move(net_options), options);

  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(StreamEvent::FrameBegin(SectorInfo(0))));
  GS_ASSERT_OK(producer.Flush(5000));

  // ... then silence. The liveness sweep quarantines the source.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool quarantined = false;
  while (!quarantined && std::chrono::steady_clock::now() < deadline) {
    auto stats = fixture.net().IngestStats("sat.band1");
    ASSERT_TRUE(stats.ok());
    quarantined = stats->quarantined;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(quarantined);

  // The silence is on the record: source error + boundary dead letter.
  const Status source_error = fixture.server().SourceError("sat.band1");
  ASSERT_FALSE(source_error.ok());
  EXPECT_EQ(source_error.code(), StatusCode::kUnavailable);
  auto letters = fixture.server().SourceDeadLetters("sat.band1");
  ASSERT_TRUE(letters.ok());
  EXPECT_FALSE(letters->empty());

  // The returning producer is turned away until an admin acts.
  Status verdict = producer.Publish(BatchEvent(0));
  if (verdict.ok()) verdict = producer.Flush(1000);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kFailedPrecondition);

  // Admin RESTART over the control plane un-quarantines both layers.
  GeoStreamsClient admin;
  GS_ASSERT_OK(admin.Connect("127.0.0.1", fixture.net().port()));
  auto restarted = admin.Command("RESTART sat.band1");
  ASSERT_TRUE(restarted.ok()) << restarted.status().ToString();
  EXPECT_EQ(*restarted, "OK RESTART sat.band1");

  GS_ASSERT_OK(producer.Flush(10000));
  EXPECT_EQ(producer.unacked(), 0u);
  auto stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->quarantined);
  EXPECT_GE(stats->delivered, 2u);
  GS_EXPECT_OK(fixture.server().SourceError("sat.band1"));
}

TEST(ProducerE2eTest, HeartbeatsKeepAnIdleProducerAlive) {
  NetServerOptions net_options;
  net_options.poll_interval_ms = 10;
  net_options.ingest.idle_timeout_ms = 300;
  IngestFixture fixture(std::move(net_options));

  ProducerClient producer(fixture.ProducerOptions("sat.band2"));
  GS_ASSERT_OK(producer.Connect());
  // Idle for 3x the timeout, but heartbeating: never quarantined.
  for (int i = 0; i < 30; ++i) {
    GS_ASSERT_OK(producer.Heartbeat());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  auto stats = fixture.net().IngestStats("sat.band2");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_FALSE(stats->quarantined);
  // And the session still works.
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));
  GS_ASSERT_OK(producer.Flush(5000));
}

TEST(ProducerE2eTest, IstatsCommandReportsSessionCounters) {
  IngestFixture fixture;
  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));
  GS_ASSERT_OK(producer.Flush(5000));

  GeoStreamsClient admin;
  GS_ASSERT_OK(admin.Connect("127.0.0.1", fixture.net().port()));
  auto istats = admin.Command("ISTATS sat.band1");
  ASSERT_TRUE(istats.ok()) << istats.status().ToString();
  EXPECT_TRUE(StartsWith(*istats, "OK ISTATS source=sat.band1")) << *istats;
  EXPECT_NE(istats->find("delivered=1"), std::string::npos) << *istats;
  EXPECT_NE(istats->find("next=2"), std::string::npos) << *istats;

  auto unknown = admin.Command("ISTATS never.attached");
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(StartsWith(*unknown, "ERR ")) << *unknown;
}

TEST(ProducerE2eTest, LostAcksHealByResendWithoutReconnect) {
  // A hand-rolled server that swallows its first ack: the producer's
  // Flush sees no progress inside the resend window, re-sends the
  // unacked message, and the server re-acks the duplicate — the
  // dropped-ack heal, with no reconnect involved.
  auto listener = ListenTcp(0);
  GS_ASSERT_OK(listener.status());
  auto port = LocalPort(*listener);
  GS_ASSERT_OK(port.status());

  std::atomic<uint64_t> receipts{0};
  std::thread fake_server([listen_fd = *listener, &receipts] {
    auto accepted = AcceptClient(listen_fd);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    const int fd = *accepted;
    FrameDecoder decoder;
    uint8_t buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool done = false;
    while (!done && std::chrono::steady_clock::now() < deadline) {
      auto readable = PollReadable(fd, 100);
      if (!readable.ok() || !*readable) continue;
      auto n = ReadSome(fd, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;
      decoder.Feed(buf, *n);
      for (;;) {
        auto unit = decoder.Next();
        ASSERT_TRUE(unit.ok()) << unit.status().ToString();
        if (!unit->has_value()) break;
        std::string reply;
        if ((*unit)->line) {
          // The ATTACH handshake; always answered.
          reply = "OK ATTACH stall.src next=1\n";
        } else if ((*unit)->ingest) {
          // Swallow the first ack; answer every receipt after it.
          if (++receipts > 1) {
            reply = StringPrintf(
                "ACK stall.src %llu\n",
                static_cast<unsigned long long>((*unit)->ingest->seq));
            done = true;
          }
        }
        if (!reply.empty()) {
          Status sent = WriteAll(
              fd, reinterpret_cast<const uint8_t*>(reply.data()),
              reply.size());
          ASSERT_TRUE(sent.ok()) << sent.ToString();
        }
      }
    }
    // Hold the socket open until the producer drains the ack.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    CloseFd(fd);
  });

  ProducerClientOptions options;
  options.port = *port;
  options.source = "stall.src";
  options.resend_timeout_ms = 50;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 10;
  ProducerClient producer(options);
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));
  GS_ASSERT_OK(producer.Flush(8000));
  fake_server.join();
  CloseFd(*listener);

  EXPECT_EQ(producer.unacked(), 0u);
  EXPECT_GE(producer.stats().retransmits, 1u);  // the stall re-send
  EXPECT_EQ(producer.stats().reconnects, 0u);   // healed in place
  EXPECT_EQ(receipts.load(), 2u);               // original + replay
}

TEST(ProducerE2eTest, ReconnectResumesFromServerAck) {
  // An orderly close (not a fault) between publishes: the second
  // connection ATTACHes, learns next=, and does not re-deliver.
  IngestFixture fixture;
  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));
  GS_ASSERT_OK(producer.Flush(5000));
  producer.Close();

  GS_ASSERT_OK(producer.Connect());
  EXPECT_EQ(producer.stats().reconnects, 1u);
  GS_ASSERT_OK(producer.Publish(BatchEvent(1)));
  GS_ASSERT_OK(producer.Flush(5000));

  auto stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->delivered, 2u);
  EXPECT_EQ(stats->duplicates, 0u);
  EXPECT_EQ(stats->next_expected, 3u);
}

// ---------------------------------------------------------------------------
// Per-source admission budgets (token bucket, injectable clock)

/// A fresh directory under the test temp root, unique per test.
std::string FreshJournalDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsingest-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(IngestSessionTest, PerSourceBudgetNacksOverRateAndRefills) {
  AuditSink sink;
  const StreamEvent sample = BatchEvent(0);
  const uint64_t batch_bytes = sample.batch->ApproxBytes();

  uint64_t now = 1000;
  IngestSessionOptions options;
  options.source_rate_bytes_per_sec = batch_bytes;  // one batch/second
  options.source_burst_bytes = batch_bytes;         // bucket: one batch
  options.now_ms = [&now] { return now; };
  IngestSession session("budget.src", &sink, options);
  session.Attach();

  // The burst admits the first batch and drains the bucket.
  EXPECT_EQ(session.Handle(MakeIngest("budget.src", 1, BatchEvent(0))),
            "ACK budget.src 1");
  // Same instant: no tokens — refused, sequence NOT consumed.
  const std::string refused =
      session.Handle(MakeIngest("budget.src", 2, BatchEvent(1)));
  EXPECT_TRUE(StartsWith(refused, "NACK budget.src 2 ResourceExhausted"))
      << refused;
  EXPECT_NE(refused.find("per-source budget"), std::string::npos);
  // Control events are never budgeted.
  EXPECT_EQ(session.Handle(MakeIngest("budget.src", 2,
                                      StreamEvent::FrameBegin(SectorInfo(0)))),
            "ACK budget.src 2");
  // One second later the bucket refilled: the retry is admitted.
  now += 1000;
  EXPECT_EQ(session.Handle(MakeIngest("budget.src", 3, BatchEvent(1))),
            "ACK budget.src 3");

  const IngestSessionStats stats = session.Stats();
  EXPECT_EQ(stats.budget_nacks, 1u);
  EXPECT_EQ(stats.budget_shed, 0u);
  EXPECT_EQ(stats.delivered, 3u);
  EXPECT_NE(session.StatsLine().find("budget_nacks=1"), std::string::npos)
      << session.StatsLine();
}

TEST(IngestSessionTest, PerSourceBudgetShedAcksDropsAndStaysDurable) {
  const std::string dir = FreshJournalDir("shed");
  JournalOptions jopts;
  jopts.dir = dir;
  jopts.fsync = FsyncPolicy::kOff;
  auto journal = IngestJournal::Open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  auto sj = (*journal)->SourceFor("shed.src");
  ASSERT_TRUE(sj.ok()) << sj.status().ToString();

  AuditSink sink;
  const uint64_t batch_bytes = BatchEvent(0).batch->ApproxBytes();
  uint64_t now = 1000;
  IngestSessionOptions options;
  options.source_rate_bytes_per_sec = batch_bytes;
  options.source_burst_bytes = batch_bytes;
  options.overload_policy = IngestSessionOptions::OverloadPolicy::kShed;
  options.now_ms = [&now] { return now; };
  options.journal = *sj;
  IngestSession session("shed.src", &sink, options);
  session.Attach();

  EXPECT_EQ(session.Handle(MakeIngest("shed.src", 1, BatchEvent(0))),
            "ACK shed.src 1");
  // Over budget under kShed: ACKed (producer progresses) but dropped
  // before the chain — and still journaled, because the ack is a
  // durable promise regardless of delivery.
  EXPECT_EQ(session.Handle(MakeIngest("shed.src", 2, BatchEvent(1))),
            "ACK shed.src 2");
  const IngestSessionStats stats = session.Stats();
  EXPECT_EQ(stats.budget_shed, 1u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.journaled, 2u);
  EXPECT_TRUE(stats.durable);
  EXPECT_EQ(sink.events(), 1u);
  EXPECT_NE(session.StatsLine().find("budget_shed=1"), std::string::npos);
  EXPECT_NE(session.StatsLine().find("durable=1"), std::string::npos);
  // The shed batch's sequence is settled forever: a restart recovers
  // next_seq past it.
  EXPECT_EQ((*sj)->next_seq(), 3u);
}

// ---------------------------------------------------------------------------
// Durable sessions: journal-gated acks

TEST(IngestSessionTest, JournalGatesAcksAndSeedsExpectedAcrossRestart) {
  const std::string dir = FreshJournalDir("durable");
  JournalOptions jopts;
  jopts.dir = dir;
  {
    auto journal = IngestJournal::Open(jopts);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    auto sj = (*journal)->SourceFor("d.src");
    ASSERT_TRUE(sj.ok()) << sj.status().ToString();
    AuditSink sink;
    IngestSessionOptions options;
    options.journal = *sj;
    IngestSession session("d.src", &sink, options);
    EXPECT_EQ(session.Attach(), 1u);
    EXPECT_EQ(session.Handle(MakeIngest("d.src", 1, BatchEvent(0))),
              "ACK d.src 1");
    EXPECT_EQ(session.Handle(MakeIngest("d.src", 2, BatchEvent(1))),
              "ACK d.src 2");
    const IngestSessionStats stats = session.Stats();
    EXPECT_TRUE(stats.durable);
    EXPECT_EQ(stats.journaled, 2u);
    EXPECT_EQ(stats.journal_errors, 0u);
    EXPECT_EQ((*sj)->stats().appends, 2u);
    EXPECT_EQ((*sj)->stats().fsyncs, 2u);  // kPerRecord gates each ack
    EXPECT_NE(session.StatsLine().find("durable=1"), std::string::npos);
    EXPECT_NE(session.StatsLine().find("journaled=2"), std::string::npos);
  }

  // "Crash" + restart: a fresh journal recovers the high-water mark
  // and the fresh session expects exactly the next sequence — the
  // producer's replay of acked batches dedups, new batches deliver.
  auto journal = IngestJournal::Open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  auto sj = (*journal)->SourceFor("d.src");
  ASSERT_TRUE(sj.ok()) << sj.status().ToString();
  AuditSink sink;
  IngestSessionOptions options;
  options.journal = *sj;
  IngestSession session("d.src", &sink, options);
  EXPECT_EQ(session.Attach(), 3u);
  EXPECT_EQ(session.Handle(MakeIngest("d.src", 2, BatchEvent(1))),
            "ACK d.src 2");  // replayed duplicate: re-acked, not redelivered
  EXPECT_EQ(session.Handle(MakeIngest("d.src", 3, BatchEvent(2))),
            "ACK d.src 3");
  EXPECT_EQ(session.Stats().duplicates, 1u);
  EXPECT_EQ(sink.events(), 1u);
}

TEST(IngestSessionTest, JournalAppendFailureNacksUnavailable) {
  const std::string dir = FreshJournalDir("failure");
  FaultyFileOptions fopts;
  fopts.short_write_p = 1.0;
  FaultyFileInjector injector(fopts);
  JournalOptions jopts;
  jopts.dir = dir;
  jopts.file_factory = injector.Factory();
  auto journal = IngestJournal::Open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  auto sj = (*journal)->SourceFor("jf.src");
  ASSERT_TRUE(sj.ok()) << sj.status().ToString();

  AuditSink sink;
  IngestSessionOptions options;
  options.journal = *sj;
  IngestSession session("jf.src", &sink, options);
  session.Attach();

  // The append fails, so the ack would be a lie: NACK Unavailable —
  // transient, the producer retries the same sequence.
  const std::string refused =
      session.Handle(MakeIngest("jf.src", 1, BatchEvent(0)));
  EXPECT_TRUE(StartsWith(refused, "NACK jf.src 1 Unavailable")) << refused;
  EXPECT_NE(refused.find("journal append failed"), std::string::npos)
      << refused;
  EXPECT_EQ(sink.events(), 0u);  // never delivered either
  IngestSessionStats stats = session.Stats();
  EXPECT_EQ(stats.journal_errors, 1u);
  EXPECT_EQ(stats.next_expected, 1u);
  EXPECT_NE(session.StatsLine().find("journal_errors=1"),
            std::string::npos);

  injector.Disarm();
  EXPECT_EQ(session.Handle(MakeIngest("jf.src", 1, BatchEvent(0))),
            "ACK jf.src 1");
  EXPECT_EQ(sink.events(), 1u);
}

// ---------------------------------------------------------------------------
// Producer auth: ATTACH <source> <token>

TEST(ProducerAuthTest, TokenGatesAttach) {
  NetServerOptions net_options;
  net_options.ingest_auth_token = "open-sesame";
  IngestFixture fixture(std::move(net_options));

  // A bare ATTACH against a token-protected server: refused with a
  // non-transient status (no retry storm from misconfigured fleets).
  {
    ProducerClient producer(fixture.ProducerOptions("sat.band1"));
    const Status refused = producer.Connect();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(refused.message().find("token required"), std::string::npos)
        << refused.ToString();
  }
  // The wrong token is a different message (operators can tell a
  // missing credential from a stale one) but the same clean refusal.
  {
    ProducerClientOptions options = fixture.ProducerOptions("sat.band1");
    options.auth_token = "stale-credential";
    ProducerClient producer(options);
    const Status refused = producer.Connect();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(refused.message().find("token rejected"), std::string::npos)
        << refused.ToString();
  }
  // The right token attaches and streams end to end.
  ProducerClientOptions options = fixture.ProducerOptions("sat.band1");
  options.auth_token = "open-sesame";
  ProducerClient producer(options);
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));
  GS_ASSERT_OK(producer.Flush(5000));
  auto stats = fixture.net().IngestStats("sat.band1");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->delivered, 1u);
}

// ---------------------------------------------------------------------------
// Sliding ack window

TEST(ProducerE2eTest, SlidingWindowKeepsExactlyOnceUnderStalls) {
  // A one-deep window degrades to stop-and-wait: nearly every publish
  // blocks on the previous ack, so window_stalls must fire — and the
  // stream still arrives exactly once, in order.
  constexpr int kBatches = 60;
  AuditSink audit;
  NetServerOptions net_options;
  net_options.ingest_resolver = [&audit](const std::string&) -> EventSink* {
    return &audit;
  };
  IngestFixture fixture(std::move(net_options));

  ProducerClientOptions options = fixture.ProducerOptions("window.src");
  options.window_messages = 1;
  options.resend_timeout_ms = 50;
  ProducerClient producer(options);
  PublishAuditedBatches(&producer, kBatches);
  GS_ASSERT_OK(FlushHard(&producer, 20));
  EXPECT_EQ(producer.unacked(), 0u);

  ExpectExactlyOnceInOrder(audit, kBatches);
  EXPECT_GT(producer.stats().window_stalls, 0u);
}

TEST(ProducerE2eTest, FullWindowWithDeadServerIsResourceExhausted) {
  // A fake server that answers ATTACH and then never acks: the window
  // fills, AwaitWindow burns its stall budget (resending each round),
  // and Publish surfaces ResourceExhausted instead of hanging.
  auto listener = ListenTcp(0);
  GS_ASSERT_OK(listener.status());
  auto port = LocalPort(*listener);
  GS_ASSERT_OK(port.status());

  std::thread fake_server([listen_fd = *listener] {
    auto accepted = AcceptClient(listen_fd);
    ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
    const int fd = *accepted;
    FrameDecoder decoder;
    uint8_t buf[4096];
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    bool attached = false;
    while (std::chrono::steady_clock::now() < deadline) {
      auto readable = PollReadable(fd, 50);
      if (!readable.ok() || !*readable) continue;
      auto n = ReadSome(fd, buf, sizeof(buf));
      if (!n.ok() || *n == 0) break;
      decoder.Feed(buf, *n);
      for (;;) {
        auto unit = decoder.Next();
        if (!unit.ok() || !unit->has_value()) break;
        if ((*unit)->line && !attached) {
          attached = true;
          const std::string reply = "OK ATTACH mute.src next=1\n";
          Status sent = WriteAll(
              fd, reinterpret_cast<const uint8_t*>(reply.data()),
              reply.size());
          ASSERT_TRUE(sent.ok()) << sent.ToString();
        }
        // Ingest messages are swallowed: no acks, ever.
      }
    }
    CloseFd(fd);
  });

  ProducerClientOptions options;
  options.port = *port;
  options.source = "mute.src";
  options.window_messages = 1;
  options.resend_timeout_ms = 20;
  options.max_reconnect_attempts = 2;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 5;
  ProducerClient producer(options);
  GS_ASSERT_OK(producer.Connect());
  GS_ASSERT_OK(producer.Publish(BatchEvent(0)));  // fills the window
  const Status blocked = producer.Publish(BatchEvent(1));
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(blocked.message().find("ack window full"), std::string::npos)
      << blocked.ToString();
  EXPECT_GE(producer.stats().window_stalls, 1u);
  EXPECT_EQ(producer.unacked(), 1u);  // batch 0 still held for replay
  producer.Close();
  fake_server.join();
  CloseFd(*listener);
}

// ---------------------------------------------------------------------------
// Latency plane

/// Reads `n` payload lines after a multi-line OK header, skipping any
/// result frames interleaved on the shared connection.
std::vector<std::string> ReadPayloadLines(GeoStreamsClient& client,
                                          size_t n) {
  std::vector<std::string> lines;
  while (lines.size() < n) {
    auto unit = client.ReadNext();
    if (!unit.ok()) {
      ADD_FAILURE() << "line " << lines.size() << ": "
                    << unit.status().ToString();
      break;
    }
    if (!unit->line.has_value()) continue;
    lines.push_back(*unit->line);
  }
  return lines;
}

/// `kept=<n>` from a multi-line OK header, or 0.
size_t ParseKept(const std::string& header) {
  const size_t at = header.find("kept=");
  return at == std::string::npos ? 0 : std::stoull(header.substr(at + 5));
}

/// Value of the first sample matching
/// `geostreams_e2e_latency_us_<suffix>{stage="<stage>"...}`, or -1.
long long StageSeriesValue(const std::string& metrics,
                           const std::string& suffix,
                           const std::string& stage) {
  const std::string prefix =
      "geostreams_e2e_latency_us_" + suffix + "{stage=\"" + stage + "\"";
  for (size_t at = metrics.find(prefix); at != std::string::npos;
       at = metrics.find(prefix, at + 1)) {
    const size_t close = metrics.find("} ", at);
    const size_t eol = metrics.find('\n', at);
    if (close == std::string::npos || eol == std::string::npos ||
        close > eol) {
      continue;
    }
    return std::stoll(metrics.substr(close + 2));
  }
  return -1;
}

TEST(LatencyPlaneE2eTest, StageHistogramsPartitionEndToEndLatency) {
  std::string journal_dir = ::testing::TempDir() + "gslatency-" +
                            std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  DsmsOptions options;
  options.workers = 1;
  options.trace_sample_every = 1;
  options.journal_dir = journal_dir;  // enables the `journal` stage
  IngestFixture fixture({}, options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY sat.band1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY "));

  // The producer stamps capture time by default, so every lifecycle
  // stage from `send` onward has real anchors.
  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  const GridLattice lattice = LatLonLattice(16, 12);
  for (int64_t frame = 0; frame < 3; ++frame) {
    GS_ASSERT_OK(testing_util::PushFrame(&producer, lattice, frame));
  }
  GS_ASSERT_OK(producer.Flush(10000));
  for (int64_t frame = 0; frame < 3; ++frame) {
    auto got = client.ReadFrame(10000);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
  }

  // Every stage of the frame lifecycle exported a non-empty
  // histogram. The `write` stage is observed on the writer thread
  // after the socket write, so give it a moment to land.
  const char* kStages[] = {"send",    "journal", "queue", "operators",
                           "deliver", "write",   "total"};
  // OpenMetrics rendering: exemplars only appear on the negotiated
  // exposition (the 0.0.4 one stays bare for strict parsers).
  std::string metrics;
  for (int attempt = 0; attempt < 100; ++attempt) {
    metrics = fixture.server().RenderMetrics(/*openmetrics=*/true);
    if (StageSeriesValue(metrics, "count", "write") >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (const char* stage : kStages) {
    // >= 1, not == 3: a stage whose boundary anchors land in the same
    // microsecond is skipped for that frame (a zero-length segment).
    EXPECT_GE(StageSeriesValue(metrics, "count", stage), 1)
        << "stage " << stage << " missing or empty:\n"
        << metrics;
  }

  // The stage segments are disjoint slices of the frame's wall
  // timeline: their sums reassemble the end-to-end total. (`write`
  // overlaps `deliver`/`total` by design and is excluded.)
  long long partition = 0;
  for (const char* stage : {"send", "journal", "queue", "operators",
                            "deliver"}) {
    const long long sum = StageSeriesValue(metrics, "sum", stage);
    ASSERT_GE(sum, 0) << stage;
    partition += sum;
  }
  const long long total = StageSeriesValue(metrics, "sum", "total");
  ASSERT_GT(total, 0);
  // Anchors are stamped a few instructions apart from the stage
  // boundaries they model, so allow scheduling slop on top of a
  // relative tolerance.
  const long long slop =
      std::max<long long>(total / 10, 15000);
  EXPECT_NEAR(static_cast<double>(partition), static_cast<double>(total),
              static_cast<double>(slop))
      << metrics;

  // A bucket exemplar on the per-source `total` series resolves to a
  // retrievable TRACE record: metrics point at the exact frame.
  const std::string bucket_prefix =
      "geostreams_e2e_latency_us_bucket{stage=\"total\"";
  uint64_t exemplar_ordinal = ~0ull;
  for (size_t at = metrics.find(bucket_prefix); at != std::string::npos;
       at = metrics.find(bucket_prefix, at + 1)) {
    const size_t eol = metrics.find('\n', at);
    const std::string line = metrics.substr(at, eol - at);
    const size_t ex = line.find(" # {trace=\"");
    if (ex == std::string::npos) continue;
    // Keep the newest exemplar across the buckets: with
    // trace_sample_every=1 every batch occupies a ring slot, so old
    // frames' ordinals may already have been evicted — the newest
    // cannot have been.
    const uint64_t ordinal = std::stoull(line.substr(ex + 11));
    if (exemplar_ordinal == ~0ull || ordinal > exemplar_ordinal) {
      exemplar_ordinal = ordinal;
    }
  }
  ASSERT_NE(exemplar_ordinal, ~0ull)
      << "no exemplar on any stage=\"total\" bucket:\n"
      << metrics;
  const int64_t query_id =
      std::stoll(response->substr(response->rfind(' ') + 1));
  auto trace_header =
      client.Command(StringPrintf("TRACE %lld", (long long)query_id));
  ASSERT_TRUE(trace_header.ok()) << trace_header.status().ToString();
  ASSERT_TRUE(StartsWith(*trace_header, "OK TRACE ")) << *trace_header;
  const std::vector<std::string> trace_lines =
      ReadPayloadLines(client, ParseKept(*trace_header));
  const std::string want =
      StringPrintf("TR %llu ", (unsigned long long)exemplar_ordinal);
  bool resolved = false;
  for (const std::string& line : trace_lines) {
    if (StartsWith(line, want)) resolved = true;
  }
  EXPECT_TRUE(resolved) << "exemplar trace=" << exemplar_ordinal
                        << " not in ring dump (" << trace_lines.size()
                        << " records kept)";

  // The flight recorder is reachable over the same control socket.
  auto events = client.Command("EVENTS");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_TRUE(StartsWith(*events, "OK EVENTS total=")) << *events;
  const std::vector<std::string> event_lines =
      ReadPayloadLines(client, ParseKept(*events));
  ASSERT_FALSE(event_lines.empty()) << *events;
  for (const std::string& line : event_lines) {
    EXPECT_TRUE(StartsWith(line, "EV ")) << line;
  }

  // ISTATS surfaces the same plane as one-line operator answers.
  auto istats = client.Command("ISTATS sat.band1");
  ASSERT_TRUE(istats.ok()) << istats.status().ToString();
  EXPECT_NE(istats->find("freshness_us="), std::string::npos) << *istats;
  EXPECT_NE(istats->find("e2e_p95_us="), std::string::npos) << *istats;

  client.Close();
  producer.Close();
  std::filesystem::remove_all(journal_dir);
}

TEST(LatencyPlaneE2eTest, SourceStagesObservedOncePerFrameUnderFanOut) {
  std::string journal_dir = ::testing::TempDir() + "gsfanout-" +
                            std::to_string(::getpid());
  std::filesystem::remove_all(journal_dir);

  DsmsOptions options;
  options.workers = 1;
  options.trace_sample_every = 1;
  options.journal_dir = journal_dir;  // enables the `journal` stage
  IngestFixture fixture({}, options);

  // Two independent subscribers on the same source: each frame fans
  // out to two pipelines, but the per-source stages (send, journal,
  // total) must land once per frame, not once per pipeline.
  GeoStreamsClient a, b;
  GS_ASSERT_OK(a.Connect("127.0.0.1", fixture.net().port()));
  GS_ASSERT_OK(b.Connect("127.0.0.1", fixture.net().port()));
  auto ra = a.Command("QUERY sat.band1");
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = b.Command("QUERY sat.band1");
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();

  ProducerClient producer(fixture.ProducerOptions("sat.band1"));
  GS_ASSERT_OK(producer.Connect());
  const GridLattice lattice = LatLonLattice(16, 12);
  for (int64_t frame = 0; frame < 3; ++frame) {
    GS_ASSERT_OK(testing_util::PushFrame(&producer, lattice, frame));
  }
  GS_ASSERT_OK(producer.Flush(10000));
  for (int64_t frame = 0; frame < 3; ++frame) {
    auto ga = a.ReadFrame(10000);
    ASSERT_TRUE(ga.ok()) << ga.status().ToString();
    auto gb = b.ReadFrame(10000);
    ASSERT_TRUE(gb.ok()) << gb.status().ToString();
  }

  // Wall clocks tick in microseconds, so the capture→fan-out `total`
  // segment is never empty: exactly one observation per frame. The
  // settle sleep gives a straggling (inflated) observation time to
  // land before the equality check.
  std::string metrics;
  for (int attempt = 0; attempt < 100; ++attempt) {
    metrics = fixture.server().RenderMetrics();
    if (StageSeriesValue(metrics, "count", "total") >= 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  metrics = fixture.server().RenderMetrics();
  EXPECT_EQ(StageSeriesValue(metrics, "count", "total"), 3) << metrics;
  // Boundary anchors landing in the same microsecond skip that
  // frame's segment, so send/journal may undershoot — never
  // overshoot the frame count.
  EXPECT_LE(StageSeriesValue(metrics, "count", "send"), 3) << metrics;
  EXPECT_LE(StageSeriesValue(metrics, "count", "journal"), 3) << metrics;

  a.Close();
  b.Close();
  producer.Close();
  std::filesystem::remove_all(journal_dir);
}

}  // namespace
}  // namespace geostreams
