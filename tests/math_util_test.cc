#include "common/math_util.h"

#include <gtest/gtest.h>

namespace geostreams {
namespace {

TEST(MathUtilTest, DegreesRadians) {
  EXPECT_DOUBLE_EQ(DegreesToRadians(180.0), kPi);
  EXPECT_DOUBLE_EQ(RadiansToDegrees(kPi / 2.0), 90.0);
  EXPECT_NEAR(RadiansToDegrees(DegreesToRadians(37.25)), 37.25, 1e-12);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-5, 0, 10), 0);
  EXPECT_EQ(Clamp(15, 0, 10), 10);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, Lerp) {
  EXPECT_DOUBLE_EQ(Lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Lerp(0.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 4.0, 0.5), 3.0);
}

TEST(MathUtilTest, WrapLongitude) {
  EXPECT_DOUBLE_EQ(WrapLongitudeDeg(0.0), 0.0);
  EXPECT_DOUBLE_EQ(WrapLongitudeDeg(190.0), -170.0);
  EXPECT_DOUBLE_EQ(WrapLongitudeDeg(-190.0), 170.0);
  EXPECT_DOUBLE_EQ(WrapLongitudeDeg(360.0), 0.0);
  EXPECT_DOUBLE_EQ(WrapLongitudeDeg(-180.0), -180.0);
}

TEST(MathUtilTest, FloorDiv) {
  EXPECT_EQ(FloorDiv(7, 2), 3);
  EXPECT_EQ(FloorDiv(-7, 2), -4);
  EXPECT_EQ(FloorDiv(-4, 2), -2);
  EXPECT_EQ(FloorDiv(7, -2), -4);
}

TEST(MathUtilTest, Mix64Deterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(MathUtilTest, HashToUnitRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    const double v = HashToUnit(i);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(MathUtilTest, HashToUnitIsSpread) {
  // Crude uniformity check: mean of many samples near 0.5.
  double sum = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += HashToUnit(static_cast<uint64_t>(i));
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

}  // namespace
}  // namespace geostreams
