// Tiled historical store tests: lossless round-trips (values + mask),
// pyramid overview generation and reduce-hint scans, region and time
// subsetting, idempotent re-puts, reopen recovery (index rebuild,
// torn-tail truncation, mid-file corruption), and a deterministic
// kill-point sweep through tile-page writes via FaultyFileInjector.

#include "store/tile_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "geo/region.h"
#include "obs/metrics_registry.h"
#include "ops/time_set.h"
#include "storage/faulty_file.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;
using testing_util::LatLonLattice;
using testing_util::TestValue;

/// A fresh directory under the test temp root, unique per test.
std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsstore-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A fully filled frame raster over `lattice` stamped with TestValue.
Raster FullFrame(const GridLattice& lattice, int64_t frame_id) {
  Raster raster(lattice.width(), lattice.height(), 1);
  raster.set_lattice(lattice);
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      raster.Set(col, row, TestValue(frame_id, col, row));
    }
  }
  return raster;
}

FrameInfo Info(const GridLattice& lattice, int64_t frame_id) {
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  return info;
}

Status PutFullFrame(TileStore* store, const std::string& source,
                    const GridLattice& lattice, int64_t frame_id) {
  const Raster raster = FullFrame(lattice, frame_id);
  const std::vector<uint8_t> filled(
      static_cast<size_t>(lattice.num_cells()), 1);
  return store->PutFrame(source, Info(lattice, frame_id), raster, filled);
}

/// (col, row) -> value of every point in `events` (band 0).
std::map<std::pair<int32_t, int32_t>, double> PointMap(
    const std::vector<StreamEvent>& events) {
  std::map<std::pair<int32_t, int32_t>, double> out;
  for (const StreamEvent& e : events) {
    if (e.kind != EventKind::kPointBatch) continue;
    for (size_t i = 0; i < e.batch->size(); ++i) {
      out[{e.batch->cols[i], e.batch->rows[i]}] = e.batch->ValueAt(i, 0);
    }
  }
  return out;
}

std::vector<int64_t> BeginIds(const std::vector<StreamEvent>& events) {
  std::vector<int64_t> out;
  for (const StreamEvent& e : events) {
    if (e.kind == EventKind::kFrameBegin) out.push_back(e.frame.frame_id);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(TileStoreTest, FullFrameRoundTripIsLossless) {
  TileStoreOptions options;
  options.dir = FreshDir("rt");
  options.tile_size = 16;
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(40, 28);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 7));
  EXPECT_EQ((*store)->Watermark("src"), 7);

  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", StoreScan{}, &sink));
  ASSERT_TRUE(testing_util::WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 1u);
  EXPECT_EQ(sink.TotalPoints(), static_cast<uint64_t>(lattice.num_cells()));

  // Every cell comes back bit-exact, with the frame id as timestamp.
  const auto points = PointMap(sink.events());
  ASSERT_EQ(points.size(), static_cast<size_t>(lattice.num_cells()));
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      const auto it = points.find({static_cast<int32_t>(col),
                                   static_cast<int32_t>(row)});
      ASSERT_NE(it, points.end());
      EXPECT_EQ(it->second, TestValue(7, col, row));
    }
  }
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kPointBatch) {
      for (int64_t t : e.batch->timestamps) EXPECT_EQ(t, 7);
    }
    if (e.kind == EventKind::kFrameBegin) {
      EXPECT_EQ(e.frame.lattice.width(), lattice.width());
      EXPECT_EQ(e.frame.lattice.height(), lattice.height());
    }
  }
}

TEST(TileStoreTest, SparseMaskRoundTripsOnlyFilledCells) {
  TileStoreOptions options;
  options.dir = FreshDir("sparse");
  options.tile_size = 8;
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(24, 16);
  Raster raster(lattice.width(), lattice.height(), 1);
  raster.set_lattice(lattice);
  std::vector<uint8_t> filled(static_cast<size_t>(lattice.num_cells()), 0);
  // A diagonal stripe: ~1 cell in 5 filled, the rest nodata.
  size_t expect = 0;
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      if ((col + 2 * row) % 5 != 0) continue;
      raster.Set(col, row, TestValue(3, col, row));
      filled[static_cast<size_t>(row * lattice.width() + col)] = 1;
      ++expect;
    }
  }
  GS_ASSERT_OK((*store)->PutFrame("src", Info(lattice, 3), raster, filled));

  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", StoreScan{}, &sink));
  const auto points = PointMap(sink.events());
  ASSERT_EQ(points.size(), expect);
  for (const auto& [cell, value] : points) {
    EXPECT_EQ(filled[static_cast<size_t>(cell.second) * lattice.width() +
                     cell.first],
              1);
    EXPECT_EQ(value, TestValue(3, cell.first, cell.second));
  }
}

TEST(TileStoreTest, MultiBandRoundTrip) {
  TileStoreOptions options;
  options.dir = FreshDir("bands");
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(10, 6);
  Raster raster(lattice.width(), lattice.height(), 3);
  raster.set_lattice(lattice);
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      for (int b = 0; b < 3; ++b) {
        raster.Set(col, row, b, TestValue(b, col, row));
      }
    }
  }
  const std::vector<uint8_t> filled(
      static_cast<size_t>(lattice.num_cells()), 1);
  GS_ASSERT_OK((*store)->PutFrame("src", Info(lattice, 0), raster, filled));

  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", StoreScan{}, &sink));
  for (const StreamEvent& e : sink.events()) {
    if (e.kind != EventKind::kPointBatch) continue;
    EXPECT_EQ(e.batch->band_count, 3);
    for (size_t i = 0; i < e.batch->size(); ++i) {
      for (int b = 0; b < 3; ++b) {
        EXPECT_EQ(e.batch->ValueAt(i, b),
                  TestValue(b, e.batch->cols[i], e.batch->rows[i]));
      }
    }
  }
  EXPECT_EQ(sink.TotalPoints(), static_cast<uint64_t>(lattice.num_cells()));
}

TEST(TileStoreTest, PutFrameIsIdempotentOnFrameId) {
  TileStoreOptions options;
  options.dir = FreshDir("idem");
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(8, 8);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 4));
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 4));  // replayed
  EXPECT_EQ((*store)->TotalStats().frames_written, 1u);
  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX).size(), 1u);
}

TEST(TileStoreTest, FrameIdsAndWatermarkTrackCommits) {
  TileStoreOptions options;
  options.dir = FreshDir("ids");
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->Watermark("src"), INT64_MIN);

  const GridLattice lattice = LatLonLattice(8, 8);
  for (int64_t f : {2, 5, 9}) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  EXPECT_EQ((*store)->Watermark("src"), 9);
  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{2, 5, 9}));
  EXPECT_EQ((*store)->FrameIds("src", 3, 8), (std::vector<int64_t>{5}));
  EXPECT_TRUE((*store)->FrameIds("other", INT64_MIN, INT64_MAX).empty());

  CollectingSink sink;
  EXPECT_EQ((*store)->ScanFrame("src", 4, StoreScan{}, &sink).code(),
            StatusCode::kNotFound);
  GS_ASSERT_OK((*store)->ScanFrame("src", 5, StoreScan{}, &sink));
  EXPECT_EQ(BeginIds(sink.events()), (std::vector<int64_t>{5}));
}

// ---------------------------------------------------------------------------
// Pyramid overviews

TEST(TileStoreTest, ReduceHintReadsOverviewLevel) {
  TileStoreOptions options;
  options.dir = FreshDir("pyr");
  options.tile_size = 16;
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // 64x48 base over 16-cell tiles: levels 64x48, 32x24, 16x12.
  const GridLattice lattice = LatLonLattice(64, 48, 0.25);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 0));

  StoreScan scan;
  scan.reduce = 4;
  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", scan, &sink));
  ASSERT_EQ(sink.NumFrames(), 1u);
  const StreamEvent& begin = sink.events().front();
  ASSERT_EQ(begin.kind, EventKind::kFrameBegin);
  EXPECT_EQ(begin.frame.lattice.width(), 16);
  EXPECT_EQ(begin.frame.lattice.height(), 12);
  EXPECT_EQ(sink.TotalPoints(), 16u * 12u);

  // The overview lattice is the base lattice reduced by the factor.
  const GridLattice expect = lattice.Reduced(4);
  EXPECT_DOUBLE_EQ(begin.frame.lattice.origin_x(), expect.origin_x());
  EXPECT_DOUBLE_EQ(begin.frame.lattice.dx(), expect.dx());

  // Overview cells are mask-aware box means: with a full mask, cell
  // (0,0) of the 4x level averages the base 4x4 block at the origin
  // (via two factor-2 reductions — verify against that composition).
  const auto points = PointMap(sink.events());
  double l1_00 = (TestValue(0, 0, 0) + TestValue(0, 1, 0) +
                  TestValue(0, 0, 1) + TestValue(0, 1, 1)) / 4.0;
  double l1_10 = (TestValue(0, 2, 0) + TestValue(0, 3, 0) +
                  TestValue(0, 2, 1) + TestValue(0, 3, 1)) / 4.0;
  double l1_01 = (TestValue(0, 0, 2) + TestValue(0, 1, 2) +
                  TestValue(0, 0, 3) + TestValue(0, 1, 3)) / 4.0;
  double l1_11 = (TestValue(0, 2, 2) + TestValue(0, 3, 2) +
                  TestValue(0, 2, 3) + TestValue(0, 3, 3)) / 4.0;
  const double expect_00 = (l1_00 + l1_10 + l1_01 + l1_11) / 4.0;
  const auto it = points.find({0, 0});
  ASSERT_NE(it, points.end());
  EXPECT_NEAR(it->second, expect_00, 1e-12);

  // A coarse read touches far fewer tiles than the full-res scan.
  const uint64_t coarse_tiles = (*store)->TotalStats().tiles_read;
  EXPECT_EQ(coarse_tiles, 1u);  // 16x12 fits one 16-cell tile
  CollectingSink full;
  GS_ASSERT_OK((*store)->Scan("src", StoreScan{}, &full));
  EXPECT_EQ((*store)->TotalStats().tiles_read - coarse_tiles, 4u * 3u);
}

TEST(TileStoreTest, OverviewReductionIsMaskAware) {
  TileStoreOptions options;
  options.dir = FreshDir("mask");
  options.tile_size = 8;
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(16, 16);
  Raster raster(lattice.width(), lattice.height(), 1);
  raster.set_lattice(lattice);
  std::vector<uint8_t> filled(static_cast<size_t>(lattice.num_cells()), 0);
  // Only cell (0,0) of the top-left 2x2 block is filled; its level-1
  // overview cell must equal that one value, not a quarter of it.
  raster.Set(0, 0, 42.5);
  filled[0] = 1;
  GS_ASSERT_OK((*store)->PutFrame("src", Info(lattice, 0), raster, filled));

  StoreScan scan;
  scan.reduce = 2;
  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", scan, &sink));
  const auto points = PointMap(sink.events());
  ASSERT_EQ(points.size(), 1u);  // empty blocks stay nodata
  EXPECT_EQ(points.begin()->first, (std::pair<int32_t, int32_t>{0, 0}));
  EXPECT_EQ(points.begin()->second, 42.5);
}

// ---------------------------------------------------------------------------
// Subset reads

TEST(TileStoreTest, RegionScanFiltersExactlyAndPrunesTiles) {
  TileStoreOptions options;
  options.dir = FreshDir("region");
  options.tile_size = 8;
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // 32x24 cells of 0.5 deg from (-125, 45) southward/eastward.
  const GridLattice lattice = LatLonLattice(32, 24);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 0));

  // A box over the north-west corner: cols 0..7, rows 0..7 (one tile).
  StoreScan scan;
  scan.region = MakeBBoxRegion(-125.0, 41.0, -121.1, 45.0);
  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", scan, &sink));
  const auto points = PointMap(sink.events());
  ASSERT_FALSE(points.empty());
  for (const auto& [cell, value] : points) {
    EXPECT_TRUE(scan.region->Contains(lattice.CellX(cell.first),
                                      lattice.CellY(cell.second)))
        << "(" << cell.first << "," << cell.second << ")";
    EXPECT_EQ(value, TestValue(0, cell.first, cell.second));
  }
  // Exact complement check: every lattice cell inside the region was
  // delivered.
  size_t inside = 0;
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      if (scan.region->Contains(lattice.CellX(col), lattice.CellY(row))) {
        ++inside;
      }
    }
  }
  EXPECT_EQ(points.size(), inside);
  // Only the tiles overlapping the box were read: 1 of 12.
  EXPECT_LT((*store)->TotalStats().tiles_read, 12u);
}

TEST(TileStoreTest, TimeHintPrunesIoButStillEmitsFrameEnvelopes) {
  TileStoreOptions options;
  options.dir = FreshDir("times");
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(8, 8);
  for (int64_t f = 0; f < 5; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }

  StoreScan scan;
  scan.times.push_back(TimeSet::Range(2, 3));
  CollectingSink sink;
  GS_ASSERT_OK((*store)->Scan("src", scan, &sink));
  // The live temporal op forwards FrameBegin/FrameEnd and filters only
  // points, so replay emits every envelope but reads tiles only for
  // frames inside the window.
  EXPECT_EQ(BeginIds(sink.events()), (std::vector<int64_t>{0, 1, 2, 3, 4}));
  std::set<int64_t> frames_with_points;
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kPointBatch) {
      frames_with_points.insert(e.batch->frame_id);
    }
  }
  EXPECT_EQ(frames_with_points, (std::set<int64_t>{2, 3}));
}

// ---------------------------------------------------------------------------
// Ingest sink

TEST(TileStoreTest, StoreIngestSinkPersistsAssembledFrames) {
  TileStoreOptions options;
  options.dir = FreshDir("sink");
  auto store = TileStore::Open(options);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const GridLattice lattice = LatLonLattice(12, 10);
  StoreIngestSink sink(store->get(), "src");
  for (int64_t f = 0; f < 3; ++f) {
    GS_ASSERT_OK(testing_util::PushFrame(&sink, lattice, f));
  }
  GS_ASSERT_OK(sink.Consume(StreamEvent::StreamEnd()));
  EXPECT_EQ(sink.frames_stored(), 3u);
  EXPECT_EQ(sink.store_errors(), 0u);
  EXPECT_EQ((*store)->Watermark("src"), 2);

  CollectingSink replay;
  GS_ASSERT_OK((*store)->Scan("src", StoreScan{}, &replay));
  EXPECT_EQ(BeginIds(replay.events()), (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(replay.TotalPoints(),
            3u * static_cast<uint64_t>(lattice.num_cells()));
}

// ---------------------------------------------------------------------------
// Recovery

TEST(TileStoreRecoveryTest, ReopenRebuildsTheFrameIndex) {
  TileStoreOptions options;
  options.dir = FreshDir("reopen");
  options.tile_size = 16;
  const GridLattice lattice = LatLonLattice(40, 28);
  {
    auto store = TileStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int64_t f = 0; f < 4; ++f) {
      GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
    }
    GS_ASSERT_OK((*store)->SyncAll());
  }
  auto reopened = TileStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().frames_recovered, 4u);
  EXPECT_EQ((*reopened)->recovery().torn_tails, 0u);
  EXPECT_EQ((*reopened)->recovery().corrupt_regions, 0u);
  EXPECT_EQ((*reopened)->Watermark("src"), 3);

  CollectingSink sink;
  GS_ASSERT_OK((*reopened)->ScanFrame("src", 2, StoreScan{}, &sink));
  const auto points = PointMap(sink.events());
  ASSERT_EQ(points.size(), static_cast<size_t>(lattice.num_cells()));
  EXPECT_EQ((points.at({5, 3})), TestValue(2, 5, 3));
}

TEST(TileStoreRecoveryTest, SegmentRotationKeepsEveryFrameReadable) {
  TileStoreOptions options;
  options.dir = FreshDir("rotate");
  options.segment_max_bytes = 4096;  // rotate every frame or two
  const GridLattice lattice = LatLonLattice(16, 12);
  {
    auto store = TileStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int64_t f = 0; f < 8; ++f) {
      GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
    }
  }
  // Multiple page segments on disk.
  size_t pages = 0;
  for (const auto& entry :
       fs::recursive_directory_iterator(options.dir)) {
    if (entry.path().extension() == ".gst") ++pages;
  }
  EXPECT_GT(pages, 1u);

  auto reopened = TileStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().frames_recovered, 8u);
  for (int64_t f = 0; f < 8; ++f) {
    CollectingSink sink;
    GS_ASSERT_OK((*reopened)->ScanFrame("src", f, StoreScan{}, &sink));
    EXPECT_EQ(sink.TotalPoints(),
              static_cast<uint64_t>(lattice.num_cells()));
  }
}

TEST(TileStoreRecoveryTest, TornTailIsTruncatedAndInvisible) {
  TileStoreOptions options;
  options.dir = FreshDir("torn");
  const GridLattice lattice = LatLonLattice(16, 12);
  std::string page;
  {
    auto store = TileStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int64_t f = 0; f < 3; ++f) {
      GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
    }
  }
  for (const auto& entry :
       fs::recursive_directory_iterator(options.dir)) {
    if (entry.path().extension() == ".gst") page = entry.path().string();
  }
  ASSERT_FALSE(page.empty());
  const uint64_t committed = fs::file_size(page);
  {
    // A half-written record: valid magic, then a truncated header.
    std::ofstream out(page, std::ios::binary | std::ios::app);
    out.write("GST1\x01\x00", 6);
  }

  auto reopened = TileStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().frames_recovered, 3u);
  EXPECT_EQ((*reopened)->recovery().torn_tails, 1u);
  EXPECT_EQ((*reopened)->recovery().torn_bytes, 6u);
  EXPECT_EQ(fs::file_size(page), committed);  // truncated back
  EXPECT_EQ((*reopened)->Watermark("src"), 2);
}

TEST(TileStoreRecoveryTest, MidFileBitFlipSkipsRegionKeepsRest) {
  TileStoreOptions options;
  options.dir = FreshDir("flip");
  options.segment_max_bytes = 1u << 30;  // one segment
  const GridLattice lattice = LatLonLattice(16, 12);
  std::string page;
  {
    auto store = TileStore::Open(options);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int64_t f = 0; f < 4; ++f) {
      GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
    }
  }
  for (const auto& entry :
       fs::recursive_directory_iterator(options.dir)) {
    if (entry.path().extension() == ".gst") page = entry.path().string();
  }
  ASSERT_FALSE(page.empty());
  // Flip one payload byte early in the file (inside frame 0's run,
  // past the first record header).
  {
    std::fstream f(page, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40);
    f.write(&b, 1);
  }

  auto reopened = TileStore::Open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GE((*reopened)->recovery().corrupt_regions, 1u);
  EXPECT_LT((*reopened)->recovery().frames_recovered, 4u);
  // Later frames survive the damage and read back exactly.
  const std::vector<int64_t> ids =
      (*reopened)->FrameIds("src", INT64_MIN, INT64_MAX);
  EXPECT_FALSE(ids.empty());
  for (int64_t f : ids) {
    CollectingSink sink;
    GS_ASSERT_OK((*reopened)->ScanFrame("src", f, StoreScan{}, &sink));
    const auto points = PointMap(sink.events());
    EXPECT_EQ(points.size(), static_cast<size_t>(lattice.num_cells()));
    EXPECT_EQ(points.at({3, 3}), TestValue(f, 3, 3));
  }
}

// ---------------------------------------------------------------------------
// Kill points: a crash inside every region of the tile-page write

TEST(TileStoreKillPointTest, ByteBudgetSweepNeverSurfacesPartialFrames) {
  // Sweep the lifetime byte budget through the first two frames'
  // record runs: wherever the "crash" lands — mid-meta, mid-page,
  // mid-commit — recovery must surface only frames whose commit made
  // it, each bit-exact, and resume cleanly after reopen.
  const GridLattice lattice = LatLonLattice(16, 12);
  uint64_t run_bytes = 0;
  {
    TileStoreOptions probe;
    probe.dir = FreshDir("probe");
    auto store = TileStore::Open(probe);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 0));
    run_bytes = (*store)->TotalStats().bytes_written;
  }
  ASSERT_GT(run_bytes, 0u);

  for (uint64_t budget = 64; budget < 2 * run_bytes; budget += 257) {
    FaultyFileInjector injector({/*seed=*/budget, 0.0, 0.0, 0.0,
                                 /*fail_at_byte=*/budget});
    TileStoreOptions options;
    options.dir = FreshDir("kill-" + std::to_string(budget));
    options.file_factory = injector.Factory();
    int64_t last_ok = -1;
    {
      auto store = TileStore::Open(options);
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      for (int64_t f = 0; f < 3; ++f) {
        Status st = PutFullFrame(store->get(), "src", lattice, f);
        if (!st.ok()) break;  // the crash point
        last_ok = f;
      }
    }
    injector.Disarm();

    TileStoreOptions clean = options;
    clean.file_factory = nullptr;
    auto reopened = TileStore::Open(clean);
    ASSERT_TRUE(reopened.ok())
        << "budget " << budget << ": " << reopened.status().ToString();
    const std::vector<int64_t> ids =
        (*reopened)->FrameIds("src", INT64_MIN, INT64_MAX);
    // Every acked put recovered; nothing beyond the last ack.
    ASSERT_EQ(ids.size(), static_cast<size_t>(last_ok + 1))
        << "budget " << budget;
    for (int64_t f : ids) {
      CollectingSink sink;
      GS_ASSERT_OK((*reopened)->ScanFrame("src", f, StoreScan{}, &sink));
      const auto points = PointMap(sink.events());
      ASSERT_EQ(points.size(), static_cast<size_t>(lattice.num_cells()))
          << "budget " << budget << " frame " << f;
      EXPECT_EQ(points.at({7, 5}), TestValue(f, 7, 5));
    }
    // The store stays writable after recovery.
    GS_ASSERT_OK(PutFullFrame(reopened->get(), "src", lattice, 99));
    EXPECT_EQ((*reopened)->Watermark("src"), 99);
  }
}

}  // namespace
}  // namespace geostreams
