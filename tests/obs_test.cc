// Observability tests: metric primitives (counter atomicity, histogram
// bucket boundaries, percentile interpolation), registry semantics
// (get-or-create, kind conflicts, Prometheus rendering, collectors),
// trace mechanics (span nesting, ring eviction), and loopback
// end-to-end runs exercising METRICS and TRACE over the TCP control
// plane against a live traced query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"

#include "net/geostreams_client.h"
#include "net/ingest_session.h"
#include "net/net_server.h"
#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, IncrementByDeltaAndSet) {
  Counter counter;
  counter.Increment(41);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
  counter.Set(7);  // collector mirror path
  EXPECT_EQ(counter.Value(), 7u);
  Gauge gauge;
  gauge.Set(123);
  EXPECT_EQ(gauge.Value(), 123u);
}

// ---------------------------------------------------------------------------
// MetricHistogram

TEST(MetricHistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  // Prometheus `le` semantics: bucket i counts samples <= bounds[i],
  // the extra final bucket is +Inf.
  MetricHistogram hist({10, 100, 1000});
  for (uint64_t v : {0u, 10u, 11u, 100u, 1000u, 1001u}) hist.Observe(v);
  const MetricHistogram::Snapshot snap = hist.TakeSnapshot();
  ASSERT_EQ(snap.bounds, (std::vector<uint64_t>{10, 100, 1000}));
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);  // 0, 10
  EXPECT_EQ(snap.counts[1], 2u);  // 11, 100
  EXPECT_EQ(snap.counts[2], 1u);  // 1000
  EXPECT_EQ(snap.counts[3], 1u);  // 1001 -> +Inf
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 0u + 10 + 11 + 100 + 1000 + 1001);
}

TEST(MetricHistogramTest, CannedBucketLayoutsAreStrictlyAscending) {
  for (const std::vector<uint64_t>& bounds :
       {MetricHistogram::LatencyBucketsUs(),
        MetricHistogram::DepthBuckets(),
        MetricHistogram::ExponentialBuckets(1, 4.0, 13)}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
    }
  }
  EXPECT_EQ(MetricHistogram::DepthBuckets().front(), 1u);
  EXPECT_EQ(MetricHistogram::DepthBuckets().back(), 65536u);
}

TEST(MetricHistogramTest, PercentileInterpolatesWithinBucket) {
  MetricHistogram hist({10, 20});
  for (int i = 0; i < 10; ++i) hist.Observe(5);   // bucket [0, 10]
  for (int i = 0; i < 10; ++i) hist.Observe(15);  // bucket (10, 20]
  // Rank 10 of 20 lands exactly at the first bucket's upper bound.
  EXPECT_DOUBLE_EQ(hist.Percentile(50), 10.0);
  // Rank 15 is halfway through the second bucket: 10 + 0.5 * 10.
  EXPECT_DOUBLE_EQ(hist.Percentile(75), 15.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(100), 20.0);
  // Percentile 0 answers with the first sample's bucket, not 0.
  EXPECT_GT(hist.Percentile(0), 0.0);
}

TEST(MetricHistogramTest, EmptyAndOverflowPercentiles) {
  MetricHistogram hist({10, 20});
  EXPECT_DOUBLE_EQ(hist.Percentile(99), 0.0);  // empty
  hist.Observe(10'000);                        // +Inf bucket
  // The best honest answer for an overflow sample is the largest
  // finite bound.
  EXPECT_DOUBLE_EQ(hist.Percentile(99), 20.0);
}

TEST(MetricHistogramTest, ConcurrentObservesSumExactly) {
  MetricHistogram hist(MetricHistogram::LatencyBucketsUs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Observe(static_cast<uint64_t>(t * 1000 + i % 17));
      }
    });
  }
  for (auto& t : threads) t.join();
  const MetricHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(MetricHistogramTest, MergeFromRequiresMatchingBounds) {
  MetricHistogram a({10, 20});
  MetricHistogram b({10, 20});
  MetricHistogram c({10, 30});
  a.Observe(5);
  b.Observe(15);
  b.Observe(25);
  c.Observe(25);
  a.MergeFrom(b);
  EXPECT_EQ(a.Count(), 3u);
  a.MergeFrom(c);  // mismatched shape: ignored, not corrupted
  EXPECT_EQ(a.Count(), 3u);
  const MetricHistogram::Snapshot snap = a.TakeSnapshot();
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);  // 25 -> +Inf for bounds {10,20}
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, GetOrCreateReturnsStableSeries) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("geostreams_test_total", "help");
  Counter* b = reg.GetCounter("geostreams_test_total", "other help");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);  // same (name, labels) -> same instance
  Counter* labeled =
      reg.GetCounter("geostreams_test_total", "help", {{"source", "x"}});
  ASSERT_NE(labeled, nullptr);
  EXPECT_NE(labeled, a);
  EXPECT_EQ(reg.NumSeries(), 2u);
}

TEST(MetricsRegistryTest, KindConflictReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("geostreams_thing", "help"), nullptr);
  EXPECT_EQ(reg.GetGauge("geostreams_thing", "help"), nullptr);
  EXPECT_EQ(reg.GetHistogram("geostreams_thing", "help"), nullptr);
  // The counter itself stays usable.
  EXPECT_NE(reg.GetCounter("geostreams_thing", "help"), nullptr);
}

TEST(MetricsRegistryTest, RendersPrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("geostreams_events_total", "Events seen",
                 {{"source", "goes.band1"}})
      ->Increment(3);
  reg.GetGauge("geostreams_depth", "Queue depth")->Set(7);
  MetricHistogram* hist =
      reg.GetHistogram("geostreams_wait_us", "Wait", {}, {10, 100});
  hist->Observe(5);
  hist->Observe(50);
  hist->Observe(5000);

  const std::string out = reg.RenderPrometheus();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
  EXPECT_NE(out.find("# HELP geostreams_events_total Events seen\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE geostreams_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("geostreams_events_total{source=\"goes.band1\"} 3\n"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("# TYPE geostreams_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("geostreams_depth 7\n"), std::string::npos);
  // Histogram series: cumulative buckets, +Inf, _sum, _count.
  EXPECT_NE(out.find("# TYPE geostreams_wait_us histogram\n"),
            std::string::npos);
  EXPECT_NE(out.find("geostreams_wait_us_bucket{le=\"10\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("geostreams_wait_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("geostreams_wait_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("geostreams_wait_us_sum 5055\n"), std::string::npos);
  EXPECT_NE(out.find("geostreams_wait_us_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  MetricsRegistry reg;
  reg.GetCounter("geostreams_esc_total", "h",
                 {{"name", "a\"b\\c\nd"}})
      ->Increment();
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("geostreams_esc_total{name=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos)
      << out;
}

TEST(MetricsRegistryTest, CollectorsRefreshMirrorsAtScrapeTime) {
  MetricsRegistry reg;
  Counter* mirror = reg.GetCounter("geostreams_mirror_total", "h");
  uint64_t source_of_truth = 0;
  reg.AddCollector([&] { mirror->Set(source_of_truth); });
  source_of_truth = 42;
  const std::string out = reg.RenderPrometheus();
  EXPECT_NE(out.find("geostreams_mirror_total 42\n"), std::string::npos)
      << out;
}

// ---------------------------------------------------------------------------
// Tracing primitives

TEST(TraceTest, SpanTimerNestingComputesExclusiveTime) {
  TraceContext trace(7, "goes.band1");
  const std::string outer_name = "op1.region";
  const std::string inner_name = "q1.delivery";
  {
    SpanTimer outer(&trace, outer_name, nullptr);
    SpanTimer inner(&trace, inner_name, nullptr);
  }
  const TraceRecord record = trace.Finish();
  EXPECT_EQ(record.trace_id, 7u);
  EXPECT_EQ(record.origin, "goes.band1");
  ASSERT_EQ(record.spans.size(), 2u);
  // Destructors fire innermost-first; Finish flips to delivery order.
  EXPECT_EQ(record.spans[0].name, outer_name);
  EXPECT_EQ(record.spans[1].name, inner_name);
  // The outer span includes the inner subtree.
  EXPECT_GE(record.spans[0].inclusive_us, record.spans[1].inclusive_us);
  EXPECT_LE(record.spans[0].exclusive_us, record.spans[0].inclusive_us);
  const std::string line = record.ToString();
  EXPECT_NE(line.find("trace=7"), std::string::npos) << line;
  EXPECT_NE(line.find("op1.region="), std::string::npos) << line;
}

TEST(TraceTest, SpanTimerObservesExclusiveIntoHistogram) {
  MetricHistogram hist(MetricHistogram::LatencyBucketsUs());
  TraceContext trace(1, "src");
  const std::string name = "op";
  { SpanTimer timer(&trace, name, &hist); }
  EXPECT_EQ(hist.Count(), 1u);
}

TEST(TraceTest, QueueWaitStamps) {
  TraceContext trace(1, "src");
  EXPECT_EQ(trace.MarkDequeued(), 0u);  // never enqueued
  trace.MarkEnqueued();
  const uint64_t wait = trace.MarkDequeued();
  EXPECT_EQ(trace.queue_wait_us(), wait);
  const TraceRecord record = trace.Finish();
  EXPECT_EQ(record.queue_wait_us, wait);
}

TEST(TraceTest, ForkCopiesIdentityNotSpans) {
  TraceContext trace(9, "src");
  const std::string name = "op";
  { SpanTimer timer(&trace, name, nullptr); }
  auto fork = trace.Fork("q1");
  ASSERT_NE(fork, nullptr);
  EXPECT_EQ(fork->trace_id(), 9u);
  EXPECT_EQ(fork->origin(), "src");
  EXPECT_EQ(fork->pipeline(), "q1");
  EXPECT_TRUE(fork->Finish().spans.empty());
  EXPECT_EQ(trace.Finish().spans.size(), 1u);
}

TEST(TraceTest, WallClockAnchorStampedAndForkedAndPrinted) {
  // Steady-clock stamps order events within the process only; the
  // wall anchor lets TRACE output be lined up with external logs.
  const uint64_t before = TraceWallNowUs();
  TraceContext trace(11, "src");
  const uint64_t after = TraceWallNowUs();
  const TraceRecord record = trace.Finish();
  EXPECT_GE(record.born_wall_us, before);
  EXPECT_LE(record.born_wall_us, after);
  // Forks inherit the anchor (same birth instant, different pipeline).
  auto fork = trace.Fork("q1");
  EXPECT_EQ(fork->Finish().born_wall_us, record.born_wall_us);
  const std::string line = record.ToString();
  EXPECT_NE(line.find("wall_us=" + std::to_string(record.born_wall_us)),
            std::string::npos)
      << line;
}

TEST(TraceTest, ScopedActivationNestsAndRestores) {
  EXPECT_EQ(ActiveTrace(), nullptr);
  TraceContext outer(1, "a"), inner(2, "b");
  {
    ScopedTraceActivation activate_outer(&outer);
    EXPECT_EQ(ActiveTrace(), &outer);
    {
      ScopedTraceActivation activate_inner(&inner);
      EXPECT_EQ(ActiveTrace(), &inner);
    }
    EXPECT_EQ(ActiveTrace(), &outer);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
}

TEST(TraceRingTest, OrdinalsSurviveEviction) {
  TraceRing ring(3);
  for (uint64_t i = 0; i < 10; ++i) {
    TraceRecord record;
    record.trace_id = i;
    ring.Push(std::move(record));
  }
  const TraceRing::Snapshot snap = ring.TakeSnapshot();
  EXPECT_EQ(snap.total, 10u);
  ASSERT_EQ(snap.records.size(), 3u);
  // Oldest kept first; ordinals keep climbing past eviction.
  EXPECT_EQ(snap.records[0].ordinal, 7u);
  EXPECT_EQ(snap.records[1].ordinal, 8u);
  EXPECT_EQ(snap.records[2].ordinal, 9u);
  EXPECT_EQ(snap.records[0].trace_id, 7u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(TraceRing(0).capacity(), 1u);  // clamped
}

// ---------------------------------------------------------------------------
// Ingest session counters feed the registry

class NullSink : public EventSink {
 public:
  Status Consume(const StreamEvent&) override { return Status::OK(); }
};

TEST(ObsIngestTest, SessionCountsAcksReplaysAndShedding) {
  MetricsRegistry reg;
  MemoryTracker pressure;
  NullSink sink;
  IngestSessionOptions options;
  options.metrics = &reg;
  options.memory = &pressure;
  options.admission_max_bytes = 1024;
  options.overload_policy = IngestSessionOptions::OverloadPolicy::kShed;
  IngestSession session("sat.band1", &sink, options);

  auto ingest = [&](uint64_t seq) {
    IngestMessage message;
    message.source = "sat.band1";
    message.seq = seq;
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    batch->Append1(0, 0, 0, 1.0);
    message.event = StreamEvent::Batch(std::move(batch));
    return session.Handle(message);
  };

  ingest(1);        // delivered + acked
  ingest(1);        // duplicate -> replay re-ack
  ingest(5);        // gap -> nack
  pressure.Update("ballast", 1u << 20);
  ingest(2);        // kShed: acked but dropped
  pressure.Update("ballast", 0);

  auto value = [&](const char* name) {
    return reg.GetCounter(name, "", {{"source", "sat.band1"}})->Value();
  };
  EXPECT_EQ(value("geostreams_ingest_delivered_total"), 1u);
  EXPECT_EQ(value("geostreams_ingest_replays_total"), 1u);
  EXPECT_EQ(value("geostreams_ingest_gaps_total"), 1u);
  EXPECT_EQ(value("geostreams_ingest_nacks_total"), 1u);
  EXPECT_EQ(value("geostreams_ingest_shed_events_total"), 1u);
  EXPECT_EQ(value("geostreams_ingest_shed_points_total"), 1u);
  EXPECT_GT(value("geostreams_ingest_shed_bytes_total"), 0u);
  EXPECT_EQ(value("geostreams_ingest_acks_total"), 3u);
  // The shed figures surface in ISTATS too.
  const std::string line = session.StatsLine();
  EXPECT_NE(line.find("shed_points=1"), std::string::npos) << line;
  EXPECT_NE(line.find("overload_shed=1"), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// End-to-end over TCP: METRICS and TRACE against a live traced query

/// 2-band GOES-like instrument behind DsmsServer + NetServer on an
/// ephemeral port (the net_test.cc fixture, trimmed).
class ObsFixture {
 public:
  explicit ObsFixture(DsmsOptions options = {})
      : server_(options), net_(&server_, {}), gen_(MakeConfig(),
                                                   ScanSchedule::GoesRoutine()) {
    Status st = gen_.Init();
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (size_t b = 0; b < 2; ++b) {
      auto d = gen_.Descriptor(b);
      EXPECT_TRUE(d.ok());
      st = server_.RegisterStream(*d);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    st = net_.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  static InstrumentConfig MakeConfig() {
    InstrumentConfig config;
    config.crs_name = "latlon";
    config.cells_per_sector = 24 * 16;
    config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
    config.name_prefix = "goes";
    return config;
  }

  Status Ingest(int64_t first_scan, int64_t count) {
    std::vector<EventSink*> sinks = {server_.ingest("goes.band2"),
                                     server_.ingest("goes.band1")};
    GEOSTREAMS_RETURN_IF_ERROR(gen_.GenerateScans(first_scan, count, sinks));
    return server_.Flush();
  }

  DsmsServer& server() { return server_; }
  NetServer& net() { return net_; }

 private:
  DsmsServer server_;
  NetServer net_;
  StreamGenerator gen_;
};

int64_t ParseIdFromOk(const std::string& response) {
  return std::stoll(response.substr(response.rfind(' ') + 1));
}

/// Reads `n` payload lines after a multi-line OK header, skipping any
/// result frames still queued ahead of them (delivery and control
/// share the connection).
std::vector<std::string> ReadLines(GeoStreamsClient& client, size_t n) {
  std::vector<std::string> lines;
  while (lines.size() < n) {
    auto unit = client.ReadNext();
    if (!unit.ok()) {
      ADD_FAILURE() << "line " << lines.size() << ": "
                    << unit.status().ToString();
      break;
    }
    if (!unit->line.has_value()) continue;  // an interleaved frame
    lines.push_back(*unit->line);
  }
  return lines;
}

TEST(ObsE2eTest, MetricsCommandRendersValidPrometheusExposition) {
  DsmsOptions options;
  options.workers = 1;
  options.trace_sample_every = 1;  // trace every batch
  ObsFixture fixture(options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY "));

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  for (int i = 0; i < 2; ++i) {
    auto frame = client.ReadFrame(20000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  }

  auto header = client.Command("METRICS", 20000);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  ASSERT_TRUE(StartsWith(*header, "OK METRICS lines=")) << *header;
  const size_t lines = std::stoull(
      header->substr(std::string("OK METRICS lines=").size()));
  ASSERT_GT(lines, 0u);
  const std::vector<std::string> body = ReadLines(client, lines);
  ASSERT_EQ(body.size(), lines);

  // Structurally valid exposition: every line is a comment or
  // `name[{labels}] value`, and every sample's family was declared
  // with # TYPE before it.
  std::string joined;
  size_t samples = 0;
  for (const std::string& line : body) {
    joined += line;
    joined += '\n';
    if (line.empty() || line[0] == '#') continue;
    ++samples;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    EXPECT_NE(value.find_first_of("0123456789"), std::string::npos) << line;
  }
  EXPECT_GT(samples, 10u);

  // The acceptance surface: scheduler queue histograms, per-operator
  // latency percentiles' raw series, supervision and query gauges.
  for (const char* expect :
       {"# TYPE geostreams_scheduler_queue_wait_us histogram",
        "geostreams_scheduler_queue_wait_us_bucket{le=\"+Inf\"}",
        "geostreams_scheduler_queue_depth_bucket",
        "# TYPE geostreams_operator_latency_us histogram",
        "geostreams_operator_latency_us_bucket{op=\"delivery\"",
        "geostreams_scheduler_enqueued_total",
        "geostreams_scheduler_processed_total",
        "geostreams_scheduler_shed_total",
        "geostreams_pipeline_restarts_total",
        "geostreams_queries 1",
        "geostreams_memory_tracked_bytes"}) {
    EXPECT_NE(joined.find(expect), std::string::npos)
        << "missing: " << expect;
  }

  // The shared registry is reachable programmatically too, and the
  // operator latency histograms actually saw the traced batches.
  MetricHistogram* delivery = fixture.server().metrics_registry()->GetHistogram(
      "geostreams_operator_latency_us", "", {{"op", "delivery"}});
  ASSERT_NE(delivery, nullptr);
  EXPECT_GT(delivery->Count(), 0u);
  EXPECT_GE(delivery->Percentile(99), delivery->Percentile(50));
}

TEST(ObsE2eTest, TraceCommandDumpsSampledSpans) {
  DsmsOptions options;
  options.workers = 1;
  options.trace_sample_every = 1;
  ObsFixture fixture(options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const int64_t id = ParseIdFromOk(*response);

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  auto frame = client.ReadFrame(20000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();

  auto header = client.Command(
      StringPrintf("TRACE %lld", static_cast<long long>(id)), 20000);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  ASSERT_TRUE(StartsWith(
      *header, StringPrintf("OK TRACE %lld total=",
                            static_cast<long long>(id))))
      << *header;
  const size_t kept_at = header->find("kept=");
  ASSERT_NE(kept_at, std::string::npos);
  const size_t kept = std::stoull(header->substr(kept_at + 5));
  ASSERT_GT(kept, 0u) << *header;

  const std::vector<std::string> lines = ReadLines(client, kept);
  ASSERT_EQ(lines.size(), kept);
  for (const std::string& line : lines) {
    EXPECT_TRUE(StartsWith(line, "TR ")) << line;
    EXPECT_NE(line.find("trace="), std::string::npos) << line;
    EXPECT_NE(line.find("queue_us="), std::string::npos) << line;
    EXPECT_NE(line.find("total_us="), std::string::npos) << line;
    // Per-operator spans: at least the delivery stage must appear.
    EXPECT_NE(line.find(".delivery="), std::string::npos) << line;
  }

  // Unknown ids keep the DLQ contract.
  auto unknown = client.Command("TRACE 9999");
  ASSERT_TRUE(unknown.ok());
  EXPECT_TRUE(StartsWith(*unknown, "ERR NotFound")) << *unknown;
}

TEST(ObsE2eTest, SamplingDisabledProducesNoTraces) {
  DsmsOptions options;
  options.workers = 1;  // trace_sample_every stays 0
  ObsFixture fixture(options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  const int64_t id = ParseIdFromOk(*response);

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  auto frame = client.ReadFrame(20000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();

  auto header = client.Command(
      StringPrintf("TRACE %lld", static_cast<long long>(id)), 20000);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(*header, StringPrintf("OK TRACE %lld total=0 kept=0",
                                  static_cast<long long>(id)))
      << *header;
}

TEST(ObsE2eTest, SynchronousServerTracesInline) {
  // workers=0: the whole fan-out runs on the ingest thread; sampled
  // traces land in the server-wide inline ring.
  DsmsOptions options;
  options.trace_sample_every = 1;
  ObsFixture fixture(options);

  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "goes.band1", [&](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  EXPECT_EQ(frames.load(), 2);

  auto traces = fixture.server().QueryTraces(*id);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  EXPECT_GT(traces->total, 0u);
  ASSERT_FALSE(traces->records.empty());
  // Inline traces have no scheduler queue: pipeline is empty and the
  // wait is zero. Batches of the queried band carry operator spans
  // (band2 batches feed no query, so their records stay span-free).
  bool any_spans = false;
  for (const TraceRecord& record : traces->records) {
    EXPECT_TRUE(record.pipeline.empty());
    EXPECT_EQ(record.queue_wait_us, 0u);
    any_spans = any_spans || !record.spans.empty();
  }
  EXPECT_TRUE(any_spans);
}

TEST(ObsE2eTest, SharedRestrictionCarriesTraceToPipelines) {
  // region() queries route through SharedRestrictionOp, which splits
  // one ingested batch into fresh per-query batches. The split must
  // carry event.trace, or worker-pool pipelines never record spans
  // (the regional_server configuration).
  DsmsOptions options;
  options.workers = 1;
  options.shared_restriction = true;
  options.index_kind = DsmsOptions::IndexKind::kCascadeTree;
  options.trace_sample_every = 1;
  ObsFixture fixture(options);

  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "region(goes.band1, bbox(-180, -90, 180, 90))",
      [&](int64_t, const Raster&, const std::vector<uint8_t>&) { ++frames; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  EXPECT_GT(frames.load(), 0);

  auto traces = fixture.server().QueryTraces(*id);
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  EXPECT_GT(traces->total, 0u);
  ASSERT_FALSE(traces->records.empty());
  for (const TraceRecord& record : traces->records) {
    EXPECT_FALSE(record.pipeline.empty());
    ASSERT_FALSE(record.spans.empty());
    EXPECT_NE(record.spans.back().name.find(".delivery"),
              std::string::npos)
        << record.ToString();
  }
}

// ---------------------------------------------------------------------------
// Summary line (the --metrics-interval surface)

TEST(ObsSummaryTest, SummaryLineCoversCoreFigures) {
  DsmsOptions options;
  options.workers = 1;
  options.trace_sample_every = 1;
  ObsFixture fixture(options);
  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "goes.band1", [&](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 2));

  const std::string line = fixture.server().SummaryLine();
  for (const char* key :
       {"queries=1", "enqueued=", "processed=", "shed=", "restarts=",
        "dead_letters=", "mem=", "traces="}) {
    EXPECT_NE(line.find(key), std::string::npos)
        << "missing " << key << " in: " << line;
  }
  // Something was actually enqueued and traced.
  EXPECT_EQ(line.find("enqueued=0 "), std::string::npos) << line;
  EXPECT_EQ(line.find("traces=0"), std::string::npos) << line;
  // The freshness/latency plane reports even when sources went quiet.
  EXPECT_NE(line.find("freshness_us="), std::string::npos) << line;
  EXPECT_NE(line.find("e2e_p95_us="), std::string::npos) << line;
}

// ---------------------------------------------------------------------------
// OpenMetrics exemplars

TEST(MetricsRegistryTest, RendersExemplarsOnBucketLines) {
  MetricsRegistry reg;
  MetricHistogram* hist = reg.GetHistogram("geostreams_exemplar_us", "h",
                                           {{"stage", "send"}}, {10, 100});
  hist->ObserveWithExemplar(50, 7, "q1");
  std::string out = reg.RenderOpenMetrics();
  EXPECT_NE(out.find("geostreams_exemplar_us_bucket{stage=\"send\","
                     "le=\"100\"} 1 # {trace=\"7\",pipeline=\"q1\"} 50\n"),
            std::string::npos)
      << out;
  // Buckets that never saw an exemplared observation stay bare.
  EXPECT_NE(out.find("le=\"10\"} 0\n"), std::string::npos) << out;
  // OpenMetrics expositions are # EOF-terminated.
  EXPECT_NE(out.size(), 0u);
  EXPECT_EQ(out.rfind("# EOF\n"), out.size() - 6) << out;
  // The 0.0.4 exposition stays bare: its parsers read an exemplar
  // tail as a malformed timestamp and fail the whole scrape.
  EXPECT_EQ(reg.RenderPrometheus().find(" # {"), std::string::npos);
  EXPECT_EQ(reg.RenderPrometheus().find("# EOF"), std::string::npos);

  // A later observation into the same bucket takes the slot (one
  // exemplar per bucket, latest wins).
  hist->ObserveWithExemplar(60, 9, "q2");
  out = reg.RenderOpenMetrics();
  EXPECT_NE(out.find("le=\"100\"} 2 # {trace=\"9\",pipeline=\"q2\"} 60\n"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("trace=\"7\""), std::string::npos) << out;

  // The +Inf bucket carries its own exemplar.
  hist->ObserveWithExemplar(5000, 11, "q1");
  out = reg.RenderOpenMetrics();
  EXPECT_NE(out.find("le=\"+Inf\"} 3 # {trace=\"11\",pipeline=\"q1\"} 5000\n"),
            std::string::npos)
      << out;
}

TEST(MetricsRegistryTest, OpenMetricsCounterMetadataDropsTotalSuffix) {
  MetricsRegistry reg;
  reg.GetCounter("geostreams_things_total", "things")->Increment();
  const std::string om = reg.RenderOpenMetrics();
  // OpenMetrics names the counter family without the _total suffix in
  // metadata; the sample line keeps the full name.
  EXPECT_NE(om.find("# TYPE geostreams_things counter\n"), std::string::npos)
      << om;
  EXPECT_NE(om.find("geostreams_things_total 1\n"), std::string::npos) << om;
  // 0.0.4 keeps the full name in metadata too.
  const std::string prom = reg.RenderPrometheus();
  EXPECT_NE(prom.find("# TYPE geostreams_things_total counter\n"),
            std::string::npos)
      << prom;
}

TEST(MetricsRegistryTest, ExemplarPipelineLabelsAreEscaped) {
  MetricsRegistry reg;
  MetricHistogram* hist =
      reg.GetHistogram("geostreams_exemplar_esc_us", "h", {}, {10});
  hist->ObserveWithExemplar(5, 1, "a\"b\\c");
  const std::string out = reg.RenderOpenMetrics();
  EXPECT_NE(out.find("# {trace=\"1\",pipeline=\"a\\\"b\\\\c\"} 5\n"),
            std::string::npos)
      << out;
}

TEST(ObserveE2eStageTest, SharedFamilyAndExemplarLinkage) {
  MetricsRegistry reg;
  // A trace with a reserved ring slot exemplar-links the observation.
  TraceContext linked(1, "sat.band1");
  linked.set_ring_ordinal(5);
  ObserveE2eStage(&reg, "send", "source", "sat.band1", 42, &linked);
  // No ring slot (or no trace at all): plain observation.
  TraceContext unlinked(2, "sat.band1");
  ObserveE2eStage(&reg, "queue", "query", "q1", 7, &unlinked);
  ObserveE2eStage(&reg, "write", "query", "q1", 9, nullptr);
  // Null registry is a no-op, not a crash.
  ObserveE2eStage(nullptr, "send", "source", "s", 1, &linked);

  const std::string out = reg.RenderOpenMetrics();
  EXPECT_NE(
      out.find("geostreams_e2e_latency_us_count{stage=\"send\","
               "source=\"sat.band1\"} 1\n"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("# {trace=\"5\",pipeline=\"\"} 42"), std::string::npos)
      << out;
  EXPECT_NE(out.find("geostreams_e2e_latency_us_count{stage=\"queue\","
                     "query=\"q1\"} 1\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("{stage=\"write\",query=\"q1\"}"), std::string::npos)
      << out;
  // Exactly one exemplar across the family: the unlinked observations
  // must not have minted any.
  size_t exemplars = 0;
  for (size_t at = out.find(" # {"); at != std::string::npos;
       at = out.find(" # {", at + 1)) {
    ++exemplars;
  }
  EXPECT_EQ(exemplars, 1u) << out;
}

// ---------------------------------------------------------------------------
// Stage-chain anchors

TEST(TraceTest, IngestAnchorsSeedTheStageChain) {
  TraceContext trace(1, "src");
  EXPECT_EQ(trace.last_anchor_wall_us(), 0u);
  EXPECT_EQ(trace.AdvanceStage(100), 0u);  // no prior anchor

  trace.SetIngestAnchors(100, 150, 180);
  EXPECT_EQ(trace.capture_wall_us(), 100u);
  EXPECT_EQ(trace.admit_wall_us(), 150u);
  EXPECT_EQ(trace.durable_wall_us(), 180u);
  // The chain starts at the last nonzero anchor: durable.
  EXPECT_EQ(trace.last_anchor_wall_us(), 180u);
  // Consecutive stages are disjoint segments summing to end-to-end.
  EXPECT_EQ(trace.AdvanceStage(200), 20u);
  EXPECT_EQ(trace.last_anchor_wall_us(), 200u);
  EXPECT_EQ(trace.AdvanceStage(230), 30u);
  // A clock step backwards yields 0, never an underflowed duration.
  EXPECT_EQ(trace.AdvanceStage(220), 0u);
  EXPECT_EQ(trace.last_anchor_wall_us(), 220u);

  // Without a journal the chain seeds at admission; without any
  // anchors at capture.
  TraceContext unjournaled(2, "src");
  unjournaled.SetIngestAnchors(100, 150, 0);
  EXPECT_EQ(unjournaled.last_anchor_wall_us(), 150u);
  TraceContext bare(3, "src");
  bare.SetIngestAnchors(100, 0, 0);
  EXPECT_EQ(bare.last_anchor_wall_us(), 100u);

  // Forks carry the chain across the scheduler boundary.
  auto fork = unjournaled.Fork("q1");
  EXPECT_EQ(fork->capture_wall_us(), 100u);
  EXPECT_EQ(fork->admit_wall_us(), 150u);
  EXPECT_EQ(fork->last_anchor_wall_us(), 150u);
  // The finished record renders the anchors for TRACE correlation.
  const std::string line = unjournaled.Finish().ToString();
  EXPECT_NE(line.find("capture_us=100 admit_us=150 durable_us=0"),
            std::string::npos)
      << line;
}

TEST(TraceTest, SourceStageOwnershipTransfersToFirstFork) {
  // On an N-pipeline fan-out the source-side stages (send, journal,
  // total) must be observed once per frame, not once per fork: the
  // root hands ownership to its FIRST fork, later forks observe only
  // their own per-pipeline stages.
  TraceContext root(1, "src");
  EXPECT_TRUE(root.observes_source_stages());
  auto first = root.Fork("q1");
  EXPECT_TRUE(first->observes_source_stages());
  EXPECT_FALSE(root.observes_source_stages());
  auto second = root.Fork("q2");
  EXPECT_FALSE(second->observes_source_stages());
  // A grandchild fork keeps passing the baton down the owning chain.
  auto grand = first->Fork("q1.sub");
  EXPECT_TRUE(grand->observes_source_stages());
  EXPECT_FALSE(first->observes_source_stages());

  // `total` is one-shot even on the owner (the inline workers=0 path
  // runs one trace through every query's delivery chain).
  TraceContext inline_root(2, "src");
  EXPECT_TRUE(inline_root.ClaimTotalStage());
  EXPECT_FALSE(inline_root.ClaimTotalStage());
  EXPECT_FALSE(second->ClaimTotalStage());  // non-owner never claims
  EXPECT_TRUE(grand->ClaimTotalStage());
}

TEST(TraceRingTest, ReserveAssignsOrdinalsBeforePush) {
  TraceRing ring(2);
  // Ordinals hand out at reservation so in-flight traces can stamp
  // them onto exemplars before the record lands.
  EXPECT_EQ(ring.Reserve(), 0u);
  EXPECT_EQ(ring.Reserve(), 1u);
  EXPECT_EQ(ring.total(), 2u);
  TraceRecord second;
  second.ordinal = 1;
  ring.PushReserved(std::move(second));
  TraceRecord third;
  third.ordinal = ring.Reserve();
  ring.PushReserved(std::move(third));
  const TraceRing::Snapshot snap = ring.TakeSnapshot();
  // Ordinal 0 was reserved but never pushed (its event was shed):
  // total counts the reservation, the kept records skip the gap.
  EXPECT_EQ(snap.total, 3u);
  ASSERT_EQ(snap.records.size(), 2u);
  EXPECT_EQ(snap.records[0].ordinal, 1u);
  EXPECT_EQ(snap.records[1].ordinal, 2u);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(EventLogTest, OrdinalsSurviveEvictionAndRenderOneLine) {
  EventLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  for (int i = 0; i < 10; ++i) {
    const uint64_t ordinal =
        log.Append(i % 2 ? EventSeverity::kWarn : EventSeverity::kInfo,
                   "test", "tick", StringPrintf("i=%d", i));
    EXPECT_EQ(ordinal, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(log.total(), 10u);
  const EventLog::Snapshot snap = log.TakeSnapshot();
  EXPECT_EQ(snap.total, 10u);
  ASSERT_EQ(snap.events.size(), 3u);
  // Oldest kept first; ordinals keep climbing past eviction.
  EXPECT_EQ(snap.events[0].ordinal, 7u);
  EXPECT_EQ(snap.events[2].ordinal, 9u);
  EXPECT_EQ(snap.events[0].detail, "i=7");
  EXPECT_GT(snap.events[0].wall_us, 0u);
  const std::string line = snap.events[0].ToString();
  EXPECT_TRUE(StartsWith(line, "EV 7 wall_us=")) << line;
  EXPECT_NE(line.find(" sev=warn comp=test kind=tick i=7"),
            std::string::npos)
      << line;
  // Zero capacity clamps to one so the newest event always survives.
  EXPECT_EQ(EventLog(0).capacity(), 1u);
}

TEST(EventLogTest, ConcurrentAppendsAssignUniqueOrdinals) {
  EventLog log(1024);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Append(EventSeverity::kInfo, "test", "tick", "");
      }
    });
  }
  for (auto& t : threads) t.join();
  const EventLog::Snapshot snap = log.TakeSnapshot();
  EXPECT_EQ(snap.total, static_cast<uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.events.size(), static_cast<size_t>(kThreads) * kPerThread);
  for (size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].ordinal, snap.events[i - 1].ordinal + 1);
  }
}

// ---------------------------------------------------------------------------
// Freshness

TEST(ObsE2eTest, FreshnessGaugeAgesWhileSourceIsIdle) {
  ObsFixture fixture;  // synchronous server: ingest on this thread
  GS_ASSERT_OK(fixture.Ingest(0, 1));

  auto freshness = [&]() -> long long {
    const std::string out = fixture.server().RenderMetrics();
    const std::string key =
        "geostreams_source_freshness_us{source=\"goes.band1\"} ";
    const size_t at = out.find(key);
    if (at == std::string::npos) {
      ADD_FAILURE() << "freshness gauge missing:\n" << out;
      return -1;
    }
    return std::stoll(out.substr(at + key.size()));
  };
  // The gauge is computed at scrape time (now minus the newest
  // delivered frame's stamp), so an idle source visibly ages.
  const long long v1 = freshness();
  ASSERT_GE(v1, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const long long v2 = freshness();
  EXPECT_GT(v2, v1 + 10000) << "gauge did not age across 20ms of idle";
}

}  // namespace
}  // namespace geostreams
