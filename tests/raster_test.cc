#include "raster/raster.h"

#include <gtest/gtest.h>

#include <cmath>

#include "raster/frame_assembler.h"
#include "raster/histogram.h"
#include "raster/resample.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;

TEST(RasterTest, CreateAndAccess) {
  auto r = Raster::Create(4, 3, 1, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->width(), 4);
  EXPECT_EQ(r->height(), 3);
  EXPECT_EQ(r->num_pixels(), 12);
  EXPECT_DOUBLE_EQ(r->At(0, 0), 0.5);
  r->Set(2, 1, 7.0);
  EXPECT_DOUBLE_EQ(r->At(2, 1), 7.0);
}

TEST(RasterTest, CreateRejectsBadShapes) {
  EXPECT_FALSE(Raster::Create(0, 3, 1).ok());
  EXPECT_FALSE(Raster::Create(3, -1, 1).ok());
  EXPECT_FALSE(Raster::Create(3, 3, 0).ok());
  EXPECT_FALSE(Raster::Create(3, 3, kMaxBands + 1).ok());
}

TEST(RasterTest, MultiBand) {
  Raster r(2, 2, 3);
  r.Set(1, 1, 2, 9.0);
  EXPECT_DOUBLE_EQ(r.At(1, 1, 2), 9.0);
  EXPECT_DOUBLE_EQ(r.At(1, 1, 0), 0.0);
}

TEST(RasterTest, AtClampedReplicatesEdges) {
  Raster r(3, 3, 1);
  r.Set(0, 0, 1.0);
  r.Set(2, 2, 9.0);
  EXPECT_DOUBLE_EQ(r.AtClamped(-5, -5), 1.0);
  EXPECT_DOUBLE_EQ(r.AtClamped(10, 10), 9.0);
}

TEST(RasterTest, MinMaxMean) {
  Raster r(2, 2, 1);
  r.Set(0, 0, 1.0);
  r.Set(1, 0, 2.0);
  r.Set(0, 1, 3.0);
  r.Set(1, 1, 6.0);
  double lo, hi;
  r.MinMax(0, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);
  EXPECT_DOUBLE_EQ(r.Mean(), 3.0);
}

TEST(RasterTest, AbsDifference) {
  Raster a(2, 2, 1, 1.0);
  Raster b(2, 2, 1, 3.0);
  auto d = Raster::AbsDifference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 8.0);
  Raster c(2, 3, 1);
  EXPECT_FALSE(Raster::AbsDifference(a, c).ok());
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, CountsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_NEAR(h.Cdf(4.9), 0.5, 1e-9);
  EXPECT_NEAR(h.Cdf(9.9), 1.0, 1e-9);
  EXPECT_NEAR(h.Mean(), 5.0, 1e-9);
}

TEST(HistogramTest, OutOfRangeValuesClampToEdgeBins) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, Quantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.05), 5.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.5);
}

TEST(HistogramTest, StdDev) {
  Histogram h(-10.0, 10.0, 100);
  // Two-point distribution at -1 and 1: stddev 1.
  for (int i = 0; i < 500; ++i) {
    h.Add(-1.0);
    h.Add(1.0);
  }
  EXPECT_NEAR(h.StdDev(), 1.0, 1e-9);
  EXPECT_NEAR(h.Mean(), 0.0, 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.5);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.Cdf(1.0), 0.0);
}

TEST(HistogramTest, IgnoresNan) {
  Histogram h(0.0, 1.0, 4);
  h.Add(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
}

// --- Resampling --------------------------------------------------------------

TEST(ResampleTest, NearestPicksClosestPixel) {
  Raster r(2, 1, 1);
  r.Set(0, 0, 10.0);
  r.Set(1, 0, 20.0);
  EXPECT_DOUBLE_EQ(SampleRaster(r, 0.2, 0.0, 0, ResampleKernel::kNearest),
                   10.0);
  EXPECT_DOUBLE_EQ(SampleRaster(r, 0.8, 0.0, 0, ResampleKernel::kNearest),
                   20.0);
}

TEST(ResampleTest, BilinearInterpolates) {
  Raster r(2, 2, 1);
  r.Set(0, 0, 0.0);
  r.Set(1, 0, 10.0);
  r.Set(0, 1, 20.0);
  r.Set(1, 1, 30.0);
  EXPECT_DOUBLE_EQ(SampleRaster(r, 0.5, 0.5, 0, ResampleKernel::kBilinear),
                   15.0);
  EXPECT_DOUBLE_EQ(SampleRaster(r, 0.0, 0.0, 0, ResampleKernel::kBilinear),
                   0.0);
  EXPECT_DOUBLE_EQ(SampleRaster(r, 1.0, 0.0, 0, ResampleKernel::kBilinear),
                   10.0);
}

TEST(ResampleTest, BoxAverageHandlesEdges) {
  Raster r(3, 3, 1, 1.0);
  EXPECT_DOUBLE_EQ(BoxAverage(r, 0, 0, 2, 0), 1.0);
  // 2x2 block starting at (2, 2) only covers one valid pixel.
  r.Set(2, 2, 5.0);
  EXPECT_DOUBLE_EQ(BoxAverage(r, 2, 2, 2, 0), 5.0);
}

TEST(ResampleTest, ReduceAverages) {
  Raster r(4, 4, 1);
  for (int64_t y = 0; y < 4; ++y) {
    for (int64_t x = 0; x < 4; ++x) r.Set(x, y, static_cast<double>(x));
  }
  auto red = ReduceRaster(r, 2);
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(red->width(), 2);
  EXPECT_EQ(red->height(), 2);
  EXPECT_DOUBLE_EQ(red->At(0, 0), 0.5);  // mean of columns 0,1
  EXPECT_DOUBLE_EQ(red->At(1, 0), 2.5);  // mean of columns 2,3
}

TEST(ResampleTest, MagnifyReplicates) {
  Raster r(2, 1, 1);
  r.Set(0, 0, 1.0);
  r.Set(1, 0, 2.0);
  auto mag = MagnifyRaster(r, 3);
  ASSERT_TRUE(mag.ok());
  EXPECT_EQ(mag->width(), 6);
  EXPECT_EQ(mag->height(), 3);
  EXPECT_DOUBLE_EQ(mag->At(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(mag->At(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(mag->At(3, 0), 2.0);
  EXPECT_DOUBLE_EQ(mag->At(5, 2), 2.0);
}

TEST(ResampleTest, MagnifyThenReduceIsIdentity) {
  Raster r(3, 2, 1);
  for (int64_t y = 0; y < 2; ++y) {
    for (int64_t x = 0; x < 3; ++x) {
      r.Set(x, y, static_cast<double>(x * 10 + y));
    }
  }
  auto mag = MagnifyRaster(r, 4);
  ASSERT_TRUE(mag.ok());
  auto back = ReduceRaster(*mag, 4);
  ASSERT_TRUE(back.ok());
  auto diff = Raster::AbsDifference(r, *back);
  ASSERT_TRUE(diff.ok());
  EXPECT_NEAR(*diff, 0.0, 1e-9);
}

TEST(ResampleTest, InvalidFactorsRejected) {
  Raster r(2, 2, 1);
  EXPECT_FALSE(ReduceRaster(r, 0).ok());
  EXPECT_FALSE(MagnifyRaster(r, 0).ok());
  EXPECT_FALSE(ReduceRaster(Raster(), 2).ok());
}

// --- FrameAssembler -----------------------------------------------------------

TEST(FrameAssemblerTest, AssemblesFullFrame) {
  FrameAssembler assembler(-1.0);
  FrameInfo info;
  info.frame_id = 7;
  info.lattice = LatLonLattice(4, 3);
  GS_ASSERT_OK(assembler.Begin(info, 1));
  EXPECT_TRUE(assembler.active());

  PointBatch batch;
  batch.frame_id = 7;
  batch.band_count = 1;
  for (int32_t r = 0; r < 3; ++r) {
    for (int32_t c = 0; c < 4; ++c) {
      batch.Append1(c, r, 7, c * 10.0 + r);
    }
  }
  GS_ASSERT_OK(assembler.Add(batch));
  EXPECT_EQ(assembler.points_seen(), 12);
  auto frame = assembler.Finish();
  ASSERT_TRUE(frame.ok());
  EXPECT_DOUBLE_EQ(frame->raster.At(3, 2), 32.0);
  EXPECT_TRUE(frame->IsFilled(3, 2));
  EXPECT_FALSE(assembler.active());
}

TEST(FrameAssemblerTest, NodataFillsGaps) {
  FrameAssembler assembler(-99.0);
  FrameInfo info;
  info.frame_id = 1;
  info.lattice = LatLonLattice(2, 2);
  GS_ASSERT_OK(assembler.Begin(info, 1));
  PointBatch batch;
  batch.frame_id = 1;
  batch.band_count = 1;
  batch.Append1(0, 0, 1, 5.0);
  GS_ASSERT_OK(assembler.Add(batch));
  auto frame = assembler.Finish();
  ASSERT_TRUE(frame.ok());
  EXPECT_DOUBLE_EQ(frame->raster.At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(frame->raster.At(1, 1), -99.0);
  EXPECT_TRUE(frame->IsFilled(0, 0));
  EXPECT_FALSE(frame->IsFilled(1, 1));
}

TEST(FrameAssemblerTest, RejectsWrongFrameAndBounds) {
  FrameAssembler assembler;
  FrameInfo info;
  info.frame_id = 1;
  info.lattice = LatLonLattice(2, 2);
  GS_ASSERT_OK(assembler.Begin(info, 1));

  PointBatch wrong_frame;
  wrong_frame.frame_id = 2;
  wrong_frame.band_count = 1;
  wrong_frame.Append1(0, 0, 2, 0.0);
  EXPECT_FALSE(assembler.Add(wrong_frame).ok());

  PointBatch out_of_bounds;
  out_of_bounds.frame_id = 1;
  out_of_bounds.band_count = 1;
  out_of_bounds.Append1(5, 0, 1, 0.0);
  EXPECT_FALSE(assembler.Add(out_of_bounds).ok());

  PointBatch wrong_bands;
  wrong_bands.frame_id = 1;
  wrong_bands.band_count = 2;
  const double v[2] = {0.0, 0.0};
  wrong_bands.Append(0, 0, 1, v);
  EXPECT_FALSE(assembler.Add(wrong_bands).ok());
}

TEST(FrameAssemblerTest, RejectsNestedFramesAndEmptyFinish) {
  FrameAssembler assembler;
  FrameInfo info;
  info.frame_id = 1;
  info.lattice = LatLonLattice(2, 2);
  EXPECT_FALSE(assembler.Finish().ok());  // nothing open
  GS_ASSERT_OK(assembler.Begin(info, 1));
  EXPECT_FALSE(assembler.Begin(info, 1).ok());  // nested
}

TEST(FrameAssemblerTest, ReportsBufferedBytes) {
  FrameAssembler assembler;
  EXPECT_EQ(assembler.BufferedBytes(), 0u);
  FrameInfo info;
  info.frame_id = 1;
  info.lattice = LatLonLattice(16, 16);
  GS_ASSERT_OK(assembler.Begin(info, 1));
  EXPECT_GE(assembler.BufferedBytes(), 16u * 16u * sizeof(double));
}

}  // namespace
}  // namespace geostreams
