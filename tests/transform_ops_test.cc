#include <gtest/gtest.h>

#include <cmath>

#include "ops/spatial_transform_op.h"
#include "ops/stretch_transform_op.h"
#include "ops/value_transform_op.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

// --- Pointwise value transforms ----------------------------------------------

TEST(ValueTransformTest, AffineRescale) {
  GridLattice lattice = LatLonLattice(4, 2);
  ValueTransformOp op("v", ValueFn::AffineRescale(1, 10.0, 1.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 3));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 8u);
  EXPECT_NEAR(points.at({2, 1, 3}), 10.0 * TestValue(3, 2, 1) + 1.0, 1e-12);
}

TEST(ValueTransformTest, ColorToGray) {
  ValueTransformOp op("v", ValueFn::ColorToGray());
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 3;
  const double white[3] = {255.0, 255.0, 255.0};
  const double red[3] = {255.0, 0.0, 0.0};
  batch->Append(0, 0, 0, white);
  batch->Append(1, 0, 0, red);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  auto points = CollectPoints(sink.events());
  EXPECT_NEAR(points.at({0, 0, 0}), 255.0, 1e-9);
  EXPECT_NEAR(points.at({1, 0, 0}), 0.299 * 255.0, 1e-9);
}

TEST(ValueTransformTest, BandSelectAndClampAndAbs) {
  {
    ValueTransformOp op("v", ValueFn::BandSelect(2, 1));
    CollectingSink sink;
    op.BindOutput(&sink);
    auto batch = std::make_shared<PointBatch>();
    batch->band_count = 2;
    const double v[2] = {1.0, 42.0};
    batch->Append(0, 0, 0, v);
    GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
    EXPECT_DOUBLE_EQ(CollectPoints(sink.events()).at({0, 0, 0}), 42.0);
  }
  {
    ValueTransformOp op("v", ValueFn::ClampTo(1, 0.0, 1.0));
    CollectingSink sink;
    op.BindOutput(&sink);
    auto batch = std::make_shared<PointBatch>();
    batch->band_count = 1;
    batch->Append1(0, 0, 0, 7.0);
    batch->Append1(1, 0, 0, -7.0);
    GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
    auto pts = CollectPoints(sink.events());
    EXPECT_DOUBLE_EQ(pts.at({0, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(pts.at({1, 0, 0}), 0.0);
  }
  {
    ValueTransformOp op("v", ValueFn::AbsValue(1));
    CollectingSink sink;
    op.BindOutput(&sink);
    auto batch = std::make_shared<PointBatch>();
    batch->band_count = 1;
    batch->Append1(0, 0, 0, -3.5);
    GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
    EXPECT_DOUBLE_EQ(CollectPoints(sink.events()).at({0, 0, 0}), 3.5);
  }
}

TEST(ValueTransformTest, BandMismatchFails) {
  ValueTransformOp op("v", ValueFn::ColorToGray());
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(0, 0, 0, 1.0);
  EXPECT_FALSE(op.input(0)->Consume(StreamEvent::Batch(batch)).ok());
}

TEST(ValueTransformTest, PointwiseIsNonBlocking) {
  GridLattice lattice = LatLonLattice(32, 32);
  ValueTransformOp op("v", ValueFn::AffineRescale(1, 2.0, 0.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_EQ(op.metrics().buffered_bytes_high_water, 0u);
}

// --- Stretch transforms -------------------------------------------------------

StretchOptions LinearOptions() {
  StretchOptions opts;
  opts.mode = StretchMode::kLinear;
  opts.in_lo = 0.0;
  opts.in_hi = 1.0;
  return opts;
}

TEST(StretchTransformTest, LinearFillsOutputRange) {
  GridLattice lattice = LatLonLattice(10, 1);
  StretchTransformOp op("s", LinearOptions());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 10u);
  // TestValue(0, col, 0) = 0.01 * col: min at col 0, max at col 9.
  EXPECT_NEAR(points.at({0, 0, 0}), 0.0, 1e-9);
  EXPECT_NEAR(points.at({9, 0, 0}), 255.0, 1e-9);
  // Linearity in between.
  EXPECT_NEAR(points.at({3, 0, 0}), 255.0 * 3.0 / 9.0, 1e-9);
}

TEST(StretchTransformTest, PerFrameStatistics) {
  // Two frames with different value ranges both stretch to [0, 255]
  // using their own frame statistics.
  GridLattice lattice = LatLonLattice(5, 1);
  StretchTransformOp op("s", LinearOptions());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));  // values 0.00..0.04
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 3));  // values 0.30..0.34
  auto points = CollectPoints(sink.events());
  EXPECT_NEAR(points.at({0, 0, 0}), 0.0, 1e-9);
  EXPECT_NEAR(points.at({4, 0, 0}), 255.0, 1e-9);
  EXPECT_NEAR(points.at({0, 0, 3}), 0.0, 1e-9);
  EXPECT_NEAR(points.at({4, 0, 3}), 255.0, 1e-9);
}

TEST(StretchTransformTest, BuffersWholeFrame) {
  GridLattice lattice = LatLonLattice(64, 64);
  StretchTransformOp op("s", LinearOptions());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  // The high-water mark is at least the frame's point payload
  // (64*64 points x (col+row+t+value) ≈ 24B per point).
  EXPECT_GE(op.metrics().buffered_bytes_high_water, 64u * 64u * 24u);
  // After the frame, the buffer is released.
  EXPECT_EQ(op.metrics().buffered_bytes, 0u);
}

TEST(StretchTransformTest, HistogramEqualizationIsMonotone) {
  StretchOptions opts;
  opts.mode = StretchMode::kHistogramEqualization;
  opts.in_lo = 0.0;
  opts.in_hi = 1.0;
  GridLattice lattice = LatLonLattice(50, 1);
  StretchTransformOp op("s", opts);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  double prev = -1.0;
  for (int col = 0; col < 50; ++col) {
    const double v = points.at({col, 0, 0});
    EXPECT_GE(v, prev) << "hist-eq must be monotone, col " << col;
    prev = v;
  }
  EXPECT_NEAR(prev, 255.0, 1e-6);
}

TEST(StretchTransformTest, GaussianCentresTheMean) {
  StretchOptions opts;
  opts.mode = StretchMode::kGaussian;
  opts.in_lo = 0.0;
  opts.in_hi = 1.0;
  GridLattice lattice = LatLonLattice(100, 1);
  StretchTransformOp op("s", opts);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  double sum = 0.0;
  for (const auto& [key, v] : points) sum += v;
  EXPECT_NEAR(sum / points.size(), 127.5, 3.0);
}

TEST(StretchTransformTest, RejectsUnframedInput) {
  StretchTransformOp op("s", LinearOptions());
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(0, 0, 0, 1.0);
  EXPECT_FALSE(op.input(0)->Consume(StreamEvent::Batch(batch)).ok());
}

TEST(StretchTransformTest, FlushesOnStreamEnd) {
  GridLattice lattice = LatLonLattice(4, 1);
  StretchTransformOp op("s", LinearOptions());
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 1;
  batch->Append1(0, 0, 0, 0.0);
  batch->Append1(1, 0, 0, 1.0);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  // StreamEnd without FrameEnd still flushes the buffered frame.
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  EXPECT_EQ(sink.TotalPoints(), 2u);
}

// --- Magnify -------------------------------------------------------------------

TEST(MagnifyTest, EmitsKSquaredPointsPerInput) {
  GridLattice lattice = LatLonLattice(4, 3);
  MagnifyOp op("m", 3);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  EXPECT_EQ(sink.TotalPoints(), 4u * 3u * 9u);
  EXPECT_TRUE(WellFormedFrames(sink.events()));
  // The output frame advertises the magnified lattice.
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kFrameBegin) {
      EXPECT_EQ(e.frame.lattice.width(), 12);
      EXPECT_EQ(e.frame.lattice.height(), 9);
    }
  }
}

TEST(MagnifyTest, ReplicatesValuesIntoBlocks) {
  GridLattice lattice = LatLonLattice(2, 1);
  MagnifyOp op("m", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  const double v0 = TestValue(0, 0, 0);
  const double v1 = TestValue(0, 1, 0);
  EXPECT_DOUBLE_EQ(points.at({0, 0, 0}), v0);
  EXPECT_DOUBLE_EQ(points.at({1, 1, 0}), v0);
  EXPECT_DOUBLE_EQ(points.at({2, 0, 0}), v1);
  EXPECT_DOUBLE_EQ(points.at({3, 1, 0}), v1);
}

TEST(MagnifyTest, NeedsNoBuffering) {
  GridLattice lattice = LatLonLattice(16, 16);
  MagnifyOp op("m", 4);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_EQ(op.metrics().buffered_bytes_high_water, 0u);
}

// --- Reduce --------------------------------------------------------------------

TEST(ReduceTest, BoxAveragesBlocks) {
  GridLattice lattice = LatLonLattice(4, 4);
  ReduceOp op("r", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 4u);
  // Output (0,0) = mean of input block {(0,0),(1,0),(0,1),(1,1)}.
  const double expected =
      (TestValue(0, 0, 0) + TestValue(0, 1, 0) + TestValue(0, 0, 1) +
       TestValue(0, 1, 1)) /
      4.0;
  EXPECT_NEAR(points.at({0, 0, 0}), expected, 1e-12);
}

TEST(ReduceTest, RowByRowBuffersOnlyActiveRows) {
  // 64 wide, 32 tall, factor 4: the accumulator should never hold
  // more than ~one output row of cells (16 cells + epsilon), far less
  // than the whole frame (128 cells after reduction).
  GridLattice lattice = LatLonLattice(64, 32);
  ReduceOp op("r", 4);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  const uint64_t entry = sizeof(int64_t) + 24;  // key + accumulator
  EXPECT_LE(op.metrics().buffered_bytes_high_water, 17 * entry);
  EXPECT_EQ(sink.TotalPoints(), 16u * 8u);
}

TEST(ReduceTest, EdgeBlocksUsePartialNeighbourhoods) {
  // 5 x 5 with factor 2: edge cells average fewer inputs but all
  // output cells appear.
  GridLattice lattice = LatLonLattice(5, 5);
  ReduceOp op("r", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 9u);  // ceil(5/2)^2
  // Bottom-right output cell covers exactly input (4,4).
  EXPECT_NEAR(points.at({2, 2, 0}), TestValue(0, 4, 4), 1e-12);
}

TEST(ReduceTest, RejectsUnframedInput) {
  ReduceOp op("r", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(0, 0, 0, 1.0);
  EXPECT_FALSE(op.input(0)->Consume(StreamEvent::Batch(batch)).ok());
}

TEST(ReduceTest, FrameAdvertisesReducedLattice) {
  GridLattice lattice = LatLonLattice(10, 8);
  ReduceOp op("r", 3);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kFrameBegin) {
      EXPECT_EQ(e.frame.lattice.width(), 4);
      EXPECT_EQ(e.frame.lattice.height(), 3);
    }
  }
}

// --- Affine --------------------------------------------------------------------

TEST(AffineTest, IdentityMapCopiesFrame) {
  GridLattice lattice = LatLonLattice(6, 4);
  AffineOp op("a", AffineMap(), lattice, ResampleKernel::kNearest);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 2));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 24u);
  EXPECT_DOUBLE_EQ(points.at({5, 3, 2}), TestValue(2, 5, 3));
}

TEST(AffineTest, Rotation90MovesCorners) {
  const int64_t n = 5;
  GridLattice lattice = LatLonLattice(n, n);
  AffineOp op("a", AffineMap::RotationAboutCenter(90.0, n, n), lattice,
              ResampleKernel::kNearest);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), static_cast<size_t>(n * n));
  // Centre is fixed under rotation.
  EXPECT_NEAR(points.at({2, 2, 0}), TestValue(0, 2, 2), 1e-12);
  // The gather map is ic = orow, ir = (n-1) - oc: output (0, 0)
  // samples input (col 0, row 4).
  EXPECT_NEAR(points.at({0, 0, 0}), TestValue(0, 0, 4), 1e-12);
}

TEST(AffineTest, RotationIsBuffered) {
  GridLattice lattice = LatLonLattice(16, 16);
  AffineOp op("a", AffineMap::RotationAboutCenter(30.0, 16, 16), lattice,
              ResampleKernel::kBilinear);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_GE(op.metrics().buffered_bytes_high_water,
            16u * 16u * sizeof(double));
}

}  // namespace
}  // namespace geostreams
