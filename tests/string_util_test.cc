#include "common/string_util.h"

#include <gtest/gtest.h>

namespace geostreams {
namespace {

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  abc  "), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("\t\n x \r"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"one"}, ","), "one");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("UTM:10N"), "utm:10n");
  EXPECT_EQ(ToLower("abc"), "abc");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("geos:-75", "geos:"));
  EXPECT_FALSE(StartsWith("geo", "geos:"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 3.14159), "3.14");
  // Long output must not truncate.
  std::string long_out = StringPrintf("%0512d", 1);
  EXPECT_EQ(long_out.size(), 512u);
}

}  // namespace
}  // namespace geostreams
