// Durable ingest journal tests: append/replay round-trips, segment
// rotation + retention, fsync policies, startup recovery (torn-tail
// truncation, mid-file quarantine, duplicate dedup, name-floor
// resume), deterministic fault injection through FaultyFile, recovery
// fuzzing over arbitrary truncation/corruption offsets, persisted
// dead letters, and a 10k-record bounded-time recovery check.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/wire_protocol.h"
#include "obs/metrics_registry.h"
#include "storage/dead_letter_store.h"
#include "storage/faulty_file.h"
#include "storage/journal.h"
#include "stream/supervisor.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers

#define GS_ASSERT_OK_(expr) GS_ASSERT_OK(expr)

/// A fresh directory under the test temp root, unique per test.
std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsjournal-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// A small audit-stamped batch: every timestamp carries `ordinal`.
StreamEvent BatchEvent(int64_t ordinal, size_t n = 6) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = ordinal / 14;
  batch->band_count = 1;
  for (size_t i = 0; i < n; ++i) {
    batch->Append1(static_cast<int32_t>(i),
                   static_cast<int32_t>(ordinal % 12), ordinal,
                   testing_util::TestValue(batch->frame_id,
                                           static_cast<int64_t>(i),
                                           ordinal % 12));
  }
  batch->checksum = batch->ComputeChecksum();
  return StreamEvent::Batch(std::move(batch));
}

/// Ingest message whose payload is recoverable by seq: the batch
/// timestamps equal the sequence number.
IngestMessage Msg(const std::string& source, uint64_t seq, size_t n = 6) {
  IngestMessage message;
  message.source = source;
  message.seq = seq;
  message.event = BatchEvent(static_cast<int64_t>(seq), n);
  return message;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Segment files under <dir>/<source-dir>, sorted by name.
std::vector<std::string> SegmentFiles(const std::string& source_dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(source_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Replays `source` and returns the seq -> first-timestamp map (the
/// audit identity stamped by Msg).
std::map<uint64_t, int64_t> ReplayIds(IngestJournal* journal,
                                      const std::string& source) {
  std::map<uint64_t, int64_t> ids;
  Status st = journal->Replay(source, [&ids](const IngestMessage& m) {
    const int64_t stamp =
        m.event.batch && !m.event.batch->timestamps.empty()
            ? m.event.batch->timestamps[0]
            : -1;
    EXPECT_EQ(ids.count(m.seq), 0u) << "seq replayed twice: " << m.seq;
    ids[m.seq] = stamp;
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return ids;
}

// ---------------------------------------------------------------------------
// Basic append / replay / reopen

TEST(JournalTest, FsyncPolicyNames) {
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kPerRecord), "per-record");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kGroupCommit), "group-commit");
  EXPECT_STREQ(FsyncPolicyName(FsyncPolicy::kOff), "off");
}

TEST(JournalTest, OpenRejectsEmptyDir) {
  JournalOptions options;
  auto journal = IngestJournal::Open(options);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kInvalidArgument);
}

TEST(JournalTest, AppendReplayReopenRoundTrip) {
  const std::string dir = FreshDir("rt");
  const std::string source = "sat.band1";
  constexpr uint64_t kRecords = 9;

  {
    JournalOptions options;
    options.dir = dir;
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    EXPECT_EQ((*sj)->next_seq(), 1u);
    for (uint64_t seq = 1; seq <= kRecords; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
      EXPECT_EQ((*sj)->next_seq(), seq + 1);
    }
    const SourceJournalStats stats = (*sj)->stats();
    EXPECT_EQ(stats.appends, kRecords);
    EXPECT_GT(stats.append_bytes, 0u);
    EXPECT_EQ(stats.append_errors, 0u);
    EXPECT_EQ(stats.fsyncs, kRecords);  // kPerRecord default

    const std::map<uint64_t, int64_t> ids = ReplayIds(journal->get(), source);
    ASSERT_EQ(ids.size(), kRecords);
    for (uint64_t seq = 1; seq <= kRecords; ++seq) {
      EXPECT_EQ(ids.at(seq), static_cast<int64_t>(seq));
    }
  }

  // Reopen: recovery replays the committed prefix and seeds next_seq.
  JournalOptions options;
  options.dir = dir;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  const JournalRecovery& recovery = (*journal)->recovery();
  EXPECT_EQ(recovery.records_replayed, kRecords);
  EXPECT_EQ(recovery.torn_tails, 0u);
  EXPECT_EQ(recovery.corrupt_regions, 0u);
  ASSERT_EQ(recovery.sources.count(source), 1u);
  EXPECT_EQ(recovery.sources.at(source).next_seq, kRecords + 1);
  auto sj = (*journal)->SourceFor(source);
  GS_ASSERT_OK_(sj.status());
  EXPECT_EQ((*sj)->next_seq(), kRecords + 1);
  EXPECT_EQ((*sj)->stats().recovered_records, kRecords);
  // And appending continues the sequence in the resumed segment.
  GS_ASSERT_OK_((*sj)->Append(Msg(source, kRecords + 1)));
  EXPECT_EQ(ReplayIds(journal->get(), source).size(), kRecords + 1);
}

TEST(JournalTest, ReplayOfUnknownSourceIsNotFound) {
  const std::string dir = FreshDir("nf");
  JournalOptions options;
  options.dir = dir;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  Status st = (*journal)->Replay("no.such", [](const IngestMessage&) {});
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(JournalTest, RotationNamesSegmentsByNextSequence) {
  const std::string dir = FreshDir("rot");
  const std::string source = "rot.src";
  const size_t record_size = EncodeIngestMessage(Msg(source, 1)).size();

  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = record_size;  // one record per segment
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  auto sj = (*journal)->SourceFor(source);
  GS_ASSERT_OK_(sj.status());
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
  }
  EXPECT_EQ((*sj)->stats().rotations, 3u);

  const std::vector<std::string> segments = SegmentFiles(dir + "/" + source);
  ASSERT_EQ(segments.size(), 4u);
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    // Zero-padded start sequence in the file name.
    EXPECT_NE(segments[seq - 1].find("seg-0000000000000000000" +
                                     std::to_string(seq)),
              std::string::npos)
        << segments[seq - 1];
  }

  journal->reset();
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK_(reopened.status());
  EXPECT_EQ((*reopened)->recovery().records_replayed, 4u);
  EXPECT_EQ((*reopened)->recovery().sources.at(source).next_seq, 5u);
}

TEST(JournalTest, RetentionRetiresClosedSegmentsButKeepsHighWaterMark) {
  const std::string dir = FreshDir("ret");
  const std::string source = "ret.src";

  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = 1;        // rotate on every append
  options.retention_max_bytes = 1;      // retire every closed segment
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
      // Settle each record (delivered + acked) so retention may drop
      // it; unsettled records survive retirement via compaction and
      // are covered by the JournalCompactionTest suite.
      (*sj)->SetRetainFloor(seq + 1);
    }
    EXPECT_EQ((*sj)->stats().segments_retired, 3u);
    // Only the newest closed segment and the active one survive.
    EXPECT_EQ(SegmentFiles(dir + "/" + source).size(), 2u);
  }

  // Early records are gone, but the sequence high-water mark is not:
  // segment names carry it.
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK_(reopened.status());
  const SourceRecovery& rec = (*reopened)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 2u);
  EXPECT_EQ(rec.next_seq, 6u);
  auto sj = (*reopened)->SourceFor(source);
  GS_ASSERT_OK_(sj.status());
  EXPECT_EQ((*sj)->next_seq(), 6u);
}

TEST(JournalTest, DuplicateSequenceAppendsReplayOnce) {
  const std::string dir = FreshDir("dup");
  const std::string source = "dup.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 1)));
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 2)));
    // The NACKed-delivery retry: the same sequence journaled twice.
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 2)));
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 3)));
    EXPECT_EQ((*sj)->next_seq(), 4u);
  }
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK_(reopened.status());
  const SourceRecovery& rec = (*reopened)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 3u);
  EXPECT_EQ(rec.duplicate_records, 1u);
  EXPECT_EQ(rec.next_seq, 4u);
  const std::map<uint64_t, int64_t> ids =
      ReplayIds(reopened->get(), source);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids.count(2), 1u);
}

TEST(JournalTest, FsyncPolicies) {
  const std::string source = "sync.src";
  // kGroupCommit with a huge interval: appends never fsync on their
  // own; an explicit Sync still flushes.
  {
    JournalOptions options;
    options.dir = FreshDir("group");
    options.fsync = FsyncPolicy::kGroupCommit;
    options.group_commit_interval_ms = 1000u * 1000u;
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 8; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
    EXPECT_EQ((*sj)->stats().fsyncs, 0u);
    GS_ASSERT_OK_((*sj)->Sync());
    EXPECT_EQ((*sj)->stats().fsyncs, 1u);
    GS_ASSERT_OK_((*sj)->Sync());  // clean: no second fsync
    EXPECT_EQ((*sj)->stats().fsyncs, 1u);
  }
  // kOff: never, not even via policy — only explicit Sync.
  {
    JournalOptions options;
    options.dir = FreshDir("off");
    options.fsync = FsyncPolicy::kOff;
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 8; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
    EXPECT_EQ((*sj)->stats().fsyncs, 0u);
  }
}

TEST(JournalTest, GroupCommitFlusherSyncsInTheBackground) {
  // With a short interval, the background flusher thread fsyncs dirty
  // sources on its own — no append or explicit Sync ever does.
  const std::string source = "flush.src";
  JournalOptions options;
  options.dir = FreshDir("bg");
  options.fsync = FsyncPolicy::kGroupCommit;
  options.group_commit_interval_ms = 2;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  auto sj = (*journal)->SourceFor(source);
  GS_ASSERT_OK_(sj.status());
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
  }
  // The flusher catches up within a couple of intervals.
  uint64_t fsyncs = 0;
  for (int i = 0; i < 500 && fsyncs == 0; ++i) {
    fsyncs = (*sj)->stats().fsyncs;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(fsyncs, 1u);

  // Idle ticks stay cheap: a clean source is skipped, so fsyncs stop
  // climbing once the dirty bytes are down.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t settled = (*sj)->stats().fsyncs;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ((*sj)->stats().fsyncs, settled);

  // New dirty bytes wake the next tick.
  GS_ASSERT_OK_((*sj)->Append(Msg(source, 5)));
  uint64_t after = settled;
  for (int i = 0; i < 500 && after == settled; ++i) {
    after = (*sj)->stats().fsyncs;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(after, settled);
}

TEST(JournalTest, GroupCommitShutdownFlushesAndRecovers) {
  // Destruction stops the flusher and force-syncs, so a clean close
  // loses nothing even with a never-firing interval.
  const std::string source = "close.src";
  JournalOptions options;
  options.dir = FreshDir("shutdown");
  options.fsync = FsyncPolicy::kGroupCommit;
  options.group_commit_interval_ms = 1000u * 1000u;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 12; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
    EXPECT_EQ((*sj)->stats().fsyncs, 0u);
  }
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK_(reopened.status());
  const auto& rec = (*reopened)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 12u);
  EXPECT_EQ(rec.next_seq, 13u);
  EXPECT_FALSE(rec.torn_tail);
}

TEST(JournalTest, MetricsTrackAppendsAndFsyncLatency) {
  MetricsRegistry registry;
  JournalOptions options;
  options.dir = FreshDir("metrics");
  options.metrics = &registry;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  auto sj = (*journal)->SourceFor("m.src");
  GS_ASSERT_OK_(sj.status());
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    GS_ASSERT_OK_((*sj)->Append(Msg("m.src", seq)));
  }
  EXPECT_EQ(registry.GetCounter("geostreams_journal_appends_total", "")
                ->Value(),
            5u);
  EXPECT_EQ(registry.GetCounter("geostreams_journal_fsyncs_total", "")
                ->Value(),
            5u);
  EXPECT_GT(registry.GetCounter("geostreams_journal_append_bytes_total", "")
                ->Value(),
            0u);
  // Every fsync observed a latency sample.
  EXPECT_EQ(registry
                .GetHistogram("geostreams_journal_fsync_latency_us", "")
                ->Count(),
            5u);
}

// ---------------------------------------------------------------------------
// Recovery: torn tails, mid-file corruption, name floors

TEST(JournalRecoveryTest, TornTailIsTruncatedAndNeverReappears) {
  const std::string dir = FreshDir("torn");
  const std::string source = "t.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
  }
  const std::vector<std::string> segments = SegmentFiles(dir + "/" + source);
  ASSERT_EQ(segments.size(), 1u);
  const uint64_t full_size = fs::file_size(segments[0]);
  const size_t record_size = EncodeIngestMessage(Msg(source, 5)).size();
  const uint64_t clean_size = full_size - record_size;

  // The crash hit mid-append: the last record lost its final 7 bytes.
  fs::resize_file(segments[0], full_size - 7);
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    const JournalRecovery& recovery = (*journal)->recovery();
    EXPECT_EQ(recovery.torn_tails, 1u);
    EXPECT_EQ(recovery.records_replayed, 4u);
    const SourceRecovery& rec = recovery.sources.at(source);
    EXPECT_TRUE(rec.torn_tail);
    EXPECT_EQ(rec.torn_bytes, record_size - 7);
    EXPECT_EQ(rec.next_seq, 5u);
    EXPECT_EQ(fs::file_size(segments[0]), clean_size);
  }
  // Second recovery over the truncated file is clean — idempotent.
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    EXPECT_EQ((*journal)->recovery().torn_tails, 0u);
    EXPECT_EQ((*journal)->recovery().records_replayed, 4u);
  }

  // Trailing garbage (no GSF1 header at all) is also a torn tail.
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out << "not-a-journal-record";
  }
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  EXPECT_EQ((*journal)->recovery().torn_tails, 1u);
  EXPECT_EQ((*journal)->recovery().records_replayed, 4u);
  EXPECT_EQ(fs::file_size(segments[0]), clean_size);
}

TEST(JournalRecoveryTest, FullyTornLastSegmentResumesFromNameFloor) {
  const std::string dir = FreshDir("floor");
  const std::string source = "floor.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = 1;  // one record per segment
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
  }
  // The whole last segment (seg-...3) is unreadable. Its name still
  // proves sequence 3 was once acked, so recovery must not hand the
  // producer next_seq=3's slot back as a fresh sequence... it does
  // hand exactly 3 (not 2): duplicates are impossible, and the
  // producer replays 3 itself.
  std::vector<std::string> segments = SegmentFiles(dir + "/" + source);
  ASSERT_EQ(segments.size(), 3u);
  const uint64_t last_size = fs::file_size(segments[2]);
  WriteAll(segments[2],
           std::vector<uint8_t>(static_cast<size_t>(last_size), 0x5a));

  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.records_replayed, 2u);
  EXPECT_EQ(rec.next_seq, 3u);  // floor from the segment name
  auto sj = (*journal)->SourceFor(source);
  GS_ASSERT_OK_(sj.status());
  EXPECT_EQ((*sj)->next_seq(), 3u);
}

TEST(JournalRecoveryTest, MidFileCorruptionIsQuarantinedIntoDeadLetters) {
  const std::string dir = FreshDir("mid");
  const std::string source = "c.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq)));
    }
  }
  const std::vector<std::string> segments = SegmentFiles(dir + "/" + source);
  ASSERT_EQ(segments.size(), 1u);
  // Flip one payload byte inside record 2 (records 3..5 follow, so
  // this is mid-file damage, not a torn tail).
  const size_t r1 = EncodeIngestMessage(Msg(source, 1)).size();
  std::vector<uint8_t> bytes = ReadAll(segments[0]);
  bytes[r1 + kWireHeaderSize + 3] ^= 0xff;
  WriteAll(segments[0], bytes);

  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
    EXPECT_EQ(rec.corrupt_regions, 1u);
    EXPECT_GT(rec.corrupt_bytes, 0u);
    EXPECT_FALSE(rec.torn_tail);
    EXPECT_EQ(rec.records_replayed, 4u);  // 1, 3, 4, 5 survive
    EXPECT_EQ(rec.next_seq, 6u);
    const std::map<uint64_t, int64_t> ids =
        ReplayIds(journal->get(), source);
    ASSERT_EQ(ids.size(), 4u);
    EXPECT_EQ(ids.count(2), 0u);
    // The quarantine was recorded into the (fresh) dead-letter store.
    auto dls = (*journal)->DeadLettersFor(source);
    GS_ASSERT_OK_(dls.status());
    EXPECT_EQ((*dls)->next_ordinal(), 1u);
  }
  // The quarantine evidence survived the restart.
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  auto dls = (*journal)->DeadLettersFor(source);
  GS_ASSERT_OK_(dls.status());
  ASSERT_GE((*dls)->recovered().size(), 1u);
  EXPECT_EQ((*dls)->recovered()[0].ordinal, 0u);
  EXPECT_NE((*dls)->recovered()[0].error.find("corrupt at offset"),
            std::string::npos)
      << (*dls)->recovered()[0].error;
}

// ---------------------------------------------------------------------------
// FaultyFile: deterministic injected storage faults

TEST(JournalFaultTest, ShortWriteFailsTheAppendAndHealsAfterDisarm) {
  const std::string dir = FreshDir("short");
  const std::string source = "sw.src";
  FaultyFileOptions fopts;
  fopts.seed = 11;
  fopts.short_write_p = 1.0;
  FaultyFileInjector injector(fopts);

  {
    JournalOptions options;
    options.dir = dir;
    options.file_factory = injector.Factory();
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    const Status torn = (*sj)->Append(Msg(source, 1));
    ASSERT_FALSE(torn.ok());
    EXPECT_EQ((*sj)->stats().append_errors, 1u);
    EXPECT_EQ((*sj)->next_seq(), 1u);  // nothing committed
    EXPECT_EQ(injector.stats().short_writes, 1u);

    // The operator fixed the disk; the producer retries the same seq.
    injector.Disarm();
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 1)));
    EXPECT_EQ((*sj)->next_seq(), 2u);
  }

  // Recovery with real files: the retried record replays; the torn
  // prefix the short write left (if any bytes landed) is quarantined
  // loudly, never silently dropped.
  JournalOptions options;
  options.dir = dir;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 1u);
  EXPECT_EQ(rec.next_seq, 2u);
  const std::map<uint64_t, int64_t> ids = ReplayIds(journal->get(), source);
  ASSERT_EQ(ids.count(1), 1u);
  EXPECT_EQ(ids.at(1), 1);
}

TEST(JournalFaultTest, FsyncFailureNacksButTheBytesMayStillCommit) {
  const std::string dir = FreshDir("syncfail");
  const std::string source = "sf.src";
  FaultyFileOptions fopts;
  fopts.seed = 3;
  fopts.sync_fail_p = 1.0;
  FaultyFileInjector injector(fopts);

  {
    JournalOptions options;
    options.dir = dir;
    options.file_factory = injector.Factory();
    options.fsync = FsyncPolicy::kPerRecord;
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    // The record's bytes land but the fsync fails: the append reports
    // failure (the ACK must not go out — durability was not proven).
    const Status failed = (*sj)->Append(Msg(source, 1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ((*sj)->next_seq(), 1u);
    EXPECT_GE(injector.stats().sync_failures, 1u);

    injector.Disarm();
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 1)));  // producer retry
  }

  // Both copies of seq 1 are on disk; recovery replays exactly one.
  JournalOptions options;
  options.dir = dir;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 1u);
  EXPECT_EQ(rec.duplicate_records, 1u);
  EXPECT_EQ(rec.next_seq, 2u);
}

TEST(JournalFaultTest, CrashAtByteBudgetLeavesRecoverableAckedPrefix) {
  const std::string dir = FreshDir("budget");
  const std::string source = "crash.src";
  const uint64_t r = EncodeIngestMessage(Msg(source, 1)).size();

  FaultyFileOptions fopts;
  fopts.fail_at_byte = 2 * r + r / 2;  // dies halfway through record 3
  FaultyFileInjector injector(fopts);
  {
    JournalOptions options;
    options.dir = dir;
    options.file_factory = injector.Factory();
    options.fsync = FsyncPolicy::kPerRecord;
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 1)));
    GS_ASSERT_OK_((*sj)->Append(Msg(source, 2)));
    // "Power failure" mid-append: a torn half-record reaches disk.
    ASSERT_FALSE((*sj)->Append(Msg(source, 3)).ok());
    EXPECT_TRUE(injector.stats().budget_exhausted);
    // The machine is off: every later append fails too. The retry's
    // reopen repairs the torn prefix in place (truncation needs no
    // new disk space) before the dead disk refuses the record again.
    ASSERT_FALSE((*sj)->Append(Msg(source, 3)).ok());
    EXPECT_EQ((*sj)->next_seq(), 3u);
  }
  (void)r;

  // Reboot with a healthy disk. The two acked records replay; the
  // torn half of record 3 (never acked) is already gone — repaired
  // by the in-incarnation retry, so recovery finds a clean tail.
  JournalOptions options;
  options.dir = dir;
  auto journal = IngestJournal::Open(options);
  GS_ASSERT_OK_(journal.status());
  const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
  EXPECT_EQ(rec.records_replayed, 2u);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.torn_bytes, 0u);
  EXPECT_EQ(rec.next_seq, 3u);
}

TEST(JournalFaultTest, FaultScheduleIsDeterministicPerSeed) {
  FaultyFileOptions fopts;
  fopts.seed = 77;
  fopts.short_write_p = 0.3;
  fopts.bit_flip_p = 0.2;
  const std::string source = "det.src";

  auto run = [&](const std::string& dir) -> FaultyFileStats {
    FaultyFileInjector injector(fopts);
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kOff;
    options.file_factory = injector.Factory();
    auto journal = IngestJournal::Open(options);
    EXPECT_TRUE(journal.ok());
    auto sj = (*journal)->SourceFor(source);
    EXPECT_TRUE(sj.ok());
    for (uint64_t seq = 1; seq <= 30; ++seq) {
      Status ignored = (*sj)->Append(Msg(source, seq));
      (void)ignored;  // failures are part of the schedule
    }
    return injector.stats();
  };

  const FaultyFileStats a = run(FreshDir("a"));
  const FaultyFileStats b = run(FreshDir("b"));
  EXPECT_GT(a.short_writes, 0u);
  EXPECT_GT(a.bit_flips, 0u);
  EXPECT_EQ(a.appends, b.appends);
  EXPECT_EQ(a.short_writes, b.short_writes);
  EXPECT_EQ(a.bit_flips, b.bit_flips);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
}

// ---------------------------------------------------------------------------
// Recovery fuzzing

/// Builds one pristine single-segment journal for `source` and
/// returns its bytes plus the record boundaries (byte offset where
/// record i+1 starts; boundaries[0] == 0).
std::vector<uint8_t> PristineSegment(const std::string& source,
                                     uint64_t records,
                                     std::vector<size_t>* boundaries) {
  std::vector<uint8_t> bytes;
  boundaries->clear();
  boundaries->push_back(0);
  for (uint64_t seq = 1; seq <= records; ++seq) {
    const std::vector<uint8_t> record =
        EncodeIngestMessage(Msg(source, seq, /*n=*/4));
    bytes.insert(bytes.end(), record.begin(), record.end());
    boundaries->push_back(bytes.size());
  }
  return bytes;
}

/// Lays `segment` down as a fresh journal for `source` and returns
/// the root directory.
std::string PlantJournal(const std::string& root, const std::string& source,
                         const std::vector<uint8_t>& segment) {
  fs::remove_all(root);
  fs::create_directories(root + "/" + source);
  WriteAll(root + "/" + source + "/seg-00000000000000000001.gsj", segment);
  return root;
}

TEST(JournalFuzzTest, TruncationAtEveryOffsetRecoversTheCleanPrefix) {
  const std::string source = "fuzz.src";
  std::vector<size_t> boundaries;
  const std::vector<uint8_t> pristine =
      PristineSegment(source, /*records=*/6, &boundaries);
  const std::string root = ::testing::TempDir() + "gsjournal-truncfuzz";

  for (size_t cut = 0; cut <= pristine.size(); ++cut) {
    // Records fully contained in the first `cut` bytes survive.
    size_t expect_full = 0;
    while (expect_full + 1 < boundaries.size() &&
           boundaries[expect_full + 1] <= cut) {
      ++expect_full;
    }
    const bool at_boundary = boundaries[expect_full] == cut;

    std::vector<uint8_t> truncated(pristine.begin(),
                                   pristine.begin() + cut);
    PlantJournal(root, source, truncated);
    JournalOptions options;
    options.dir = root;
    auto journal = IngestJournal::Open(options);
    ASSERT_TRUE(journal.ok())
        << "cut=" << cut << ": " << journal.status().ToString();
    const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
    ASSERT_EQ(rec.records_replayed, expect_full) << "cut=" << cut;
    ASSERT_EQ(rec.torn_tail, !at_boundary) << "cut=" << cut;
    ASSERT_EQ(rec.corrupt_regions, 0u) << "cut=" << cut;
    ASSERT_EQ(rec.next_seq, expect_full + 1) << "cut=" << cut;

    // The replayed prefix is exactly seqs 1..expect_full, bit-true.
    const std::map<uint64_t, int64_t> ids =
        ReplayIds(journal->get(), source);
    ASSERT_EQ(ids.size(), expect_full) << "cut=" << cut;
    for (uint64_t seq = 1; seq <= expect_full; ++seq) {
      ASSERT_EQ(ids.at(seq), static_cast<int64_t>(seq)) << "cut=" << cut;
    }
    journal->reset();

    // Recovery converged: a second pass finds a clean journal.
    auto again = IngestJournal::Open(options);
    ASSERT_TRUE(again.ok()) << "cut=" << cut;
    const SourceRecovery& rec2 = (*again)->recovery().sources.at(source);
    ASSERT_FALSE(rec2.torn_tail) << "cut=" << cut;
    ASSERT_EQ(rec2.records_replayed, expect_full) << "cut=" << cut;
  }
  fs::remove_all(root);
}

TEST(JournalFuzzTest, RandomBitFlipsNeverCrashOrInventRecords) {
  const std::string source = "flip.src";
  constexpr uint64_t kRecords = 12;
  std::vector<size_t> boundaries;
  const std::vector<uint8_t> pristine =
      PristineSegment(source, kRecords, &boundaries);
  const std::string root = ::testing::TempDir() + "gsjournal-flipfuzz";
  std::mt19937_64 rng(20260808);

  for (int trial = 0; trial < 60; ++trial) {
    std::vector<uint8_t> mutated = pristine;
    const int flips = 1 + static_cast<int>(rng() % 3);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^=
          static_cast<uint8_t>(1u << (rng() % 8));
    }
    PlantJournal(root, source, mutated);
    JournalOptions options;
    options.dir = root;
    auto journal = IngestJournal::Open(options);
    ASSERT_TRUE(journal.ok())
        << "trial=" << trial << ": " << journal.status().ToString();
    const SourceRecovery& rec = (*journal)->recovery().sources.at(source);
    ASSERT_LE(rec.records_replayed, kRecords) << "trial=" << trial;

    // No phantom records: everything replayed is one of the pristine
    // records, byte-faithful (the CRC guarantees it; the stamp checks
    // the payload actually decoded to the right batch).
    const std::map<uint64_t, int64_t> ids =
        ReplayIds(journal->get(), source);
    for (const auto& [seq, stamp] : ids) {
      ASSERT_GE(seq, 1u) << "trial=" << trial;
      ASSERT_LE(seq, kRecords) << "trial=" << trial;
      ASSERT_EQ(stamp, static_cast<int64_t>(seq)) << "trial=" << trial;
    }
    const uint64_t first_pass = rec.records_replayed;
    journal->reset();

    // Idempotent: a second recovery loses nothing further.
    auto again = IngestJournal::Open(options);
    ASSERT_TRUE(again.ok()) << "trial=" << trial;
    ASSERT_EQ((*again)->recovery().records_replayed, first_pass)
        << "trial=" << trial;
    ASSERT_FALSE((*again)->recovery().sources.at(source).torn_tail)
        << "trial=" << trial;
  }
  fs::remove_all(root);
}

TEST(JournalFuzzTest, TenThousandRecordRecoveryIsBoundedAndCounted) {
  const std::string dir = FreshDir("10k");
  const std::string source = "bulk.src";
  constexpr uint64_t kRecords = 10000;
  {
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kOff;
    options.segment_max_bytes = 256u << 10;  // several segments
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK_(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK_(sj.status());
    for (uint64_t seq = 1; seq <= kRecords; ++seq) {
      GS_ASSERT_OK_((*sj)->Append(Msg(source, seq, /*n=*/2)));
    }
    EXPECT_GT((*sj)->stats().rotations, 0u);
  }

  MetricsRegistry registry;
  JournalOptions options;
  options.dir = dir;
  options.metrics = &registry;
  const auto t0 = std::chrono::steady_clock::now();
  auto journal = IngestJournal::Open(options);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  GS_ASSERT_OK_(journal.status());
  EXPECT_EQ((*journal)->recovery().records_replayed, kRecords);
  EXPECT_EQ((*journal)->recovery().sources.at(source).next_seq,
            kRecords + 1);
  EXPECT_EQ(
      registry.GetCounter("geostreams_journal_recovered_records_total", "")
          ->Value(),
      kRecords);
  EXPECT_EQ(registry.GetCounter("geostreams_journal_torn_tails_total", "")
                ->Value(),
            0u);
  // Bounded: a 10k-record journal must recover in seconds, not
  // minutes (generous CI margin; locally this is well under 1s).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            10000);
  journal->reset();

  // Tear the tail and watch the replayed-vs-truncated split.
  std::vector<std::string> segments = SegmentFiles(dir + "/" + source);
  ASSERT_FALSE(segments.empty());
  const std::string& last = segments.back();
  fs::resize_file(last, fs::file_size(last) - 5);
  MetricsRegistry registry2;
  options.metrics = &registry2;
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK_(reopened.status());
  EXPECT_EQ(
      registry2.GetCounter("geostreams_journal_recovered_records_total", "")
          ->Value(),
      kRecords - 1);
  EXPECT_EQ(registry2.GetCounter("geostreams_journal_torn_tails_total", "")
                ->Value(),
            1u);
  EXPECT_GT(registry2.GetCounter("geostreams_journal_torn_bytes_total", "")
                ->Value(),
            0u);
}

// ---------------------------------------------------------------------------
// Persisted dead letters

TEST(DeadLetterStoreTest, QueueHookPersistsAndRestoreRoundTrips) {
  const std::string dir = FreshDir("dlq");
  const std::string path = dir + "/dead_letters.gsd";

  {
    auto store = DeadLetterStore::Open(path, OpenPosixWritable);
    GS_ASSERT_OK_(store.status());
    EXPECT_EQ((*store)->next_ordinal(), 0u);
    DeadLetterQueue queue(16, 1 << 20);
    DeadLetterStore* dls = store->get();
    queue.SetPersistHook([dls](const DeadLetter& letter) {
      Status st = dls->Append("dlq.src", letter);
      EXPECT_TRUE(st.ok()) << st.ToString();
    });
    queue.Push(BatchEvent(100), Status::InvalidArgument("bad checksum"));
    queue.Push(BatchEvent(101), Status::InvalidArgument("poison pill"));
    queue.Push(BatchEvent(102), Status::Internal("operator crashed"));
    EXPECT_EQ((*store)->next_ordinal(), 3u);
  }

  // Restart: the letters come back in order with their ordinals.
  auto store = DeadLetterStore::Open(path, OpenPosixWritable);
  GS_ASSERT_OK_(store.status());
  ASSERT_EQ((*store)->recovered().size(), 3u);
  EXPECT_EQ((*store)->load_errors(), 0u);
  for (size_t i = 0; i < 3; ++i) {
    const DeadLetter& letter = (*store)->recovered()[i];
    EXPECT_EQ(letter.ordinal, i);
    ASSERT_EQ(letter.event.kind, EventKind::kPointBatch);
    ASSERT_TRUE(letter.event.batch != nullptr);
    EXPECT_EQ(letter.event.batch->timestamps[0],
              static_cast<int64_t>(100 + i));
  }
  EXPECT_NE((*store)->recovered()[0].error.find("bad checksum"),
            std::string::npos);

  // Restore refills a fresh queue and the ordinal sequence continues
  // across the restart — both in memory and on disk.
  DeadLetterQueue queue(16, 1 << 20);
  queue.Restore((*store)->recovered());
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.total_pushed(), 3u);
  DeadLetterStore* dls = store->get();
  queue.SetPersistHook([dls](const DeadLetter& letter) {
    EXPECT_EQ(letter.ordinal, 3u);
    Status st = dls->Append("dlq.src", letter);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  queue.Push(BatchEvent(103), Status::Internal("post-restart"));
  EXPECT_EQ((*store)->next_ordinal(), 4u);
  store->reset();

  auto again = DeadLetterStore::Open(path, OpenPosixWritable);
  GS_ASSERT_OK_(again.status());
  ASSERT_EQ((*again)->recovered().size(), 4u);
  EXPECT_EQ((*again)->recovered()[3].ordinal, 3u);
}

TEST(DeadLetterStoreTest, TornTailIsToleratedOnLoad) {
  const std::string dir = FreshDir("dlqtorn");
  const std::string path = dir + "/dead_letters.gsd";
  {
    auto store = DeadLetterStore::Open(path, OpenPosixWritable);
    GS_ASSERT_OK_(store.status());
    GS_ASSERT_OK_((*store)->AppendQuarantine("q.src", "region one"));
    GS_ASSERT_OK_((*store)->AppendQuarantine("q.src", "region two"));
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "torn";
  }
  auto store = DeadLetterStore::Open(path, OpenPosixWritable);
  GS_ASSERT_OK_(store.status());
  EXPECT_EQ((*store)->recovered().size(), 2u);
  EXPECT_GE((*store)->load_errors(), 1u);
  EXPECT_EQ((*store)->next_ordinal(), 2u);
  EXPECT_NE((*store)->recovered()[1].error.find("region two"),
            std::string::npos);
}

}  // namespace
}  // namespace geostreams
