#include "server/stream_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geo/crs_registry.h"
#include "server/scan_schedule.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::WellFormedFrames;

InstrumentConfig SmallConfig(PointOrganization org) {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 256;
  config.organization = org;
  config.bands = {SpectralBand::kVisible, SpectralBand::kNearInfrared};
  return config;
}

TEST(ScanScheduleTest, GoesRoutineCyclesSectors) {
  ScanSchedule schedule = ScanSchedule::GoesRoutine();
  EXPECT_EQ(schedule.SectorFor(0).name, "full-disk");
  EXPECT_EQ(schedule.SectorFor(1).name, "conus");
  EXPECT_EQ(schedule.SectorFor(2).name, "northern-hemisphere");
  EXPECT_EQ(schedule.SectorFor(6).name, "northern-hemisphere");
  EXPECT_EQ(schedule.SectorFor(12).name, "full-disk");
  EXPECT_EQ(schedule.SectorFor(13).name, "conus");
}

TEST(ScanScheduleTest, EmptyScheduleGetsDefault) {
  ScanSchedule schedule({});
  EXPECT_EQ(schedule.SectorFor(0).name, "default");
}

TEST(SectorLatticeTest, TargetCellsAndAspect) {
  SectorSpec sector{"t", BoundingBox(-120.0, 30.0, -100.0, 40.0), 1, 0};
  auto crs = ResolveCrs("latlon");
  ASSERT_TRUE(crs.ok());
  auto lattice = SectorLattice(sector, *crs, 800);
  ASSERT_TRUE(lattice.ok());
  // About 800 cells with a 2:1 aspect: 40 x 20.
  EXPECT_NEAR(static_cast<double>(lattice->num_cells()), 800.0, 80.0);
  EXPECT_NEAR(static_cast<double>(lattice->width()) / lattice->height(),
              2.0, 0.3);
  // Row 0 at the northern edge.
  EXPECT_LT(lattice->dy(), 0.0);
  EXPECT_NEAR(lattice->CellY(0), 40.0 + lattice->dy() / 2.0, 1e-9);
}

TEST(StreamGeneratorTest, DescriptorsMatchConfig) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  ASSERT_TRUE(gen.Init().ok());
  auto d0 = gen.Descriptor(0);
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(d0->name(), "goes.band1");
  EXPECT_EQ(d0->organization(), PointOrganization::kRowByRow);
  auto d1 = gen.Descriptor(1);
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1->name(), "goes.band2");
  EXPECT_FALSE(gen.Descriptor(2).ok());
}

TEST(StreamGeneratorTest, RowByRowShape) {
  // Fig. 1(b): rows arrive one line at a time, bands interleaved.
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 1, {&band1, &band2}));
  EXPECT_TRUE(WellFormedFrames(band1.events()));
  EXPECT_TRUE(WellFormedFrames(band2.events()));
  // Every batch is exactly one row.
  for (const StreamEvent& e : band1.events()) {
    if (e.kind != EventKind::kPointBatch) continue;
    const PointBatch& b = *e.batch;
    for (size_t i = 1; i < b.size(); ++i) {
      EXPECT_EQ(b.rows[i], b.rows[0]);
      EXPECT_EQ(b.cols[i], b.cols[i - 1] + 1);  // close spatial proximity
    }
  }
  EXPECT_EQ(band1.TotalPoints(), band2.TotalPoints());
  EXPECT_GT(band1.TotalPoints(), 100u);
}

TEST(StreamGeneratorTest, ImageByImageShape) {
  // Fig. 1(a): whole frames at a time.
  StreamGenerator gen(SmallConfig(PointOrganization::kImageByImage),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 2, {&band1, &band2}));
  EXPECT_TRUE(WellFormedFrames(band1.events()));
  EXPECT_EQ(band1.NumFrames(), 2u);
}

TEST(StreamGeneratorTest, PointByPointShape) {
  // Fig. 1(c): no frame boundaries, points in time order only.
  StreamGenerator gen(SmallConfig(PointOrganization::kPointByPoint),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 1, {&band1, &band2}));
  EXPECT_EQ(band1.NumFrames(), 0u);
  EXPECT_GT(band1.TotalPoints(), 100u);
}

TEST(StreamGeneratorTest, ScanSectorTimestampsEqualFrameId) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(3, 2, {&band1, &band2}));
  for (const StreamEvent& e : band1.events()) {
    if (e.kind != EventKind::kPointBatch) continue;
    for (size_t i = 0; i < e.batch->size(); ++i) {
      EXPECT_EQ(e.batch->timestamps[i], e.batch->frame_id);
    }
  }
}

TEST(StreamGeneratorTest, MeasurementTimestampsAreUnique) {
  InstrumentConfig config = SmallConfig(PointOrganization::kRowByRow);
  config.timestamp_policy = TimestampPolicy::kMeasurementTime;
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 1, {&band1, &band2}));
  std::set<int64_t> seen;
  for (const CollectingSink* sink : {&band1, &band2}) {
    for (const StreamEvent& e : sink->events()) {
      if (e.kind != EventKind::kPointBatch) continue;
      for (int64_t t : e.batch->timestamps) {
        EXPECT_TRUE(seen.insert(t).second) << "duplicate timestamp " << t;
      }
    }
  }
}

TEST(StreamGeneratorTest, DeterministicAcrossRuns) {
  auto run = [] {
    StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                        ScanSchedule::GoesRoutine());
    CollectingSink band1, band2;
    Status st = gen.GenerateScans(0, 2, {&band1, &band2});
    EXPECT_TRUE(st.ok());
    return CollectPoints(band1.events());
  };
  EXPECT_EQ(run(), run());
}

TEST(StreamGeneratorTest, BandsDiffer) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 1, {&band1, &band2}));
  EXPECT_NE(CollectPoints(band1.events()), CollectPoints(band2.events()));
}

TEST(StreamGeneratorTest, SinkCountMustMatchBands) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  CollectingSink only_one;
  EXPECT_FALSE(gen.GenerateScans(0, 1, {&only_one}).ok());
}

TEST(StreamGeneratorTest, GeostationaryInstrument) {
  InstrumentConfig config = SmallConfig(PointOrganization::kRowByRow);
  config.crs_name = "geos:-75";
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 1, {&band1, &band2}));
  EXPECT_GT(band1.TotalPoints(), 100u);
  auto d = gen.Descriptor(0);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->crs()->name(), "geos:-75");
  // Scan-angle extents are small (radians).
  EXPECT_LT(std::fabs(d->reference_lattice().Extent().max_x), 0.2);
}

TEST(StreamGeneratorTest, FinishSendsStreamEnd) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.Finish({&band1, &band2}));
  ASSERT_EQ(band1.events().size(), 1u);
  EXPECT_EQ(band1.events()[0].kind, EventKind::kStreamEnd);
}

TEST(StreamGeneratorTest, CorruptionHooksReportWhatTheyDid) {
  StreamGenerator gen(SmallConfig(PointOrganization::kRowByRow),
                      ScanSchedule::GoesRoutine());
  GS_ASSERT_OK(gen.Init());
  CorruptionConfig corruption;
  corruption.target_band = 0;
  corruption.checksum_batches = true;
  corruption.corrupt_value_batches = {3};
  corruption.duplicate_batches = {5};
  corruption.reorder_batches = {8};
  corruption.drop_frame_end_scans = {1};
  gen.SetCorruption(corruption);
  CollectingSink band1, band2;
  GS_ASSERT_OK(gen.GenerateScans(0, 2, {&band1, &band2}));

  const CorruptionStats& stats = gen.corruption_stats();
  EXPECT_EQ(stats.values_corrupted, 1u);
  EXPECT_EQ(stats.batches_duplicated, 1u);
  EXPECT_EQ(stats.batches_reordered, 1u);
  EXPECT_EQ(stats.frame_ends_dropped, 1u);
  EXPECT_GT(stats.checksums_attached, 0u);

  size_t b1_batches = 0, b1_ends = 0, b1_bad = 0;
  for (const auto& event : band1.events()) {
    if (event.kind == EventKind::kPointBatch) {
      ++b1_batches;
      if (!event.batch->ChecksumValid()) ++b1_bad;
    } else if (event.kind == EventKind::kFrameEnd) {
      ++b1_ends;
    }
  }
  size_t b2_batches = 0, b2_ends = 0, b2_bad = 0;
  for (const auto& event : band2.events()) {
    if (event.kind == EventKind::kPointBatch) {
      ++b2_batches;
      if (!event.batch->ChecksumValid()) ++b2_bad;
    } else if (event.kind == EventKind::kFrameEnd) {
      ++b2_ends;
    }
  }
  // The duplicated row shows up as one extra batch on band 0; exactly
  // the one corrupted batch fails verification; one FrameEnd is
  // missing. The untargeted band is fully intact (checksummed, since
  // checksum_batches applies to every band).
  EXPECT_EQ(b1_batches, b2_batches + 1);
  EXPECT_EQ(b1_bad, 1u);
  EXPECT_EQ(b1_ends + 1, b2_ends);
  EXPECT_EQ(b2_bad, 0u);
  EXPECT_TRUE(WellFormedFrames(band2.events()));
  // Every point still arrives (reorder holds, never drops), plus the
  // duplicated row's extra copy.
  uint64_t b1_points = band1.TotalPoints(), b2_points = band2.TotalPoints();
  EXPECT_GT(b1_points, b2_points);
}

}  // namespace
}  // namespace geostreams
