#include "common/status.h"

#include <gtest/gtest.h>

namespace geostreams {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad lattice");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad lattice");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lattice");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::PlanError("").code(), StatusCode::kPlanError);
  EXPECT_EQ(Status::CrsMismatch("").code(), StatusCode::kCrsMismatch);
  EXPECT_EQ(Status::LatticeMismatch("").code(),
            StatusCode::kLatticeMismatch);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IoError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("geostreams"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "geostreams");
}

namespace helpers {
Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacro(int x, int* out) {
  GEOSTREAMS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}
}  // namespace helpers

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(helpers::UseMacro(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_EQ(helpers::UseMacro(-1, &out).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace geostreams
