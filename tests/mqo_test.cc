#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/math_util.h"
#include "mqo/cascade_tree.h"
#include "mqo/filter_bank.h"
#include "mqo/grid_index.h"
#include "mqo/shared_restriction.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

const BoundingBox kExtent(0.0, 0.0, 1024.0, 1024.0);

std::vector<QueryId> SortedStab(const RegionIndex& index, double x,
                                double y) {
  std::vector<QueryId> out;
  index.Stab(x, y, &out);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FilterBankTest, InsertStabRemove) {
  FilterBank bank;
  GS_ASSERT_OK(bank.Insert(1, BoundingBox(0, 0, 10, 10)));
  GS_ASSERT_OK(bank.Insert(2, BoundingBox(5, 5, 15, 15)));
  EXPECT_EQ(bank.size(), 2u);
  EXPECT_EQ(SortedStab(bank, 7, 7), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(SortedStab(bank, 1, 1), (std::vector<QueryId>{1}));
  EXPECT_EQ(SortedStab(bank, 20, 20), (std::vector<QueryId>{}));
  GS_ASSERT_OK(bank.Remove(1));
  EXPECT_EQ(SortedStab(bank, 7, 7), (std::vector<QueryId>{2}));
  EXPECT_EQ(bank.Remove(1).code(), StatusCode::kNotFound);
  EXPECT_EQ(bank.Insert(2, BoundingBox()).code(),
            StatusCode::kAlreadyExists);
}

TEST(CascadeTreeTest, BasicStab) {
  CascadeTree tree(kExtent, 8);
  GS_ASSERT_OK(tree.Insert(1, BoundingBox(0, 0, 512, 512)));
  GS_ASSERT_OK(tree.Insert(2, BoundingBox(256, 256, 768, 768)));
  EXPECT_EQ(SortedStab(tree, 300, 300), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(SortedStab(tree, 100, 100), (std::vector<QueryId>{1}));
  EXPECT_EQ(SortedStab(tree, 700, 700), (std::vector<QueryId>{2}));
  EXPECT_EQ(SortedStab(tree, 900, 100), (std::vector<QueryId>{}));
}

TEST(CascadeTreeTest, PointsOutsideExtentStabNothing) {
  CascadeTree tree(kExtent);
  GS_ASSERT_OK(tree.Insert(1, BoundingBox(-100, -100, 2000, 2000)));
  EXPECT_EQ(SortedStab(tree, 512, 512), (std::vector<QueryId>{1}));
  EXPECT_EQ(SortedStab(tree, -50, -50), (std::vector<QueryId>{}));
}

TEST(CascadeTreeTest, RemovePrunesNodes) {
  CascadeTree tree(kExtent, 8);
  const size_t base_nodes = tree.node_count();
  GS_ASSERT_OK(tree.Insert(1, BoundingBox(10, 10, 20, 20)));
  EXPECT_GT(tree.node_count(), base_nodes);
  GS_ASSERT_OK(tree.Remove(1));
  EXPECT_EQ(tree.node_count(), base_nodes);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(SortedStab(tree, 15, 15), (std::vector<QueryId>{}));
}

TEST(CascadeTreeTest, DuplicateAndMissingIds) {
  CascadeTree tree(kExtent);
  GS_ASSERT_OK(tree.Insert(1, BoundingBox(0, 0, 10, 10)));
  EXPECT_EQ(tree.Insert(1, BoundingBox(0, 0, 5, 5)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.Remove(9).code(), StatusCode::kNotFound);
}

TEST(GridIndexTest, BasicStab) {
  GridIndex grid(kExtent, 16, 16);
  GS_ASSERT_OK(grid.Insert(1, BoundingBox(0, 0, 100, 100)));
  GS_ASSERT_OK(grid.Insert(2, BoundingBox(50, 50, 200, 200)));
  EXPECT_EQ(SortedStab(grid, 75, 75), (std::vector<QueryId>{1, 2}));
  EXPECT_EQ(SortedStab(grid, 150, 150), (std::vector<QueryId>{2}));
  GS_ASSERT_OK(grid.Remove(2));
  EXPECT_EQ(SortedStab(grid, 150, 150), (std::vector<QueryId>{}));
}

// Property: all three index structures agree with each other on
// randomized rectangle sets and probe points.
class IndexEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IndexEquivalence, AllStructuresAgree) {
  const uint64_t seed = static_cast<uint64_t>(GetParam()) * 7919;
  FilterBank bank;
  CascadeTree tree(kExtent, 7);
  GridIndex grid(kExtent, 32, 32);

  // Random rectangles, some tiny, some huge, some outside the extent.
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    const double x0 = HashToUnit(seed + i * 5 + 0) * 1400.0 - 200.0;
    const double y0 = HashToUnit(seed + i * 5 + 1) * 1400.0 - 200.0;
    const double w = HashToUnit(seed + i * 5 + 2) *
                     (i % 3 == 0 ? 1000.0 : 60.0);
    const double h = HashToUnit(seed + i * 5 + 3) *
                     (i % 3 == 0 ? 1000.0 : 60.0);
    const BoundingBox box(x0, y0, x0 + w, y0 + h);
    GS_ASSERT_OK(bank.Insert(i, box));
    GS_ASSERT_OK(tree.Insert(i, box));
    GS_ASSERT_OK(grid.Insert(i, box));
  }
  // Remove a third of them again (dynamic workload).
  for (int i = 0; i < n; i += 3) {
    GS_ASSERT_OK(bank.Remove(i));
    GS_ASSERT_OK(tree.Remove(i));
    GS_ASSERT_OK(grid.Remove(i));
  }

  for (int p = 0; p < 500; ++p) {
    const double x = HashToUnit(seed * 31 + p * 2) * 1024.0;
    const double y = HashToUnit(seed * 31 + p * 2 + 1) * 1024.0;
    const auto expected = SortedStab(bank, x, y);
    EXPECT_EQ(SortedStab(tree, x, y), expected)
        << "cascade tree at (" << x << ", " << y << ")";
    EXPECT_EQ(SortedStab(grid, x, y), expected)
        << "grid index at (" << x << ", " << y << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexEquivalence, ::testing::Range(1, 9));

// --- SharedRestrictionOp ------------------------------------------------------

TEST(SharedRestrictionTest, RoutesPointsToMatchingQueries) {
  GridLattice lattice = LatLonLattice(10, 8);
  auto op = SharedRestrictionOp(
      std::make_unique<CascadeTree>(lattice.Extent(), 8));
  CollectingSink west, east, nothing;
  // West: columns 0..1; East: columns 8..9; nothing: far away.
  GS_ASSERT_OK(op.RegisterQuery(
      1, MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0), &west));
  GS_ASSERT_OK(op.RegisterQuery(
      2, MakeBBoxRegion(-121.1, 40.0, -120.0, 45.0), &east));
  GS_ASSERT_OK(op.RegisterQuery(3, MakeBBoxRegion(0.0, 0.0, 1.0, 1.0),
                                &nothing));
  GS_ASSERT_OK(PushFrame(&op, lattice, 0));
  EXPECT_EQ(west.TotalPoints(), 2u * 8u);
  EXPECT_EQ(east.TotalPoints(), 2u * 8u);
  EXPECT_EQ(nothing.TotalPoints(), 0u);
  // Frame metadata reaches every subscriber.
  EXPECT_EQ(west.NumFrames(), 1u);
  EXPECT_EQ(nothing.NumFrames(), 1u);
}

TEST(SharedRestrictionTest, ExactTestForNonBBoxRegions) {
  GridLattice lattice = LatLonLattice(10, 8);
  auto op = SharedRestrictionOp(
      std::make_unique<CascadeTree>(lattice.Extent(), 8));
  CollectingSink sink;
  // A disk whose bbox covers more cells than the disk itself.
  auto disk = ConstraintRegion::Disk(-122.5, 42.75, 0.6);
  GS_ASSERT_OK(op.RegisterQuery(1, disk, &sink));
  GS_ASSERT_OK(PushFrame(&op, lattice, 0));
  ASSERT_GT(sink.TotalPoints(), 0u);
  for (const auto& [key, v] : testing_util::CollectPoints(sink.events())) {
    const double x = lattice.CellX(std::get<0>(key));
    const double y = lattice.CellY(std::get<1>(key));
    EXPECT_TRUE(disk->Contains(x, y));
  }
}

TEST(SharedRestrictionTest, UnregisterStopsDelivery) {
  GridLattice lattice = LatLonLattice(4, 4);
  auto op = SharedRestrictionOp(
      std::make_unique<FilterBank>());
  CollectingSink sink;
  GS_ASSERT_OK(op.RegisterQuery(1, AllRegion::Instance(), &sink));
  GS_ASSERT_OK(PushFrame(&op, lattice, 0));
  const uint64_t after_first = sink.TotalPoints();
  EXPECT_EQ(after_first, 16u);
  GS_ASSERT_OK(op.UnregisterQuery(1));
  GS_ASSERT_OK(PushFrame(&op, lattice, 1));
  EXPECT_EQ(sink.TotalPoints(), after_first);
  EXPECT_EQ(op.UnregisterQuery(1).code(), StatusCode::kNotFound);
}

TEST(SharedRestrictionTest, BatchesPreserveValuesAndTimestamps) {
  GridLattice lattice = LatLonLattice(6, 4);
  auto op = SharedRestrictionOp(
      std::make_unique<GridIndex>(lattice.Extent(), 8, 8));
  CollectingSink sink;
  GS_ASSERT_OK(op.RegisterQuery(7, AllRegion::Instance(), &sink));
  GS_ASSERT_OK(PushFrame(&op, lattice, 5));
  auto points = testing_util::CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 24u);
  EXPECT_DOUBLE_EQ(points.at({3, 2, 5}), testing_util::TestValue(5, 3, 2));
}

}  // namespace
}  // namespace geostreams
