#include "core/stream_event.h"

#include <gtest/gtest.h>

#include "core/geostream.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::TestDescriptor;

TEST(PointBatchTest, AppendAndAccess) {
  PointBatch batch;
  batch.band_count = 2;
  const double v0[2] = {1.0, 2.0};
  const double v1[2] = {3.0, 4.0};
  batch.Append(1, 2, 100, v0);
  batch.Append(3, 4, 101, v1);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch.cols[1], 3);
  EXPECT_EQ(batch.rows[0], 2);
  EXPECT_EQ(batch.timestamps[1], 101);
  EXPECT_DOUBLE_EQ(batch.ValueAt(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(batch.ValueAt(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(batch.ValueAt(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(batch.ValueAt(1, 1), 4.0);
}

TEST(PointBatchTest, Append1) {
  PointBatch batch;
  batch.Append1(5, 6, 7, 0.25);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_DOUBLE_EQ(batch.ValueAt(0), 0.25);
}

TEST(PointBatchTest, ApproxBytesGrows) {
  PointBatch batch;
  const size_t empty = batch.ApproxBytes();
  for (int i = 0; i < 1000; ++i) batch.Append1(i, i, i, 0.0);
  EXPECT_GT(batch.ApproxBytes(), empty + 1000 * 20);
}

TEST(StreamEventTest, Factories) {
  FrameInfo info;
  info.frame_id = 9;
  info.lattice = LatLonLattice(4, 4);
  StreamEvent begin = StreamEvent::FrameBegin(info);
  EXPECT_EQ(begin.kind, EventKind::kFrameBegin);
  EXPECT_EQ(begin.frame.frame_id, 9);

  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 9;
  StreamEvent be = StreamEvent::Batch(batch);
  EXPECT_EQ(be.kind, EventKind::kPointBatch);
  EXPECT_EQ(be.batch->frame_id, 9);

  EXPECT_EQ(StreamEvent::FrameEnd(info).kind, EventKind::kFrameEnd);
  EXPECT_EQ(StreamEvent::StreamEnd().kind, EventKind::kStreamEnd);
}

TEST(StreamEventTest, ToStringIsInformative) {
  FrameInfo info;
  info.frame_id = 3;
  info.lattice = LatLonLattice(4, 4);
  EXPECT_NE(StreamEvent::FrameBegin(info).ToString().find("3"),
            std::string::npos);
  EXPECT_NE(StreamEvent::StreamEnd().ToString().find("StreamEnd"),
            std::string::npos);
}

TEST(GeoStreamDescriptorTest, ValidateAndAccessors) {
  GeoStreamDescriptor desc = TestDescriptor("goes.band1");
  EXPECT_TRUE(desc.Validate().ok());
  EXPECT_EQ(desc.name(), "goes.band1");
  EXPECT_EQ(desc.crs()->name(), "latlon");
  EXPECT_EQ(desc.organization(), PointOrganization::kRowByRow);
  EXPECT_EQ(desc.timestamp_policy(), TimestampPolicy::kScanSectorId);
}

TEST(GeoStreamDescriptorTest, ValidationFailures) {
  EXPECT_FALSE(GeoStreamDescriptor().Validate().ok());  // empty name
  GeoStreamDescriptor no_lattice("x", ValueSet::ReflectanceF32(),
                                 GridLattice(),
                                 PointOrganization::kRowByRow,
                                 TimestampPolicy::kScanSectorId);
  EXPECT_FALSE(no_lattice.Validate().ok());
}

TEST(GeoStreamDescriptorTest, WithersDeriveNewDescriptors) {
  GeoStreamDescriptor desc = TestDescriptor("a");
  GeoStreamDescriptor renamed = desc.WithName("b");
  EXPECT_EQ(renamed.name(), "b");
  EXPECT_EQ(desc.name(), "a");  // original untouched
  GeoStreamDescriptor reorg =
      desc.WithOrganization(PointOrganization::kImageByImage);
  EXPECT_EQ(reorg.organization(), PointOrganization::kImageByImage);
  GeoStreamDescriptor revalued = desc.WithValueSet(ValueSet::IndexF32());
  EXPECT_EQ(revalued.value_set().name(), "index");
}

TEST(EnumNamesTest, OrganizationsAndPolicies) {
  EXPECT_STREQ(PointOrganizationName(PointOrganization::kImageByImage),
               "image-by-image");
  EXPECT_STREQ(PointOrganizationName(PointOrganization::kRowByRow),
               "row-by-row");
  EXPECT_STREQ(PointOrganizationName(PointOrganization::kPointByPoint),
               "point-by-point");
  EXPECT_STREQ(TimestampPolicyName(TimestampPolicy::kScanSectorId),
               "scan-sector-id");
  EXPECT_STREQ(EventKindName(EventKind::kPointBatch), "PointBatch");
}

}  // namespace
}  // namespace geostreams
