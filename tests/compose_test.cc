#include "ops/compose_op.h"

#include <gtest/gtest.h>

#include "ops/macro_ops.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

/// Pushes one frame with frame-id timestamps into both compose ports,
/// row-interleaved (row-by-row organization), with per-port values.
Status PushInterleavedFrame(ComposeOp* op, const GridLattice& lattice,
                            int64_t frame, double left_bias,
                            double right_bias) {
  FrameInfo info;
  info.frame_id = frame;
  info.lattice = lattice;
  GEOSTREAMS_RETURN_IF_ERROR(
      op->input(0)->Consume(StreamEvent::FrameBegin(info)));
  GEOSTREAMS_RETURN_IF_ERROR(
      op->input(1)->Consume(StreamEvent::FrameBegin(info)));
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int port = 0; port < 2; ++port) {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = frame;
      batch->band_count = 1;
      const double bias = port == 0 ? left_bias : right_bias;
      for (int64_t col = 0; col < lattice.width(); ++col) {
        batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                       frame, TestValue(frame, col, row) + bias);
      }
      GEOSTREAMS_RETURN_IF_ERROR(
          op->input(port)->Consume(StreamEvent::Batch(std::move(batch))));
    }
  }
  GEOSTREAMS_RETURN_IF_ERROR(
      op->input(0)->Consume(StreamEvent::FrameEnd(info)));
  return op->input(1)->Consume(StreamEvent::FrameEnd(info));
}

TEST(ComposeTest, SubtractMatchesPointwise) {
  GridLattice lattice = LatLonLattice(6, 4);
  ComposeOp op("c", ComposeFn::kSubtract);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushInterleavedFrame(&op, lattice, 1, 0.5, 0.2));
  EXPECT_TRUE(WellFormedFrames(sink.events()));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 24u);
  for (const auto& [key, v] : points) {
    EXPECT_NEAR(v, 0.3, 1e-12);
  }
  EXPECT_EQ(op.matches(), 24u);
}

TEST(ComposeTest, AllGammaFunctions) {
  struct Case {
    ComposeFn fn;
    double expected;  // for left=0.8, right=0.2 at a constant field
  };
  for (const Case& c :
       {Case{ComposeFn::kAdd, 1.0}, Case{ComposeFn::kSubtract, 0.6},
        Case{ComposeFn::kMultiply, 0.16}, Case{ComposeFn::kDivide, 4.0},
        Case{ComposeFn::kSupremum, 0.8}, Case{ComposeFn::kInfimum, 0.2}}) {
    GridLattice lattice = LatLonLattice(2, 2);
    ComposeOp op("c", c.fn);
    CollectingSink sink;
    op.BindOutput(&sink);
    // Constant fields: left 0.8, right 0.2 (bias replaces TestValue by
    // using a 1x1 lattice at frame 0 where TestValue(0,0,0)=0).
    FrameInfo info;
    info.frame_id = 0;
    info.lattice = lattice;
    GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
    GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameBegin(info)));
    for (int port = 0; port < 2; ++port) {
      auto batch = std::make_shared<PointBatch>();
      batch->frame_id = 0;
      batch->band_count = 1;
      batch->Append1(0, 0, 0, port == 0 ? 0.8 : 0.2);
      GS_ASSERT_OK(op.input(port)->Consume(StreamEvent::Batch(batch)));
    }
    GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
    GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameEnd(info)));
    auto points = CollectPoints(sink.events());
    ASSERT_EQ(points.size(), 1u) << ComposeFnName(c.fn);
    EXPECT_NEAR(points.begin()->second, c.expected, 1e-12)
        << ComposeFnName(c.fn);
  }
}

TEST(ComposeTest, RowInterleavedBuffersAboutOneRow) {
  const int64_t w = 64, h = 32;
  GridLattice lattice = LatLonLattice(w, h, 0.05);
  ComposeOp op("c", ComposeFn::kSubtract);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushInterleavedFrame(&op, lattice, 0, 0.0, 0.1));
  // With row interleaving, at most one row of one side is pending.
  const uint64_t entry_bytes = 16 + 8;
  EXPECT_LE(op.metrics().buffered_bytes_high_water,
            static_cast<uint64_t>(w) * entry_bytes * 2);
  EXPECT_EQ(sink.TotalPoints(), static_cast<uint64_t>(w * h));
}

TEST(ComposeTest, SequentialFramesBufferWholeImage) {
  const int64_t w = 32, h = 32;
  GridLattice lattice = LatLonLattice(w, h, 0.05);
  ComposeOp op("c", ComposeFn::kSubtract);
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  // Whole left frame first (image-by-image arrival)...
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  auto left = std::make_shared<PointBatch>();
  left->frame_id = 0;
  left->band_count = 1;
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      left->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r), 0,
                    1.0);
    }
  }
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(left)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  // The whole left frame is now buffered.
  const uint64_t entry_bytes = 16 + 8;
  EXPECT_GE(op.metrics().buffered_bytes,
            static_cast<uint64_t>(w * h) * entry_bytes);
  // ...then the right frame matches everything away.
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameBegin(info)));
  auto right = std::make_shared<PointBatch>();
  right->frame_id = 0;
  right->band_count = 1;
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      right->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r), 0,
                     0.25);
    }
  }
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::Batch(right)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameEnd(info)));
  EXPECT_EQ(sink.TotalPoints(), static_cast<uint64_t>(w * h));
  EXPECT_EQ(op.metrics().buffered_bytes, 0u);
  EXPECT_TRUE(WellFormedFrames(sink.events()));
}

TEST(ComposeTest, MeasurementTimestampsNeverMatch) {
  // Sec. 3.3: "If incoming points are timestamped based on when the
  // points were measured, a stream composition operator would never
  // produce new image data."
  GridLattice lattice = LatLonLattice(8, 4);
  ComposeOp op("c", ComposeFn::kSubtract);
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameBegin(info)));
  int64_t clock = 0;
  for (int port = 0; port < 2; ++port) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    for (int64_t r = 0; r < 4; ++r) {
      for (int64_t c = 0; c < 8; ++c) {
        batch->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r),
                       clock++, 1.0);
      }
    }
    GS_ASSERT_OK(op.input(port)->Consume(StreamEvent::Batch(batch)));
  }
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameEnd(info)));
  EXPECT_EQ(sink.TotalPoints(), 0u);
  EXPECT_EQ(op.matches(), 0u);
  // Eviction at frame close keeps the pending buffers bounded.
  EXPECT_EQ(op.metrics().buffered_bytes, 0u);
}

TEST(ComposeTest, LatticeMismatchFails) {
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo a;
  a.frame_id = 0;
  a.lattice = LatLonLattice(4, 4, 0.5);
  FrameInfo b;
  b.frame_id = 0;
  b.lattice = LatLonLattice(4, 4, 0.25);  // different resolution
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(a)));
  EXPECT_EQ(op.input(1)->Consume(StreamEvent::FrameBegin(b)).code(),
            StatusCode::kLatticeMismatch);
}

TEST(ComposeTest, MultipleFramesStayWellFormed) {
  GridLattice lattice = LatLonLattice(8, 4);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 5; ++f) {
    GS_ASSERT_OK(PushInterleavedFrame(&op, lattice, f, 0.0, 0.0));
  }
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::StreamEnd()));
  EXPECT_TRUE(WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 5u);
  EXPECT_EQ(sink.TotalPoints(), 5u * 32u);
  // Exactly one StreamEnd is forwarded.
  int ends = 0;
  for (const auto& e : sink.events()) {
    if (e.kind == EventKind::kStreamEnd) ++ends;
  }
  EXPECT_EQ(ends, 1);
}

TEST(ComposeTest, PartialOverlapOnlyMatchesCommonPoints) {
  // Left stream misses some rows: only common points are output
  // ("it can happen that there is no single point that occurs in both
  // streams", Sec. 3.3).
  GridLattice lattice = LatLonLattice(4, 4);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameBegin(info)));
  auto left = std::make_shared<PointBatch>();
  left->frame_id = 0;
  left->band_count = 1;
  left->Append1(0, 0, 0, 1.0);
  left->Append1(1, 0, 0, 1.0);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(left)));
  auto right = std::make_shared<PointBatch>();
  right->frame_id = 0;
  right->band_count = 1;
  right->Append1(1, 0, 0, 2.0);
  right->Append1(2, 0, 0, 2.0);
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::Batch(right)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameEnd(info)));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points.at({1, 0, 0}), 3.0);
}

TEST(NdviMacroTest, ComputesNormalizedDifference) {
  GridLattice lattice = LatLonLattice(4, 2);
  auto op = MakeNdviOp("ndvi");
  CollectingSink sink;
  op->BindOutput(&sink);
  GS_ASSERT_OK(PushInterleavedFrame(op.get(), lattice, 0, 0.6, 0.2));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 8u);
  for (const auto& [key, v] : points) {
    const double nir = TestValue(0, std::get<0>(key), std::get<1>(key)) + 0.6;
    const double vis = TestValue(0, std::get<0>(key), std::get<1>(key)) + 0.2;
    EXPECT_NEAR(v, (nir - vis) / (nir + vis), 1e-12);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(NdviMacroTest, ZeroSumGivesZero) {
  auto op = MakeNdviOp("ndvi");
  CollectingSink sink;
  op->BindOutput(&sink);
  GridLattice lattice = LatLonLattice(1, 1);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op->input(0)->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(op->input(1)->Consume(StreamEvent::FrameBegin(info)));
  for (int port = 0; port < 2; ++port) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    batch->Append1(0, 0, 0, 0.0);
    GS_ASSERT_OK(op->input(port)->Consume(StreamEvent::Batch(batch)));
  }
  GS_ASSERT_OK(op->input(0)->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(op->input(1)->Consume(StreamEvent::FrameEnd(info)));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points.begin()->second, 0.0);
}

TEST(MacroOpsTest, RatioAndDifferenceFactories) {
  auto ratio = MakeBandRatioOp("r");
  auto diff = MakeBandDifferenceOp("d");
  EXPECT_EQ(ratio->fn().name, "/");
  EXPECT_EQ(diff->fn().name, "-");
  auto nd = MakeNormalizedDifferenceOp("n");
  EXPECT_EQ(nd->fn().name, "normalized_difference");
}

// Property: composition output is identical whether the two bands
// arrive row-interleaved or image-sequential (only buffering differs).
TEST(ComposeTest, OutputInvariantUnderOrganization) {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 1024;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};

  auto run = [&](PointOrganization org) {
    InstrumentConfig c = config;
    c.organization = org;
    StreamGenerator gen(c, ScanSchedule::GoesRoutine());
    ComposeOp op("c", ComposeFn::kSubtract);
    CollectingSink sink;
    op.BindOutput(&sink);
    Status st = gen.GenerateScans(0, 3, {op.input(0), op.input(1)});
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = gen.Finish({op.input(0), op.input(1)});
    EXPECT_TRUE(st.ok()) << st.ToString();
    return CollectPoints(sink.events());
  };

  auto row = run(PointOrganization::kRowByRow);
  auto image = run(PointOrganization::kImageByImage);
  ASSERT_GT(row.size(), 0u);
  EXPECT_EQ(row, image);
}

}  // namespace
}  // namespace geostreams
