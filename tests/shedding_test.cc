#include "ops/shedding_op.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ops/aggregate_op.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::WellFormedFrames;

TEST(SheddingTest, KeepAllIsIdentity) {
  GridLattice lattice = LatLonLattice(8, 8);
  LoadSheddingOp op("s", SheddingMode::kDropPoints, 1.0);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_EQ(sink.TotalPoints(), 64u);
  EXPECT_EQ(op.points_shed(), 0u);
}

TEST(SheddingTest, KeepNoneDropsEverythingButMetadata) {
  GridLattice lattice = LatLonLattice(8, 8);
  LoadSheddingOp op("s", SheddingMode::kDropPoints, 0.0);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_EQ(sink.TotalPoints(), 0u);
  EXPECT_EQ(op.points_shed(), 64u);
  EXPECT_EQ(sink.NumFrames(), 1u);  // frame metadata still flows
}

TEST(SheddingTest, PointSamplingApproximatesFraction) {
  GridLattice lattice = LatLonLattice(64, 64);
  LoadSheddingOp op("s", SheddingMode::kDropPoints, 0.3);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  const double kept =
      static_cast<double>(sink.TotalPoints()) / (64.0 * 64.0);
  EXPECT_NEAR(kept, 0.3, 0.05);
}

TEST(SheddingTest, RowSamplingKeepsWholeRows) {
  GridLattice lattice = LatLonLattice(16, 32);
  LoadSheddingOp op("s", SheddingMode::kDropRows, 0.5);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  // Every surviving row must be complete (16 points).
  std::map<int32_t, int> row_counts;
  for (const auto& [key, v] : CollectPoints(sink.events())) {
    ++row_counts[std::get<1>(key)];
  }
  ASSERT_GT(row_counts.size(), 4u);
  ASSERT_LT(row_counts.size(), 28u);
  for (const auto& [row, count] : row_counts) {
    EXPECT_EQ(count, 16) << "row " << row << " partially shed";
  }
}

TEST(SheddingTest, FrameSamplingDropsWholeSectors) {
  GridLattice lattice = LatLonLattice(8, 8);
  LoadSheddingOp op("s", SheddingMode::kDropFrames, 0.5);
  CollectingSink sink;
  op.BindOutput(&sink);
  const int frames = 40;
  for (int64_t f = 0; f < frames; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  EXPECT_TRUE(WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), static_cast<uint64_t>(frames));
  // Surviving frames are complete; shed frames contribute nothing.
  std::map<int64_t, uint64_t> per_frame;
  for (const auto& [key, v] : CollectPoints(sink.events())) {
    ++per_frame[std::get<2>(key)];
  }
  for (const auto& [frame, count] : per_frame) {
    EXPECT_EQ(count, 64u);
  }
  const double kept_frames =
      static_cast<double>(per_frame.size()) / frames;
  EXPECT_NEAR(kept_frames, 0.5, 0.25);
  EXPECT_GT(op.points_shed(), 0u);
}

TEST(SheddingTest, DeterministicAcrossRuns) {
  auto run = [] {
    GridLattice lattice = LatLonLattice(16, 16);
    LoadSheddingOp op("s", SheddingMode::kDropPoints, 0.4, /*seed=*/7);
    CollectingSink sink;
    op.BindOutput(&sink);
    Status st = PushFrame(op.input(0), lattice, 0);
    EXPECT_TRUE(st.ok());
    return CollectPoints(sink.events());
  };
  EXPECT_EQ(run(), run());
}

TEST(SheddingTest, AggregateDegradesGracefully) {
  // The point of shedding: an average over a shed stream stays close
  // to the exact average (sampling, not bias).
  GridLattice lattice = LatLonLattice(64, 64);
  auto region = MakeBBoxRegion(-130.0, 0.0, -90.0, 50.0);

  auto run = [&](double keep) {
    LoadSheddingOp shed("s", SheddingMode::kDropPoints, keep);
    AggregateOp agg("a", AggregateFn::kAvg, {region}, 1);
    CollectingSink sink;
    shed.BindOutput(agg.input(0));
    agg.BindOutput(&sink);
    Status st = PushFrame(shed.input(0), lattice, 0);
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(agg.results().size(), 1u);
    return agg.results()[0].value;
  };
  const double exact = run(1.0);
  const double quarter = run(0.25);
  EXPECT_NEAR(quarter, exact, std::fabs(exact) * 0.05 + 0.01);
}

TEST(SheddingTest, ModeNames) {
  EXPECT_STREQ(SheddingModeName(SheddingMode::kDropPoints), "drop-points");
  EXPECT_STREQ(SheddingModeName(SheddingMode::kDropRows), "drop-rows");
  EXPECT_STREQ(SheddingModeName(SheddingMode::kDropFrames), "drop-frames");
}

}  // namespace
}  // namespace geostreams
