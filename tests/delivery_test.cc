#include "ops/delivery_op.h"

#include <gtest/gtest.h>

#include "ops/compose_op.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;

TEST(DeliveryTest, DeliversAssembledFrames) {
  GridLattice lattice = LatLonLattice(6, 4);
  std::vector<std::pair<int64_t, Raster>> delivered;
  DeliveryOp op(
      "d",
      [&delivered](int64_t id, const Raster& raster,
                   const std::vector<uint8_t>&) {
        delivered.emplace_back(id, raster);
      });
  NullSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 3));
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 4));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 3);
  EXPECT_EQ(delivered[1].first, 4);
  EXPECT_DOUBLE_EQ(delivered[0].second.At(5, 3), TestValue(3, 5, 3));
  EXPECT_EQ(op.frames_delivered(), 2u);
}

TEST(DeliveryTest, PngEncodingProducesValidBytes) {
  GridLattice lattice = LatLonLattice(8, 8);
  DeliveryOptions options;
  options.encode_png = true;
  options.png_lo = 0.0;
  options.png_hi = 1.0;
  std::vector<uint8_t> last_png;
  DeliveryOp op(
      "d",
      [&last_png](int64_t, const Raster&, const std::vector<uint8_t>& png) {
        last_png = png;
      },
      options);
  NullSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  ASSERT_GE(last_png.size(), 8u);
  EXPECT_EQ(last_png[1], 'P');
  EXPECT_EQ(op.bytes_encoded(), last_png.size());
}

TEST(DeliveryTest, NodataFillsMissingCells) {
  GridLattice lattice = LatLonLattice(4, 4);
  DeliveryOptions options;
  options.nodata = -5.0;
  Raster captured;
  DeliveryOp op(
      "d",
      [&captured](int64_t, const Raster& raster,
                  const std::vector<uint8_t>&) { captured = raster; },
      options);
  NullSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 1;
  batch->Append1(1, 1, 0, 9.0);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  EXPECT_DOUBLE_EQ(captured.At(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(captured.At(0, 0), -5.0);
}

TEST(DeliveryTest, EmptyFrameStillDelivered) {
  // A restricted query can produce frames with no surviving points;
  // clients still receive the (all-nodata) frame.
  GridLattice lattice = LatLonLattice(4, 4);
  int delivered = 0;
  DeliveryOp op("d", [&delivered](int64_t, const Raster&,
                                  const std::vector<uint8_t>&) {
    ++delivered;
  });
  NullSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 7;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  EXPECT_EQ(delivered, 1);
}

TEST(DeliveryTest, MultiBandFrames) {
  // 3-band (colour) frames assemble into 3-band rasters: the Z^3
  // value sets of Sec. 2, e.g. from stacked compositions.
  GridLattice lattice = LatLonLattice(2, 2);
  Raster captured;
  DeliveryOp op("d", [&captured](int64_t, const Raster& raster,
                                 const std::vector<uint8_t>&) {
    captured = raster;
  });
  NullSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 3;
  const double rgb[3] = {0.9, 0.5, 0.1};
  batch->Append(0, 0, 0, rgb);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::Batch(batch)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  EXPECT_EQ(captured.bands(), 3);
  EXPECT_DOUBLE_EQ(captured.At(0, 0, 0), 0.9);
  EXPECT_DOUBLE_EQ(captured.At(0, 0, 2), 0.1);
}

TEST(DeliveryTest, ForwardsEventsDownstream) {
  // Delivery is itself a stream operator (the algebra stays closed):
  // everything it consumes continues downstream.
  GridLattice lattice = LatLonLattice(3, 3);
  DeliveryOp op("d", nullptr);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_EQ(sink.TotalPoints(), 9u);
  EXPECT_EQ(sink.NumFrames(), 1u);
}

TEST(BandStackTest, StacksTwoSingleBandStreams) {
  GridLattice lattice = LatLonLattice(4, 2);
  ComposeOp op("stack", BinaryValueFn::Stack(1, 1));
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameBegin(info)));
  for (int port = 0; port < 2; ++port) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    for (int32_t c = 0; c < 4; ++c) {
      batch->Append1(c, 0, 0, port == 0 ? c * 1.0 : c * 10.0);
    }
    GS_ASSERT_OK(op.input(port)->Consume(StreamEvent::Batch(batch)));
  }
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::FrameEnd(info)));
  uint64_t points = 0;
  for (const StreamEvent& e : sink.events()) {
    if (e.kind != EventKind::kPointBatch) continue;
    EXPECT_EQ(e.batch->band_count, 2);
    for (size_t i = 0; i < e.batch->size(); ++i) {
      const double left = e.batch->ValueAt(i, 0);
      const double right = e.batch->ValueAt(i, 1);
      EXPECT_DOUBLE_EQ(right, left * 10.0);
      ++points;
    }
  }
  EXPECT_EQ(points, 4u);
}

TEST(BandStackTest, MismatchedBandCountRejected) {
  ComposeOp op("stack", BinaryValueFn::Stack(1, 2));
  CollectingSink sink;
  op.BindOutput(&sink);
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = LatLonLattice(2, 2);
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::FrameBegin(info)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 3;  // port 0 expects 1
  const double v[3] = {1, 2, 3};
  batch->Append(0, 0, 0, v);
  EXPECT_FALSE(op.input(0)->Consume(StreamEvent::Batch(batch)).ok());
}

}  // namespace
}  // namespace geostreams
