#include "core/value.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace geostreams {
namespace {

TEST(ValueSetTest, FactoriesAreValid) {
  EXPECT_TRUE(ValueSet::GrayscaleU8().Validate().ok());
  EXPECT_TRUE(ValueSet::RgbU8().Validate().ok());
  EXPECT_TRUE(ValueSet::RadianceF32().Validate().ok());
  EXPECT_TRUE(ValueSet::ReflectanceF32().Validate().ok());
  EXPECT_TRUE(ValueSet::IndexF32().Validate().ok());
  EXPECT_TRUE(ValueSet::CountsU16().Validate().ok());
}

TEST(ValueSetTest, BytesPerPoint) {
  EXPECT_EQ(ValueSet::GrayscaleU8().BytesPerPoint(), 1u);
  EXPECT_EQ(ValueSet::RgbU8().BytesPerPoint(), 3u);
  EXPECT_EQ(ValueSet::RadianceF32().BytesPerPoint(), 4u);
  EXPECT_EQ(ValueSet::CountsU16().BytesPerPoint(), 2u);
}

TEST(ValueSetTest, ValidationRejectsBadConfigs) {
  EXPECT_FALSE(ValueSet("x", SampleType::kUInt8, 0, 0, 1).Validate().ok());
  EXPECT_FALSE(
      ValueSet("x", SampleType::kUInt8, kMaxBands + 1, 0, 1).Validate().ok());
  EXPECT_FALSE(ValueSet("x", SampleType::kUInt8, 1, 5, 1).Validate().ok());
}

TEST(ValueSetTest, ClampAndRange) {
  ValueSet vs = ValueSet::GrayscaleU8();
  EXPECT_TRUE(vs.InRange(128.0));
  EXPECT_FALSE(vs.InRange(300.0));
  EXPECT_DOUBLE_EQ(vs.Clamp(300.0), 255.0);
  EXPECT_DOUBLE_EQ(vs.Clamp(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(vs.Clamp(std::nan("")), 0.0);
}

TEST(ValueSetTest, Compatibility) {
  EXPECT_TRUE(
      ValueSet::ReflectanceF32().CompatibleWith(ValueSet::RadianceF32()));
  EXPECT_FALSE(ValueSet::RgbU8().CompatibleWith(ValueSet::GrayscaleU8()));
}

TEST(BandValueTest, ConstructionAndEquality) {
  BandValue gray(0.5);
  EXPECT_EQ(gray.bands, 1);
  EXPECT_DOUBLE_EQ(gray[0], 0.5);
  BandValue rgb(1.0, 2.0, 3.0);
  EXPECT_EQ(rgb.bands, 3);
  EXPECT_DOUBLE_EQ(rgb[2], 3.0);
  EXPECT_TRUE(BandValue(0.5) == BandValue(0.5));
  EXPECT_FALSE(BandValue(0.5) == BandValue(0.6));
  EXPECT_FALSE(gray == rgb);
}

TEST(ComposeFnTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kAdd, 2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kSubtract, 2.0, 3.0), -1.0);
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kMultiply, 2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kDivide, 6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kSupremum, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kInfimum, 2.0, 3.0), 2.0);
}

TEST(ComposeFnTest, DivisionByZeroIsTotal) {
  // The value algebra is total: x/0 saturates instead of trapping.
  EXPECT_DOUBLE_EQ(ApplyComposeFn(ComposeFn::kDivide, 0.0, 0.0), 0.0);
  EXPECT_EQ(ApplyComposeFn(ComposeFn::kDivide, 5.0, 0.0),
            std::numeric_limits<double>::max());
  EXPECT_EQ(ApplyComposeFn(ComposeFn::kDivide, -5.0, 0.0),
            std::numeric_limits<double>::lowest());
}

TEST(ComposeFnTest, Names) {
  EXPECT_STREQ(ComposeFnName(ComposeFn::kAdd), "+");
  EXPECT_STREQ(ComposeFnName(ComposeFn::kSupremum), "sup");
}

TEST(SampleTypeTest, SizesAndNames) {
  EXPECT_EQ(SampleTypeSize(SampleType::kUInt8), 1u);
  EXPECT_EQ(SampleTypeSize(SampleType::kInt16), 2u);
  EXPECT_EQ(SampleTypeSize(SampleType::kFloat32), 4u);
  EXPECT_EQ(SampleTypeSize(SampleType::kFloat64), 8u);
  EXPECT_STREQ(SampleTypeName(SampleType::kFloat32), "f32");
}

}  // namespace
}  // namespace geostreams
