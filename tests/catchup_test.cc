// Hybrid stream/stored catch-up tests: a query registered with
// CatchUpOptions replays the recorded history through its own plan and
// then cuts over to the live stream exactly once at a frame-id
// watermark. These tests audit the seam — the delivered frame-id
// sequence must be gapless and duplicate-free across the cut-over —
// under synchronous and worker-pool execution, empty stores, mid-frame
// late attaches, SINCE offsets, and temporal windows spanning
// past + future.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "server/dsms_server.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestDescriptor;
using testing_util::TestValue;

std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gscatchup-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Thread-safe frame capture with the exactly-once audit: the frame-id
/// sequence a subscriber sees must be strictly ascending (no
/// duplicates, no reordering across the stored→live seam).
class Audit {
 public:
  FrameCallback Callback() {
    return [this](int64_t frame_id, const Raster& raster,
                  const std::vector<uint8_t>&) {
      // A filtered frame delivers as all-nodata (0.0); a data frame
      // has TestValue samples, which are nonzero off the origin cell.
      bool any = false;
      for (int64_t row = 0; row < raster.height() && !any; ++row) {
        for (int64_t col = 0; col < raster.width() && !any; ++col) {
          any = raster.At(col, row) != 0.0;
        }
      }
      std::lock_guard<std::mutex> lock(mu_);
      ids_.push_back(frame_id);
      if (any) {
        data_ids_.push_back(frame_id);
        sample_.emplace_back(frame_id, raster.At(3, 2));
      }
    };
  }

  std::vector<int64_t> ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_;
  }

  std::vector<int64_t> data_ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return data_ids_;
  }

  /// Asserts the full exactly-once contract: delivered ids are exactly
  /// first..last with no gap and no duplicate.
  void ExpectContiguous(int64_t first, int64_t last) const {
    std::vector<int64_t> expect;
    for (int64_t f = first; f <= last; ++f) expect.push_back(f);
    EXPECT_EQ(ids(), expect);
  }

  /// Sampled cell values round-tripped bit-exact through the store.
  void ExpectSampleValues() const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [frame_id, value] : sample_) {
      EXPECT_EQ(value, TestValue(frame_id, 3, 2)) << "frame " << frame_id;
    }
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> ids_;
  std::vector<int64_t> data_ids_;
  std::vector<std::pair<int64_t, double>> sample_;
};

/// A server with the tile store enabled and one synthetic stream
/// ("src", 16x12 lat/lon) whose frames are pushed by hand so the test
/// controls exactly which frame ids exist where.
class CatchUpFixture {
 public:
  explicit CatchUpFixture(DsmsOptions options = {}) {
    options.store_dir = FreshDir("store");
    server_ = std::make_unique<DsmsServer>(options);
    Status st = server_->RegisterStream(TestDescriptor("src"));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  Status Ingest(int64_t first, int64_t count) {
    for (int64_t f = first; f < first + count; ++f) {
      GEOSTREAMS_RETURN_IF_ERROR(
          PushFrame(server_->ingest("src"), lattice_, f));
    }
    return server_->Flush();
  }

  Result<QueryId> Subscribe(Audit* audit, int64_t since,
                            const std::string& text = "src") {
    CatchUpOptions catch_up;
    catch_up.since = since;
    return server_->RegisterQuery(text, audit->Callback(), catch_up);
  }

  DsmsServer& server() { return *server_; }
  const GridLattice& lattice() const { return lattice_; }

 private:
  GridLattice lattice_ = LatLonLattice(16, 12);
  std::unique_ptr<DsmsServer> server_;
};

TEST(CatchUpTest, LateSubscriberReplaysHistoryThenLiveWithNoSeam) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 10));

  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  // All of history arrived before the registration call returned.
  audit.ExpectContiguous(0, 9);

  GS_ASSERT_OK(fixture.Ingest(10, 5));
  audit.ExpectContiguous(0, 14);
  audit.ExpectSampleValues();
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, WorkerPoolKeepsTheSeamExactlyOnce) {
  DsmsOptions options;
  options.workers = 2;
  CatchUpFixture fixture(options);
  GS_ASSERT_OK(fixture.Ingest(0, 12));

  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(12, 8));
  GS_ASSERT_OK(fixture.server().Flush());
  audit.ExpectContiguous(0, 19);
  audit.ExpectSampleValues();
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, EmptyStoreCatchUpActsLikePlainSubscribe) {
  CatchUpFixture fixture;
  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(audit.ids().empty());

  GS_ASSERT_OK(fixture.Ingest(0, 4));
  audit.ExpectContiguous(0, 3);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, SinceOffsetsTheReplayStart) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 10));

  Audit audit;
  auto id = fixture.Subscribe(&audit, 5);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  audit.ExpectContiguous(5, 9);
  GS_ASSERT_OK(fixture.Ingest(10, 3));
  audit.ExpectContiguous(5, 12);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, SinceBeyondHistoryDeliversOnlyLive) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 6));

  Audit audit;
  auto id = fixture.Subscribe(&audit, 100);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(audit.ids().empty());
  // Live frames 6..8 are all <= nothing — they flow normally (they are
  // above the store watermark 5, which the gate froze at registration).
  GS_ASSERT_OK(fixture.Ingest(6, 3));
  audit.ExpectContiguous(6, 8);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, StoreEndingExactlyAtWatermarkHandlesStreamEnd) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 7));

  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  audit.ExpectContiguous(0, 6);

  // No live frame ever arrives past the watermark: the StreamEnd must
  // drain the (empty) remainder of the store and pass through without
  // re-delivering history.
  GS_ASSERT_OK(fixture.server().EndAllStreams());
  GS_ASSERT_OK(fixture.server().Flush());
  audit.ExpectContiguous(0, 6);
}

TEST(CatchUpTest, LateAttachMidFrameNeverSplitsAFrame) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 5));

  // Start frame 5 by hand and leave it half-ingested.
  EventSink* ingest = fixture.server().ingest("src");
  ASSERT_NE(ingest, nullptr);
  const GridLattice& lattice = fixture.lattice();
  FrameInfo info;
  info.frame_id = 5;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  GS_ASSERT_OK(ingest->Consume(StreamEvent::FrameBegin(info)));
  {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 5;
    batch->band_count = 1;
    for (int64_t col = 0; col < lattice.width(); ++col) {
      batch->Append1(static_cast<int32_t>(col), 0, 5, TestValue(5, col, 0));
    }
    GS_ASSERT_OK(ingest->Consume(StreamEvent::Batch(std::move(batch))));
  }

  // Attach mid-frame: the store holds 0..4, frame 5 is in flight.
  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  audit.ExpectContiguous(0, 4);

  // Finish frame 5 and push more: the subscriber must see 5 exactly
  // once — from whichever side of the seam won — then 6..7.
  for (int64_t row = 1; row < lattice.height(); ++row) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 5;
    batch->band_count = 1;
    for (int64_t col = 0; col < lattice.width(); ++col) {
      batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row), 5,
                     TestValue(5, col, row));
    }
    GS_ASSERT_OK(ingest->Consume(StreamEvent::Batch(std::move(batch))));
  }
  GS_ASSERT_OK(ingest->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(fixture.Ingest(6, 2));
  audit.ExpectContiguous(0, 7);
  audit.ExpectSampleValues();
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, TemporalWindowSpansPastAndFuture) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 10));

  // The G|T window covers stored frames 3..9 and future frames 10..12.
  // Every frame still delivers an envelope (the delivery op emits
  // all-nodata rasters for filtered frames), but only the window
  // carries data — across both the stored and the live side.
  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN, "time(src, range(3, 12))");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(10, 5));
  audit.ExpectContiguous(0, 14);
  std::vector<int64_t> expect_data;
  for (int64_t f = 3; f <= 12; ++f) expect_data.push_back(f);
  EXPECT_EQ(audit.data_ids(), expect_data);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, RegionQueryReplaysOnlyTheRegion) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 6));

  // A box over part of the lattice: replayed frames run through the
  // same region plan the live chain uses, so both sides agree.
  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN,
                              "region(src, bbox(-125, 43, -122, 45))");
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(6, 3));
  audit.ExpectContiguous(0, 8);
  // Every delivered frame has data (the box overlaps the lattice) and
  // the frames were reduced to the region on both sides of the seam.
  EXPECT_EQ(audit.data_ids().size(), 9u);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
}

TEST(CatchUpTest, CatchUpFailsCleanlyOnBadQueryText) {
  CatchUpFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 3));
  Audit audit;
  auto id = fixture.Subscribe(&audit, INT64_MIN, "nope.stream");
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(fixture.server().num_queries(), 0u);
  // The server keeps working for the next subscriber.
  Audit ok_audit;
  auto ok_id = fixture.Subscribe(&ok_audit, INT64_MIN);
  ASSERT_TRUE(ok_id.ok()) << ok_id.status().ToString();
  ok_audit.ExpectContiguous(0, 2);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*ok_id));
}

TEST(CatchUpTest, StoreSurvivesServerRestartAndServesNewSubscribers) {
  DsmsOptions options;
  options.store_dir = FreshDir("restart");
  const GridLattice lattice = LatLonLattice(16, 12);
  {
    DsmsServer server(options);
    GS_ASSERT_OK(server.RegisterStream(TestDescriptor("src")));
    for (int64_t f = 0; f < 5; ++f) {
      GS_ASSERT_OK(PushFrame(server.ingest("src"), lattice, f));
    }
    GS_ASSERT_OK(server.Flush());
  }
  // A new server over the same directory recovers the history and
  // serves it to a catch-up subscriber, then appends live frames.
  DsmsServer server(options);
  GS_ASSERT_OK(server.RegisterStream(TestDescriptor("src")));
  ASSERT_NE(server.store(), nullptr);
  EXPECT_EQ(server.store()->Watermark("src"), 4);

  Audit audit;
  CatchUpOptions catch_up;
  catch_up.since = INT64_MIN;
  auto id = server.RegisterQuery("src", audit.Callback(), catch_up);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  audit.ExpectContiguous(0, 4);
  for (int64_t f = 5; f < 8; ++f) {
    GS_ASSERT_OK(PushFrame(server.ingest("src"), lattice, f));
  }
  GS_ASSERT_OK(server.Flush());
  audit.ExpectContiguous(0, 7);
  audit.ExpectSampleValues();
  GS_ASSERT_OK(server.UnregisterQuery(*id));
}

}  // namespace
}  // namespace geostreams
