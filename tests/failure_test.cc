// Failure injection (DESIGN.md §5): malformed event sequences, stream
// protocol violations, and degenerate inputs must surface as Status
// errors — never as silent corruption or crashes.

#include <gtest/gtest.h>

#include "geo/geographic_crs.h"
#include "ops/compose_op.h"
#include "ops/reproject_op.h"
#include "ops/spatial_transform_op.h"
#include "ops/stretch_transform_op.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/dsms_server.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::MakeTestCatalog;
using testing_util::PushFrame;

StreamEvent BeginFor(const GridLattice& lattice, int64_t id) {
  FrameInfo info;
  info.frame_id = id;
  info.lattice = lattice;
  return StreamEvent::FrameBegin(info);
}

StreamEvent EndFor(const GridLattice& lattice, int64_t id) {
  FrameInfo info;
  info.frame_id = id;
  info.lattice = lattice;
  return StreamEvent::FrameEnd(info);
}

TEST(FailureTest, NestedFrameBeginRejectedByStretch) {
  GridLattice lattice = LatLonLattice(4, 4);
  StretchOptions opts;
  opts.in_lo = 0.0;
  opts.in_hi = 1.0;
  StretchTransformOp op("s", opts);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  EXPECT_EQ(op.input(0)->Consume(BeginFor(lattice, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailureTest, ComposeDoubleBeginAndOrphanEvents) {
  GridLattice lattice = LatLonLattice(4, 4);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  // Same frame beginning twice on the same port.
  EXPECT_EQ(op.input(0)->Consume(BeginFor(lattice, 0)).code(),
            StatusCode::kFailedPrecondition);
  // FrameEnd for a frame that never began on that port.
  EXPECT_EQ(op.input(1)->Consume(EndFor(lattice, 0)).code(),
            StatusCode::kFailedPrecondition);
  // Batch for an unknown frame.
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 99;
  batch->band_count = 1;
  batch->Append1(0, 0, 99, 1.0);
  EXPECT_EQ(op.input(0)->Consume(StreamEvent::Batch(batch)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailureTest, ComposeOutOfOrderFramesOnOnePort) {
  // Frames arrive in increasing id order per stream; a regression
  // (lower id after higher) must not deadlock the serializer — the
  // stale frame begins both sides and is emitted, in order, when the
  // open frame closes. Here we inject: port 0 begins 5 then 3.
  GridLattice lattice = LatLonLattice(2, 2);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 5)));
  GS_ASSERT_OK(op.input(1)->Consume(BeginFor(lattice, 5)));
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 3)));
  GS_ASSERT_OK(op.input(1)->Consume(BeginFor(lattice, 3)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 3)));
  GS_ASSERT_OK(op.input(1)->Consume(EndFor(lattice, 3)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 5)));
  GS_ASSERT_OK(op.input(1)->Consume(EndFor(lattice, 5)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::StreamEnd()));
  EXPECT_TRUE(testing_util::WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 2u);
}

TEST(FailureTest, EmptySectorsFlowThrough) {
  // Sectors that deliver zero points (instrument gap) keep the
  // pipeline healthy.
  GridLattice lattice = LatLonLattice(4, 4);
  ReduceOp op("r", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 0)));
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  EXPECT_EQ(sink.NumFrames(), 2u);
  EXPECT_EQ(sink.TotalPoints(), 4u);  // only frame 1 contributes
}

TEST(FailureTest, BatchOutsideLatticeRejectedByBufferingOps) {
  GridLattice lattice = LatLonLattice(4, 4);
  ReprojectOp op("p", GeographicCrs::Instance());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 1;
  batch->Append1(99, 99, 0, 1.0);  // outside the 4x4 sector
  EXPECT_EQ(op.input(0)->Consume(StreamEvent::Batch(batch)).code(),
            StatusCode::kOutOfRange);
}

TEST(FailureTest, AnalyzerRejectsMalformedQueriesWithoutCrashing) {
  StreamCatalog catalog = MakeTestCatalog();
  const char* bad_queries[] = {
      "add(g.nir, missing.stream)",
      "reproject(lidar.z, \"latlon\")",
      "stack(cam.rgb, cam.rgb, cam.rgb)",  // arity
      "region(g.nir, bbox(0,0,1))",
      "ndvi(g.nir)",
      "time(g.nir)",
      "stretch(g.nir)",
      "band(g.nir, -1)",
  };
  for (const char* q : bad_queries) {
    auto parsed = ParseQuery(q);
    if (!parsed.ok()) continue;  // parser already refused: fine
    EXPECT_FALSE(AnalyzeQuery(catalog, *parsed).ok()) << q;
  }
}

TEST(FailureTest, StackedBandsOverflowRejected) {
  StreamCatalog catalog = MakeTestCatalog();
  // 3+3+3 = 9 bands > kMaxBands (8).
  auto parsed =
      ParseQuery("stack(stack(cam.rgb, cam.rgb), cam.rgb)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(AnalyzeQuery(catalog, *parsed).ok());
}

TEST(FailureTest, ServerSurvivesQueryChurnUnderLoad) {
  DsmsServer server;
  StreamCatalog catalog = MakeTestCatalog();
  GS_ASSERT_OK(server.RegisterStream(*catalog.Lookup("g.nir")));
  GridLattice lattice = LatLonLattice(16, 12);
  // Register/ingest/unregister repeatedly; nothing may leak or fail.
  for (int round = 0; round < 10; ++round) {
    auto id = server.RegisterQuery(
        "region(g.nir, bbox(-125, 40, -121, 45))",
        [](int64_t, const Raster&, const std::vector<uint8_t>&) {});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, round));
    GS_ASSERT_OK(server.UnregisterQuery(*id));
  }
  EXPECT_EQ(server.num_queries(), 0u);
  // Ingest with zero registered queries is a no-op, not an error.
  GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, 99));
}

TEST(FailureTest, ZeroAreaRegionDeliversNothing) {
  StreamCatalog catalog = MakeTestCatalog();
  auto parsed = ParseQuery("region(g.nir, bbox(-120, 42, -120, 42))");
  ASSERT_TRUE(parsed.ok());
  GS_ASSERT_OK(AnalyzeQuery(catalog, *parsed));
  CollectingSink sink;
  auto plan = BuildPlan(*parsed, &sink);
  ASSERT_TRUE(plan.ok());
  GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame((*plan)->input("g.nir"), lattice, 0));
  EXPECT_EQ(sink.TotalPoints(), 0u);
}

}  // namespace
}  // namespace geostreams
