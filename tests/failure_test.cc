// Failure injection (DESIGN.md §5): malformed event sequences, stream
// protocol violations, and degenerate inputs must surface as Status
// errors — never as silent corruption or crashes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>

#include "geo/geographic_crs.h"
#include "ops/compose_op.h"
#include "ops/fault_injector_op.h"
#include "ops/reproject_op.h"
#include "ops/spatial_transform_op.h"
#include "ops/stretch_transform_op.h"
#include "query/analyzer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "stream/pipeline.h"
#include "stream/scheduler.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::MakeTestCatalog;
using testing_util::PushFrame;

StreamEvent BeginFor(const GridLattice& lattice, int64_t id) {
  FrameInfo info;
  info.frame_id = id;
  info.lattice = lattice;
  return StreamEvent::FrameBegin(info);
}

StreamEvent EndFor(const GridLattice& lattice, int64_t id) {
  FrameInfo info;
  info.frame_id = id;
  info.lattice = lattice;
  return StreamEvent::FrameEnd(info);
}

TEST(FailureTest, NestedFrameBeginRejectedByStretch) {
  GridLattice lattice = LatLonLattice(4, 4);
  StretchOptions opts;
  opts.in_lo = 0.0;
  opts.in_hi = 1.0;
  StretchTransformOp op("s", opts);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  EXPECT_EQ(op.input(0)->Consume(BeginFor(lattice, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailureTest, ComposeDoubleBeginAndOrphanEvents) {
  GridLattice lattice = LatLonLattice(4, 4);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  // Same frame beginning twice on the same port.
  EXPECT_EQ(op.input(0)->Consume(BeginFor(lattice, 0)).code(),
            StatusCode::kFailedPrecondition);
  // FrameEnd for a frame that never began on that port.
  EXPECT_EQ(op.input(1)->Consume(EndFor(lattice, 0)).code(),
            StatusCode::kFailedPrecondition);
  // Batch for an unknown frame.
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 99;
  batch->band_count = 1;
  batch->Append1(0, 0, 99, 1.0);
  EXPECT_EQ(op.input(0)->Consume(StreamEvent::Batch(batch)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FailureTest, ComposeOutOfOrderFramesOnOnePort) {
  // Frames arrive in increasing id order per stream; a regression
  // (lower id after higher) must not deadlock the serializer — the
  // stale frame begins both sides and is emitted, in order, when the
  // open frame closes. Here we inject: port 0 begins 5 then 3.
  GridLattice lattice = LatLonLattice(2, 2);
  ComposeOp op("c", ComposeFn::kAdd);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 5)));
  GS_ASSERT_OK(op.input(1)->Consume(BeginFor(lattice, 5)));
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 3)));
  GS_ASSERT_OK(op.input(1)->Consume(BeginFor(lattice, 3)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 3)));
  GS_ASSERT_OK(op.input(1)->Consume(EndFor(lattice, 3)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 5)));
  GS_ASSERT_OK(op.input(1)->Consume(EndFor(lattice, 5)));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  GS_ASSERT_OK(op.input(1)->Consume(StreamEvent::StreamEnd()));
  EXPECT_TRUE(testing_util::WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 2u);
}

TEST(FailureTest, EmptySectorsFlowThrough) {
  // Sectors that deliver zero points (instrument gap) keep the
  // pipeline healthy.
  GridLattice lattice = LatLonLattice(4, 4);
  ReduceOp op("r", 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  GS_ASSERT_OK(op.input(0)->Consume(EndFor(lattice, 0)));
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 1));
  EXPECT_EQ(sink.NumFrames(), 2u);
  EXPECT_EQ(sink.TotalPoints(), 4u);  // only frame 1 contributes
}

TEST(FailureTest, BatchOutsideLatticeRejectedByBufferingOps) {
  GridLattice lattice = LatLonLattice(4, 4);
  ReprojectOp op("p", GeographicCrs::Instance());
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(op.input(0)->Consume(BeginFor(lattice, 0)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 1;
  batch->Append1(99, 99, 0, 1.0);  // outside the 4x4 sector
  EXPECT_EQ(op.input(0)->Consume(StreamEvent::Batch(batch)).code(),
            StatusCode::kOutOfRange);
}

TEST(FailureTest, AnalyzerRejectsMalformedQueriesWithoutCrashing) {
  StreamCatalog catalog = MakeTestCatalog();
  const char* bad_queries[] = {
      "add(g.nir, missing.stream)",
      "reproject(lidar.z, \"latlon\")",
      "stack(cam.rgb, cam.rgb, cam.rgb)",  // arity
      "region(g.nir, bbox(0,0,1))",
      "ndvi(g.nir)",
      "time(g.nir)",
      "stretch(g.nir)",
      "band(g.nir, -1)",
  };
  for (const char* q : bad_queries) {
    auto parsed = ParseQuery(q);
    if (!parsed.ok()) continue;  // parser already refused: fine
    EXPECT_FALSE(AnalyzeQuery(catalog, *parsed).ok()) << q;
  }
}

TEST(FailureTest, StackedBandsOverflowRejected) {
  StreamCatalog catalog = MakeTestCatalog();
  // 3+3+3 = 9 bands > kMaxBands (8).
  auto parsed =
      ParseQuery("stack(stack(cam.rgb, cam.rgb), cam.rgb)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(AnalyzeQuery(catalog, *parsed).ok());
}

TEST(FailureTest, ServerSurvivesQueryChurnUnderLoad) {
  DsmsServer server;
  StreamCatalog catalog = MakeTestCatalog();
  GS_ASSERT_OK(server.RegisterStream(*catalog.Lookup("g.nir")));
  GridLattice lattice = LatLonLattice(16, 12);
  // Register/ingest/unregister repeatedly; nothing may leak or fail.
  for (int round = 0; round < 10; ++round) {
    auto id = server.RegisterQuery(
        "region(g.nir, bbox(-125, 40, -121, 45))",
        [](int64_t, const Raster&, const std::vector<uint8_t>&) {});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, round));
    GS_ASSERT_OK(server.UnregisterQuery(*id));
  }
  EXPECT_EQ(server.num_queries(), 0u);
  // Ingest with zero registered queries is a no-op, not an error.
  GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, 99));
}

TEST(FailureTest, ZeroAreaRegionDeliversNothing) {
  StreamCatalog catalog = MakeTestCatalog();
  auto parsed = ParseQuery("region(g.nir, bbox(-120, 42, -120, 42))");
  ASSERT_TRUE(parsed.ok());
  GS_ASSERT_OK(AnalyzeQuery(catalog, *parsed));
  CollectingSink sink;
  auto plan = BuildPlan(*parsed, &sink);
  ASSERT_TRUE(plan.ok());
  GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame((*plan)->input("g.nir"), lattice, 0));
  EXPECT_EQ(sink.TotalPoints(), 0u);
}

// --- Fault-injected end-to-end runs (supervision) ---------------------------

TEST(FaultInjectionE2eTest, PoisonQuarantinesExactlyOneQueryOfFour) {
  // Four concurrent queries on a worker pool; a stream protocol
  // violation (nested FrameBegin) poisons exactly the one query
  // reading the corrupted band. The other three keep delivering.
  DsmsOptions options;
  options.workers = 2;
  DsmsServer server(options);
  StreamCatalog catalog = MakeTestCatalog();
  GS_ASSERT_OK(server.RegisterStream(*catalog.Lookup("g.nir")));
  GS_ASSERT_OK(server.RegisterStream(*catalog.Lookup("g.vis")));

  struct Counter {
    std::atomic<uint64_t> frames{0};
  };
  Counter counters[4];
  QueryId ids[4];
  const char* queries[4] = {
      "region(g.nir, bbox(-125, 40, -121, 45))",
      "region(g.nir, bbox(-124, 41, -120, 44))",
      "region(g.nir, bbox(-123, 42, -119, 43))",
      "region(g.vis, bbox(-125, 40, -121, 45))",
  };
  for (int i = 0; i < 4; ++i) {
    Counter* c = &counters[i];
    auto id = server.RegisterQuery(
        queries[i],
        [c](int64_t, const Raster&, const std::vector<uint8_t>&) {
          ++c->frames;
        });
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids[i] = *id;
  }

  GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, 0));
  GS_ASSERT_OK(PushFrame(server.ingest("g.vis"), lattice, 0));
  GS_ASSERT_OK(server.Flush());
  for (int i = 0; i < 4; ++i) {
    auto health = server.QueryHealth(ids[i]);
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(*health, PipelineHealth::kRunning) << i;
  }

  // Corrupt the vis downlink: frame 1 begins, then frame 2 begins
  // without a FrameEnd in between. Ingest itself must stay OK — the
  // failure belongs to the query pipeline, not the source.
  GS_ASSERT_OK(server.ingest("g.vis")->Consume(BeginFor(lattice, 1)));
  GS_ASSERT_OK(server.ingest("g.vis")->Consume(BeginFor(lattice, 2)));
  GS_ASSERT_OK(server.Flush());

  auto vis_health = server.QueryHealth(ids[3]);
  ASSERT_TRUE(vis_health.ok());
  EXPECT_EQ(*vis_health, PipelineHealth::kQuarantined);
  EXPECT_EQ(server.QueryError(ids[3]).code(),
            StatusCode::kFailedPrecondition);

  // The three healthy queries ride on: two more frames each arrive in
  // full, and pushing to the corrupted stream still does not error.
  for (int64_t frame = 1; frame <= 2; ++frame) {
    GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, frame));
  }
  GS_ASSERT_OK(PushFrame(server.ingest("g.vis"), lattice, 3));
  GS_ASSERT_OK(server.Flush());
  for (int i = 0; i < 3; ++i) {
    auto health = server.QueryHealth(ids[i]);
    ASSERT_TRUE(health.ok());
    EXPECT_EQ(*health, PipelineHealth::kRunning) << i;
    EXPECT_EQ(counters[i].frames.load(), 3u) << i;
  }
  EXPECT_EQ(counters[3].frames.load(), 1u);  // only the clean frame 0

  // Post-quarantine enqueues were rejected and counted.
  ScheduledQueueStats totals;
  for (const auto& qs : server.SchedulerStats()) totals.MergeFrom(qs);
  EXPECT_EQ(totals.health, PipelineHealth::kQuarantined);
  EXPECT_GT(totals.rejected, 0u);

  // The quarantined query can still be torn down cleanly.
  GS_ASSERT_OK(server.UnregisterQuery(ids[3]));
  EXPECT_EQ(server.num_queries(), 3u);
  EXPECT_EQ(server.SchedulerStats().size(), 3u);
}

TEST(FaultInjectionE2eTest, TransientFaultRecoversWithinBackoffBudget) {
  // A transient (Unavailable) fault on frame 1's FrameBegin fails
  // twice; the supervisor resets the chain and redelivers. The full
  // three-frame stream still comes out, within the backoff budget.
  std::vector<InjectedFault> faults;
  faults.push_back({14, StatusCode::kUnavailable, "downlink glitch", 2});
  auto injector_op =
      std::make_unique<FaultInjectorOp>("inject", std::move(faults));
  FaultInjectorOp* injector = injector_op.get();
  StretchOptions stretch_opts;
  stretch_opts.in_lo = 0.0;
  stretch_opts.in_hi = 1.0;
  Pipeline pipeline;
  pipeline.Add(std::move(injector_op));
  pipeline.Add(std::make_unique<StretchTransformOp>("s", stretch_opts));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));

  QueryScheduler scheduler(SchedulerOptions{});
  const size_t id = scheduler.AddPipelineGroup("transient");
  EventSink* in = scheduler.AddPipelineInput(id, &pipeline);
  scheduler.SetPipelineReset(id, [&pipeline] { pipeline.Reset(); });
  GS_ASSERT_OK(scheduler.Start());

  const auto t0 = std::chrono::steady_clock::now();
  GridLattice lattice = LatLonLattice(16, 12);
  // 14 events per frame (begin + 12 rows + end): ordinal 14 is
  // exactly frame 1's FrameBegin, so the post-reset redelivery starts
  // a fresh frame and no buffered state is lost.
  for (int64_t frame = 0; frame < 3; ++frame) {
    GS_ASSERT_OK(PushFrame(in, lattice, frame));
  }
  GS_ASSERT_OK(in->Consume(StreamEvent::StreamEnd()));
  GS_ASSERT_OK(scheduler.WaitIdle());
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_EQ(scheduler.Health(id), PipelineHealth::kRunning);
  EXPECT_TRUE(testing_util::WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 3u);
  EXPECT_EQ(sink.TotalPoints(), 3u * 16u * 12u);
  EXPECT_EQ(injector->faults_injected(), 2u);
  // Backoff budget: 1ms + 2ms (+jitter) of backoff, generously
  // bounded — recovery must not stall the pipeline for seconds.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].restarts, 2u);
  EXPECT_EQ(stats[0].processed, stats[0].enqueued);
}

TEST(FaultInjectionE2eTest, DeadLetterCountMatchesInjectedCorruption) {
  // The generator corrupts three batches of band 0 after checksumming
  // them; the FaultInjectorOp's verifier dead-letters exactly those
  // three rows while band 1 sails through untouched.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 16 * 12;
  config.bands = {SpectralBand::kVisible, SpectralBand::kNearInfrared};
  config.name_prefix = "sat";
  StreamGenerator generator(config, ScanSchedule::GoesRoutine());
  GS_ASSERT_OK(generator.Init());
  CorruptionConfig corruption;
  corruption.target_band = 0;
  corruption.checksum_batches = true;
  corruption.corrupt_value_batches = {1, 4, 7};
  generator.SetCorruption(corruption);

  SchedulerOptions options;
  options.supervisor.poison_limit = 100;  // count poison, keep running
  QueryScheduler scheduler(options);
  FaultInjectorOp verifier0("verify0", {}, /*verify_checksums=*/true);
  FaultInjectorOp verifier1("verify1", {}, /*verify_checksums=*/true);
  CollectingSink sink0, sink1;
  verifier0.BindOutput(&sink0);
  verifier1.BindOutput(&sink1);
  const size_t p0 = scheduler.AddPipelineGroup("band0");
  const size_t p1 = scheduler.AddPipelineGroup("band1");
  std::vector<EventSink*> sinks = {
      scheduler.AddPipelineInput(p0, &verifier0),
      scheduler.AddPipelineInput(p1, &verifier1)};
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(generator.GenerateScans(0, 2, sinks));
  GS_ASSERT_OK(generator.Finish(sinks));
  GS_ASSERT_OK(scheduler.WaitIdle());
  GS_ASSERT_OK(scheduler.Stop());

  EXPECT_EQ(generator.corruption_stats().values_corrupted, 3u);
  EXPECT_GT(generator.corruption_stats().checksums_attached, 0u);
  EXPECT_EQ(verifier0.checksum_failures(), 3u);
  EXPECT_EQ(verifier1.checksum_failures(), 0u);
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].dead_letters, 3u);
  EXPECT_EQ(stats[0].health, PipelineHealth::kDegraded);
  EXPECT_EQ(stats[1].dead_letters, 0u);
  EXPECT_EQ(stats[1].health, PipelineHealth::kRunning);
  // Exactly the three corrupted rows are missing from band 0.
  auto num_batches = [](const CollectingSink& sink) {
    size_t n = 0;
    for (const auto& event : sink.events()) {
      if (event.kind == EventKind::kPointBatch) ++n;
    }
    return n;
  };
  EXPECT_EQ(num_batches(sink0) + 3, num_batches(sink1));
}

TEST(FaultInjectionE2eTest, ServerQueryChurnReturnsQueueCountToBaseline) {
  // Registering and unregistering 1000 queries against a live worker
  // pool must return the scheduler to its baseline queue count —
  // UnregisterQuery frees the pipeline, not just the plan.
  DsmsOptions options;
  options.workers = 2;
  DsmsServer server(options);
  StreamCatalog catalog = MakeTestCatalog();
  GS_ASSERT_OK(server.RegisterStream(*catalog.Lookup("g.nir")));
  GridLattice lattice = LatLonLattice(16, 12);
  ASSERT_EQ(server.SchedulerStats().size(), 0u);
  for (int i = 0; i < 1000; ++i) {
    auto id = server.RegisterQuery(
        "region(g.nir, bbox(-125, 40, -121, 45))",
        [](int64_t, const Raster&, const std::vector<uint8_t>&) {});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    if (i % 100 == 0) {
      GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, i));
    }
    GS_ASSERT_OK(server.UnregisterQuery(*id));
  }
  EXPECT_EQ(server.num_queries(), 0u);
  EXPECT_EQ(server.SchedulerStats().size(), 0u);

  // The pool is still serviceable after the churn.
  std::atomic<uint64_t> frames{0};
  auto id = server.RegisterQuery(
      "region(g.nir, bbox(-125, 40, -121, 45))",
      [&frames](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(PushFrame(server.ingest("g.nir"), lattice, 5000));
  GS_ASSERT_OK(server.Flush());
  EXPECT_EQ(frames.load(), 1u);
}

}  // namespace
}  // namespace geostreams
