#include "raster/png_encoder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "raster/checksum.h"
#include "raster/pnm_io.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(ChecksumTest, Crc32KnownVectors) {
  // Standard test vector: CRC-32 of "123456789" is 0xCBF43926.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
  // CRC-32 of the empty string is 0.
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
  // CRC-32 of "IEND" (the chunk every PNG ends with) is 0xAE426082.
  const uint8_t iend[] = {'I', 'E', 'N', 'D'};
  EXPECT_EQ(Crc32(iend, 4), 0xAE426082u);
}

TEST(ChecksumTest, Crc32Chaining) {
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  uint32_t crc = UpdateCrc32(0xFFFFFFFFu, digits, 4);
  crc = UpdateCrc32(crc, digits + 4, 5);
  EXPECT_EQ(crc ^ 0xFFFFFFFFu, 0xCBF43926u);
}

TEST(ChecksumTest, Adler32KnownVectors) {
  // Adler-32 of "Wikipedia" is 0x11E60398.
  const uint8_t wiki[] = {'W', 'i', 'k', 'i', 'p', 'e', 'd', 'i', 'a'};
  EXPECT_EQ(Adler32(1, wiki, sizeof(wiki)), 0x11E60398u);
  EXPECT_EQ(Adler32(1, nullptr, 0), 1u);
}

TEST(PngEncoderTest, EmitsValidStructure) {
  const uint8_t pixels[] = {0, 64, 128, 255};
  auto png = EncodePng(pixels, 2, 2, PngColor::kGray);
  ASSERT_TRUE(png.ok());
  const std::vector<uint8_t>& bytes = *png;
  ASSERT_GE(bytes.size(), 8u + 25u + 12u);
  // Signature.
  EXPECT_EQ(bytes[0], 0x89);
  EXPECT_EQ(bytes[1], 'P');
  EXPECT_EQ(bytes[2], 'N');
  EXPECT_EQ(bytes[3], 'G');
  // IHDR chunk follows: length 13, type IHDR.
  EXPECT_EQ(bytes[8 + 3], 13);
  EXPECT_EQ(std::string(bytes.begin() + 12, bytes.begin() + 16), "IHDR");
  // Width/height big-endian.
  EXPECT_EQ(bytes[16 + 3], 2);  // width = 2
  EXPECT_EQ(bytes[20 + 3], 2);  // height = 2
  EXPECT_EQ(bytes[24], 8);      // bit depth
  EXPECT_EQ(bytes[25], 0);      // gray
  // File ends with IEND and its fixed CRC.
  const size_t n = bytes.size();
  EXPECT_EQ(std::string(bytes.begin() + n - 8, bytes.begin() + n - 4),
            "IEND");
  EXPECT_EQ(bytes[n - 4], 0xAE);
  EXPECT_EQ(bytes[n - 3], 0x42);
  EXPECT_EQ(bytes[n - 2], 0x60);
  EXPECT_EQ(bytes[n - 1], 0x82);
}

TEST(PngEncoderTest, ChunkCrcsAreConsistent) {
  const uint8_t pixels[] = {1, 2, 3, 4, 5, 6};
  auto png = EncodePng(pixels, 2, 1, PngColor::kRgb);
  ASSERT_TRUE(png.ok());
  const std::vector<uint8_t>& b = *png;
  // Walk chunks, verifying each CRC.
  size_t pos = 8;
  int chunks = 0;
  while (pos + 12 <= b.size()) {
    const uint32_t len = (static_cast<uint32_t>(b[pos]) << 24) |
                         (static_cast<uint32_t>(b[pos + 1]) << 16) |
                         (static_cast<uint32_t>(b[pos + 2]) << 8) |
                         b[pos + 3];
    ASSERT_LE(pos + 12 + len, b.size());
    const uint32_t expected = Crc32(b.data() + pos + 4, len + 4);
    const size_t cp = pos + 8 + len;
    const uint32_t stored = (static_cast<uint32_t>(b[cp]) << 24) |
                            (static_cast<uint32_t>(b[cp + 1]) << 16) |
                            (static_cast<uint32_t>(b[cp + 2]) << 8) |
                            b[cp + 3];
    EXPECT_EQ(stored, expected) << "chunk " << chunks;
    pos = cp + 4;
    ++chunks;
  }
  EXPECT_EQ(chunks, 3);  // IHDR, IDAT, IEND
  EXPECT_EQ(pos, b.size());
}

TEST(PngEncoderTest, ZlibStreamChecksumIsValid) {
  // Decode our own stored-deflate stream and verify the Adler-32.
  const uint8_t pixels[] = {10, 20, 30, 40};
  auto png = EncodePng(pixels, 2, 2, PngColor::kGray);
  ASSERT_TRUE(png.ok());
  const std::vector<uint8_t>& b = *png;
  // IDAT starts after the 8-byte signature and 25-byte IHDR chunk.
  size_t pos = 8 + 25;
  const uint32_t idat_len = (static_cast<uint32_t>(b[pos]) << 24) |
                            (static_cast<uint32_t>(b[pos + 1]) << 16) |
                            (static_cast<uint32_t>(b[pos + 2]) << 8) |
                            b[pos + 3];
  ASSERT_EQ(std::string(b.begin() + pos + 4, b.begin() + pos + 8), "IDAT");
  const uint8_t* z = b.data() + pos + 8;
  // zlib header.
  EXPECT_EQ(z[0], 0x78);
  EXPECT_EQ((z[0] * 256 + z[1]) % 31, 0);  // FCHECK property
  // Stored block: BFINAL=1 BTYPE=00, LEN, ~LEN, payload.
  EXPECT_EQ(z[2], 1);
  const uint16_t len = static_cast<uint16_t>(z[3] | (z[4] << 8));
  const uint16_t nlen = static_cast<uint16_t>(z[5] | (z[6] << 8));
  EXPECT_EQ(static_cast<uint16_t>(~len), nlen);
  EXPECT_EQ(len, 2u * (2u + 1u));  // 2 rows of (filter byte + 2 pixels)
  const uint8_t* raw = z + 7;
  const uint32_t adler = Adler32(1, raw, len);
  const uint8_t* tail = z + 7 + len;
  const uint32_t stored_adler = (static_cast<uint32_t>(tail[0]) << 24) |
                                (static_cast<uint32_t>(tail[1]) << 16) |
                                (static_cast<uint32_t>(tail[2]) << 8) |
                                tail[3];
  EXPECT_EQ(stored_adler, adler);
  EXPECT_EQ(static_cast<size_t>(idat_len), 2u + 5u + len + 4u);
}

TEST(PngEncoderTest, RejectsBadInputs) {
  const uint8_t px[] = {0};
  EXPECT_FALSE(EncodePng(px, 0, 1, PngColor::kGray).ok());
  Raster two_band(2, 2, 2);
  EXPECT_FALSE(RasterToPng(two_band).ok());
  EXPECT_FALSE(RasterToPng(Raster()).ok());
}

TEST(PngEncoderTest, RasterScalingUsesRange) {
  Raster r(2, 1, 1);
  r.Set(0, 0, 0.0);
  r.Set(1, 0, 1.0);
  auto png = RasterToPng(r, 0.0, 1.0);
  ASSERT_TRUE(png.ok());
  // Payload bytes: filter 0, then 0 and 255.
  const std::vector<uint8_t>& b = *png;
  size_t pos = 8 + 25 + 8;  // into IDAT payload
  const uint8_t* z = b.data() + pos;
  const uint8_t* raw = z + 7;
  EXPECT_EQ(raw[0], 0);    // filter byte
  EXPECT_EQ(raw[1], 0);    // 0.0 -> 0
  EXPECT_EQ(raw[2], 255);  // 1.0 -> 255
}

TEST(PngEncoderTest, WriteFile) {
  Raster r(3, 3, 1, 0.5);
  const std::string path = TempPath("out.png");
  GS_ASSERT_OK(WriteRasterPng(r, path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  uint8_t sig[4] = {};
  ASSERT_EQ(std::fread(sig, 1, 4, f), 4u);
  std::fclose(f);
  EXPECT_EQ(sig[1], 'P');
  std::remove(path.c_str());
}

TEST(PnmIoTest, GrayRoundTrip) {
  Raster r(4, 2, 1);
  for (int64_t y = 0; y < 2; ++y) {
    for (int64_t x = 0; x < 4; ++x) {
      r.Set(x, y, static_cast<double>(x * 60 + y * 20));
    }
  }
  const std::string path = TempPath("gray.pgm");
  GS_ASSERT_OK(WriteRasterPnm(r, path, 0.0, 255.0));
  auto back = ReadRasterPnm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->width(), 4);
  EXPECT_EQ(back->height(), 2);
  EXPECT_EQ(back->bands(), 1);
  EXPECT_DOUBLE_EQ(back->At(3, 1), 200.0);
  std::remove(path.c_str());
}

TEST(PnmIoTest, RgbRoundTrip) {
  Raster r(2, 2, 3);
  r.Set(0, 0, 0, 255.0);
  r.Set(1, 1, 2, 128.0);
  const std::string path = TempPath("color.ppm");
  GS_ASSERT_OK(WriteRasterPnm(r, path, 0.0, 255.0));
  auto back = ReadRasterPnm(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->bands(), 3);
  EXPECT_DOUBLE_EQ(back->At(0, 0, 0), 255.0);
  EXPECT_DOUBLE_EQ(back->At(1, 1, 2), 128.0);
  EXPECT_DOUBLE_EQ(back->At(0, 1, 1), 0.0);
  std::remove(path.c_str());
}

TEST(PnmIoTest, ReadRejectsGarbage) {
  const std::string path = TempPath("garbage.pgm");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOT A PNM", f);
  std::fclose(f);
  EXPECT_FALSE(ReadRasterPnm(path).ok());
  EXPECT_FALSE(ReadRasterPnm(TempPath("missing.pgm")).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace geostreams
