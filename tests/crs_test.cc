#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"

#include "geo/crs.h"
#include "geo/crs_registry.h"
#include "geo/geographic_crs.h"
#include "geo/geostationary_crs.h"
#include "geo/lambert_conformal_crs.h"
#include "geo/mercator_crs.h"
#include "geo/transverse_mercator_crs.h"

namespace geostreams {
namespace {

TEST(GeographicCrsTest, Identity) {
  auto crs = GeographicCrs::Instance();
  double x = 0.0, y = 0.0;
  ASSERT_TRUE(crs->FromGeographic(-121.5, 38.6, &x, &y).ok());
  EXPECT_DOUBLE_EQ(x, -121.5);
  EXPECT_DOUBLE_EQ(y, 38.6);
  double lon = 0.0, lat = 0.0;
  ASSERT_TRUE(crs->ToGeographic(x, y, &lon, &lat).ok());
  EXPECT_DOUBLE_EQ(lon, -121.5);
  EXPECT_DOUBLE_EQ(lat, 38.6);
}

TEST(GeographicCrsTest, RejectsBadLatitude) {
  auto crs = GeographicCrs::Instance();
  double x, y;
  EXPECT_FALSE(crs->FromGeographic(0.0, 91.0, &x, &y).ok());
}

TEST(MercatorCrsTest, EquatorMapsToZero) {
  auto crs = MercatorCrs::Instance();
  double x = 0.0, y = 0.0;
  ASSERT_TRUE(crs->FromGeographic(0.0, 0.0, &x, &y).ok());
  EXPECT_NEAR(x, 0.0, 1e-6);
  EXPECT_NEAR(y, 0.0, 1e-6);
}

TEST(MercatorCrsTest, RejectsPolarLatitudes) {
  auto crs = MercatorCrs::Instance();
  double x, y;
  EXPECT_FALSE(crs->FromGeographic(0.0, 89.0, &x, &y).ok());
}

struct RoundTripCase {
  double lon;
  double lat;
};

class MercatorRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(MercatorRoundTrip, RoundTripsWithinTolerance) {
  auto crs = MercatorCrs::Instance();
  double x, y, lon, lat;
  ASSERT_TRUE(crs->FromGeographic(GetParam().lon, GetParam().lat, &x, &y).ok());
  ASSERT_TRUE(crs->ToGeographic(x, y, &lon, &lat).ok());
  EXPECT_NEAR(lon, GetParam().lon, 1e-9);
  EXPECT_NEAR(lat, GetParam().lat, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MercatorRoundTrip,
    ::testing::Values(RoundTripCase{0.0, 0.0}, RoundTripCase{-121.5, 38.6},
                      RoundTripCase{151.2, -33.9}, RoundTripCase{-75.0, 80.0},
                      RoundTripCase{179.9, -80.0}));

// --- UTM / Transverse Mercator ---------------------------------------------

TEST(UtmTest, KnownReferencePoint) {
  // Davis, CA: 38.5449N 121.7405W in UTM zone 10N. Reference values
  // E 609759.506, N 4267027.423 computed with an independent
  // 6th-order Krueger/Karney-series implementation; the Snyder series
  // used by the library must agree to centimetres.
  auto crs = TransverseMercatorCrs::Utm(10, true);
  double x = 0.0, y = 0.0;
  ASSERT_TRUE(crs->FromGeographic(-121.7405, 38.5449, &x, &y).ok());
  EXPECT_NEAR(x, 609759.506, 0.01);
  EXPECT_NEAR(y, 4267027.423, 0.01);
}

TEST(UtmTest, CentralMeridianEasting) {
  // On the central meridian the false easting is returned exactly.
  auto crs = TransverseMercatorCrs::Utm(10, true);  // CM = -123
  double x = 0.0, y = 0.0;
  ASSERT_TRUE(crs->FromGeographic(-123.0, 45.0, &x, &y).ok());
  EXPECT_NEAR(x, 500000.0, 1e-3);
}

TEST(UtmTest, SouthernHemisphereFalseNorthing) {
  auto north = TransverseMercatorCrs::Utm(56, true);
  auto south = TransverseMercatorCrs::Utm(56, false);
  double xn, yn, xs, ys;
  ASSERT_TRUE(north->FromGeographic(151.2, -33.9, &xn, &yn).ok());
  ASSERT_TRUE(south->FromGeographic(151.2, -33.9, &xs, &ys).ok());
  EXPECT_NEAR(ys - yn, 10000000.0, 1e-6);
  EXPECT_DOUBLE_EQ(xs, xn);
}

TEST(UtmTest, RejectsFarOutOfZone) {
  auto crs = TransverseMercatorCrs::Utm(10, true);
  double x, y;
  EXPECT_FALSE(crs->FromGeographic(60.0, 40.0, &x, &y).ok());
}

struct UtmCase {
  int zone;
  bool north;
  double lon;
  double lat;
};

class UtmRoundTrip : public ::testing::TestWithParam<UtmCase> {};

TEST_P(UtmRoundTrip, SubMillimetreRoundTrip) {
  const UtmCase& c = GetParam();
  auto crs = TransverseMercatorCrs::Utm(c.zone, c.north);
  double x, y, lon, lat;
  ASSERT_TRUE(crs->FromGeographic(c.lon, c.lat, &x, &y).ok());
  ASSERT_TRUE(crs->ToGeographic(x, y, &lon, &lat).ok());
  // 1e-8 degrees is about 1 mm on the ground.
  EXPECT_NEAR(lon, c.lon, 1e-8);
  EXPECT_NEAR(lat, c.lat, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UtmRoundTrip,
    ::testing::Values(UtmCase{10, true, -121.74, 38.54},
                      UtmCase{10, true, -123.0, 0.1},
                      UtmCase{10, true, -120.1, 60.0},
                      UtmCase{33, true, 15.0, 52.5},
                      UtmCase{33, true, 12.49, 41.9},
                      UtmCase{56, false, 151.2, -33.9},
                      UtmCase{19, false, -70.6, -33.4},
                      UtmCase{1, true, -177.0, 10.0},
                      UtmCase{60, true, 177.0, -10.0},
                      UtmCase{31, true, 3.0, 75.0}));

// --- Geostationary ----------------------------------------------------------

TEST(GeostationaryTest, SubSatellitePointIsOrigin) {
  GeostationaryCrs crs(-75.0);
  double x = 1.0, y = 1.0;
  ASSERT_TRUE(crs.FromGeographic(-75.0, 0.0, &x, &y).ok());
  EXPECT_NEAR(x, 0.0, 1e-12);
  EXPECT_NEAR(y, 0.0, 1e-12);
}

TEST(GeostationaryTest, FarSideNotVisible) {
  GeostationaryCrs crs(-75.0);
  double x, y;
  EXPECT_FALSE(crs.FromGeographic(105.0, 0.0, &x, &y).ok());  // antipode
  EXPECT_FALSE(crs.FromGeographic(-75.0, 89.0, &x, &y).ok());  // pole-ish
}

TEST(GeostationaryTest, OffDiskScanAngleRejected) {
  GeostationaryCrs crs(-75.0);
  double lon, lat;
  EXPECT_FALSE(crs.ToGeographic(0.2, 0.0, &lon, &lat).ok());
  EXPECT_FALSE(crs.ToGeographic(0.0, -0.2, &lon, &lat).ok());
}

TEST(GeostationaryTest, ScanAngleMagnitudeIsPlausible) {
  // The Earth limb is ~8.7 degrees from geostationary orbit.
  GeostationaryCrs crs(-75.0);
  double x, y;
  ASSERT_TRUE(crs.FromGeographic(-75.0, 60.0, &x, &y).ok());
  EXPECT_GT(y, 0.0);  // north is positive elevation
  EXPECT_LT(std::fabs(y), GeostationaryCrs::kFullDiskHalfAngleRad);
}

class GeosRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(GeosRoundTrip, RoundTripsThroughScanAngles) {
  GeostationaryCrs crs(-75.0);
  double x, y, lon, lat;
  ASSERT_TRUE(crs.FromGeographic(GetParam().lon, GetParam().lat, &x, &y).ok());
  ASSERT_TRUE(crs.ToGeographic(x, y, &lon, &lat).ok());
  EXPECT_NEAR(lon, GetParam().lon, 1e-6);
  EXPECT_NEAR(lat, GetParam().lat, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeosRoundTrip,
    ::testing::Values(RoundTripCase{-75.0, 0.0}, RoundTripCase{-100.0, 40.0},
                      RoundTripCase{-50.0, -30.0}, RoundTripCase{-120.0, 35.0},
                      RoundTripCase{-75.0, 65.0}, RoundTripCase{-30.0, 10.0}));

// --- Registry and hub transforms --------------------------------------------

TEST(CrsRegistryTest, ResolvesKnownNames) {
  EXPECT_TRUE(ResolveCrs("latlon").ok());
  EXPECT_TRUE(ResolveCrs("mercator").ok());
  EXPECT_TRUE(ResolveCrs("utm:10n").ok());
  EXPECT_TRUE(ResolveCrs("UTM:33S").ok());
  EXPECT_TRUE(ResolveCrs("geos:-75").ok());
  EXPECT_TRUE(ResolveCrs(" latlon ").ok());
}

TEST(CrsRegistryTest, CachesInstances) {
  auto a = ResolveCrs("utm:10n");
  auto b = ResolveCrs("utm:10n");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->get(), b->get());
}

TEST(CrsRegistryTest, RejectsBadNames) {
  EXPECT_FALSE(ResolveCrs("").ok());
  EXPECT_FALSE(ResolveCrs("utm:0n").ok());
  EXPECT_FALSE(ResolveCrs("utm:61n").ok());
  EXPECT_FALSE(ResolveCrs("utm:10x").ok());
  EXPECT_FALSE(ResolveCrs("geos:200").ok());
  EXPECT_FALSE(ResolveCrs("wgs84").ok());
}

TEST(TransformPointTest, SameCrsIsIdentity) {
  auto crs = GeographicCrs::Instance();
  double x = 0.0, y = 0.0;
  ASSERT_TRUE(TransformPoint(*crs, *crs, -121.0, 38.0, &x, &y).ok());
  EXPECT_DOUBLE_EQ(x, -121.0);
  EXPECT_DOUBLE_EQ(y, 38.0);
}

TEST(TransformPointTest, GeosToUtmAndBack) {
  GeostationaryCrs geos(-75.0);
  auto utm = TransverseMercatorCrs::Utm(10, true);
  // A California point visible from GOES-East.
  double sx, sy;
  ASSERT_TRUE(geos.FromGeographic(-121.5, 38.5, &sx, &sy).ok());
  double ux, uy;
  ASSERT_TRUE(TransformPoint(geos, *utm, sx, sy, &ux, &uy).ok());
  double bx, by;
  ASSERT_TRUE(TransformPoint(*utm, geos, ux, uy, &bx, &by).ok());
  EXPECT_NEAR(bx, sx, 1e-9);
  EXPECT_NEAR(by, sy, 1e-9);
}

TEST(TransformBoundingBoxTest, LatLonToMercatorCoversCorners) {
  auto geo = GeographicCrs::Instance();
  auto merc = MercatorCrs::Instance();
  BoundingBox box(-10.0, -5.0, 10.0, 5.0);
  BoundingBox out = TransformBoundingBox(box, *geo, *merc);
  ASSERT_FALSE(out.empty());
  double x, y;
  ASSERT_TRUE(merc->FromGeographic(-10.0, -5.0, &x, &y).ok());
  EXPECT_TRUE(out.Contains(x, y));
  ASSERT_TRUE(merc->FromGeographic(10.0, 5.0, &x, &y).ok());
  EXPECT_TRUE(out.Contains(x, y));
}

TEST(TransformBoundingBoxTest, OutOfDomainGivesEmpty) {
  auto geo = GeographicCrs::Instance();
  GeostationaryCrs geos(-75.0);
  // A box centred on the antipode of the satellite: never visible.
  BoundingBox box(100.0, -10.0, 110.0, 10.0);
  BoundingBox out = TransformBoundingBox(box, *geo, geos);
  EXPECT_TRUE(out.empty());
}

TEST(TransformBoundingBoxTest, EmptyInEmptyOut) {
  auto geo = GeographicCrs::Instance();
  auto merc = MercatorCrs::Instance();
  EXPECT_TRUE(TransformBoundingBox(BoundingBox(), *geo, *merc).empty());
}


// --- Lambert conformal conic -------------------------------------------------

TEST(LambertConformalTest, KnownReferencePoints) {
  // NWS-style CONUS cone (33N/45N, origin 39N 96W, spherical R =
  // 6378137 m). References computed with an independent
  // implementation of Snyder eqs. 15-1..15-4.
  auto crs = LambertConformalCrs::Conus();
  double x, y;
  ASSERT_TRUE(crs->FromGeographic(-104.99, 39.74, &x, &y).ok());
  EXPECT_NEAR(x, -764122.899, 0.01);
  EXPECT_NEAR(y, 119752.722, 0.01);
  ASSERT_TRUE(crs->FromGeographic(-80.19, 25.76, &x, &y).ok());
  EXPECT_NEAR(x, 1609352.268, 0.01);
  EXPECT_NEAR(y, -1338340.559, 0.01);
}

TEST(LambertConformalTest, OriginMapsToZero) {
  auto crs = LambertConformalCrs::Conus();
  double x, y;
  ASSERT_TRUE(crs->FromGeographic(-96.0, 39.0, &x, &y).ok());
  EXPECT_NEAR(x, 0.0, 1e-6);
  EXPECT_NEAR(y, 0.0, 1e-6);
}

TEST(LambertConformalTest, ConeConstantBetweenParallelSines) {
  LambertConformalCrs crs(33.0, 45.0, 39.0, -96.0);
  EXPECT_GT(crs.cone_constant(), std::sin(DegreesToRadians(33.0)));
  EXPECT_LT(crs.cone_constant(), std::sin(DegreesToRadians(45.0)));
  // Tangent cone: n = sin(lat1).
  LambertConformalCrs tangent(40.0, 40.0, 40.0, -96.0);
  EXPECT_NEAR(tangent.cone_constant(), std::sin(DegreesToRadians(40.0)),
              1e-12);
}

class LccRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(LccRoundTrip, RoundTripsExactly) {
  auto crs = LambertConformalCrs::Conus();
  double x, y, lon, lat;
  ASSERT_TRUE(crs->FromGeographic(GetParam().lon, GetParam().lat, &x, &y).ok());
  ASSERT_TRUE(crs->ToGeographic(x, y, &lon, &lat).ok());
  EXPECT_NEAR(lon, GetParam().lon, 1e-9);
  EXPECT_NEAR(lat, GetParam().lat, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LccRoundTrip,
    ::testing::Values(RoundTripCase{-96.0, 39.0}, RoundTripCase{-125.0, 49.0},
                      RoundTripCase{-66.0, 24.0}, RoundTripCase{-104.99, 39.74},
                      RoundTripCase{-80.19, 25.76},
                      RoundTripCase{-96.0, 75.0}));

TEST(LambertConformalTest, SouthernCone) {
  // Southern-hemisphere cone (negative cone constant) round-trips.
  LambertConformalCrs crs(-20.0, -40.0, -30.0, -60.0);
  EXPECT_LT(crs.cone_constant(), 0.0);
  double x, y, lon, lat;
  ASSERT_TRUE(crs.FromGeographic(-65.0, -33.5, &x, &y).ok());
  ASSERT_TRUE(crs.ToGeographic(x, y, &lon, &lat).ok());
  EXPECT_NEAR(lon, -65.0, 1e-9);
  EXPECT_NEAR(lat, -33.5, 1e-9);
}

TEST(LambertConformalTest, DomainLimits) {
  auto crs = LambertConformalCrs::Conus();
  double x, y;
  EXPECT_FALSE(crs->FromGeographic(-96.0, 89.9, &x, &y).ok());
  EXPECT_FALSE(crs->FromGeographic(-96.0, -89.9, &x, &y).ok());
}

TEST(CrsRegistryTest, LambertNames) {
  EXPECT_TRUE(ResolveCrs("lcc").ok());
  EXPECT_TRUE(ResolveCrs("lcc:conus").ok());
  auto custom = ResolveCrs("lcc:30:50:40:-100");
  ASSERT_TRUE(custom.ok());
  EXPECT_EQ((*custom)->kind(), CrsKind::kLambertConformal);
  EXPECT_FALSE(ResolveCrs("lcc:30:50:40").ok());
  EXPECT_FALSE(ResolveCrs("lcc:30:-30:0:0").ok());   // antisymmetric
  EXPECT_FALSE(ResolveCrs("lcc:30:x:40:-100").ok());
}

}  // namespace
}  // namespace geostreams
