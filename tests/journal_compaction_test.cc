// Journal segment-compaction tests: when retention retires a closed
// segment that still holds live (journaled-but-unacked) records, the
// live records are rewritten forward into a fresh segment instead of
// dying with the file. Covers the never-drop-unacked guarantee, the
// retain-floor split inside one segment, reopen fidelity of compacted
// records, kill-safety of the tmp+rename staging (a crash at any byte
// of the rewrite loses nothing and duplicates nothing after recovery
// dedup), and stale compact.tmp cleanup.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "net/wire_protocol.h"
#include "storage/faulty_file.h"
#include "storage/journal.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gscompact-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Ingest message whose payload is recoverable by seq: the batch
/// timestamps equal the sequence number.
IngestMessage Msg(const std::string& source, uint64_t seq) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = static_cast<int64_t>(seq);
  batch->band_count = 1;
  for (size_t i = 0; i < 6; ++i) {
    batch->Append1(static_cast<int32_t>(i), 0, static_cast<int64_t>(seq),
                   static_cast<double>(seq) + 0.25 * static_cast<double>(i));
  }
  batch->checksum = batch->ComputeChecksum();
  IngestMessage message;
  message.source = source;
  message.seq = seq;
  message.event = StreamEvent::Batch(std::move(batch));
  return message;
}

uint64_t RecordSize(const std::string& source) {
  return EncodeIngestMessage(Msg(source, 1)).size();
}

/// Replays `source` into a seq -> first-timestamp map, asserting
/// exactly-once per sequence.
std::map<uint64_t, int64_t> ReplayIds(IngestJournal* journal,
                                      const std::string& source) {
  std::map<uint64_t, int64_t> ids;
  Status st = journal->Replay(source, [&ids](const IngestMessage& m) {
    const int64_t stamp =
        m.event.batch && !m.event.batch->timestamps.empty()
            ? m.event.batch->timestamps[0]
            : -1;
    EXPECT_EQ(ids.count(m.seq), 0u) << "seq replayed twice: " << m.seq;
    ids[m.seq] = stamp;
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return ids;
}

std::vector<std::string> SegmentFiles(const std::string& source_dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(source_dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) == 0) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// With the retain floor never advanced (no record was ever acked to a
// producer AND delivered), byte-pressure retention must not drop a
// single record — fully-live segments are kept as-is even when the
// budget says the volume is over.
TEST(JournalCompactionTest, RetentionNeverDropsUnackedRecords) {
  const std::string dir = FreshDir("unacked");
  const std::string source = "cmp.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = 1;    // rotate on every append
  options.retention_max_bytes = 1;  // maximal pressure
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK(sj.status());
    for (uint64_t seq = 1; seq <= 5; ++seq) {
      GS_ASSERT_OK((*sj)->Append(Msg(source, seq)));
    }
    EXPECT_EQ((*sj)->stats().segments_retired, 0u);
    EXPECT_EQ((*sj)->stats().retain_floor, 1u);
  }
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK(reopened.status());
  const std::map<uint64_t, int64_t> ids = ReplayIds(reopened->get(), source);
  ASSERT_EQ(ids.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    ASSERT_EQ(ids.count(seq), 1u) << "unacked seq " << seq << " lost";
    EXPECT_EQ(ids.at(seq), static_cast<int64_t>(seq));
  }
}

// The floor lands mid-segment: the settled half of the segment dies
// with the retirement, the live half is rewritten forward.
TEST(JournalCompactionTest, RetainFloorSplitsSettledFromLive) {
  const std::string dir = FreshDir("floor");
  const std::string source = "cmp.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = 2 * RecordSize(source);  // 2 records/segment
  options.retention_max_bytes = 1;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK(sj.status());
    // Segments: [1,2] [3,4] [5,6] — then the floor settles 1..3,
    // cutting segment [3,4] in half.
    for (uint64_t seq = 1; seq <= 6; ++seq) {
      GS_ASSERT_OK((*sj)->Append(Msg(source, seq)));
    }
    (*sj)->SetRetainFloor(4);
    // The next rotation runs retention with the floor in force.
    GS_ASSERT_OK((*sj)->Append(Msg(source, 7)));
    const SourceJournalStats stats = (*sj)->stats();
    EXPECT_GT(stats.segments_compacted, 0u) << "no rewrite happened";
    EXPECT_GT(stats.records_compacted, 0u);
    EXPECT_GT(stats.compacted_bytes, 0u);
    EXPECT_GT(stats.reclaimed_bytes, 0u);
    EXPECT_EQ(stats.retain_floor, 4u);
  }
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK(reopened.status());
  const std::map<uint64_t, int64_t> ids = ReplayIds(reopened->get(), source);
  // Exactly the live set survives: 4 was carried out of [3,4] by the
  // rewrite, 5..7 were still in live segments.
  for (uint64_t seq = 4; seq <= 7; ++seq) {
    ASSERT_EQ(ids.count(seq), 1u) << "live seq " << seq << " lost";
    EXPECT_EQ(ids.at(seq), static_cast<int64_t>(seq));
  }
  EXPECT_EQ(ids.count(1), 0u);
  EXPECT_EQ(ids.count(2), 0u);
  EXPECT_EQ(ids.count(3), 0u) << "settled record resurfaced";
  EXPECT_EQ((*reopened)->recovery().sources.at(source).next_seq, 8u);
}

// A crash at every byte offset of the whole run — including the
// compaction rewrite's staging writes: whatever the torn tmp file or
// half-finished rename left behind, reopening on a healthy disk must
// replay every live record exactly once.
TEST(JournalCompactionTest, CompactionRewriteIsKillSafeAtEveryByte) {
  const std::string source = "cmp.src";
  const uint64_t record_size = RecordSize(source);

  // One deterministic scenario, replayed under every kill point:
  // 2-record segments, 7 appends, floor -> 4 after seq 4. The seq-5
  // rotation deletes the fully-settled [1,2]; the seq-7 rotation
  // finds [3,4] oldest with the floor mid-segment and compacts it.
  auto run = [&](IngestJournal* journal, SourceJournal* sj,
                 uint64_t* appended_upto) {
    (void)journal;
    for (uint64_t seq = 1; seq <= 7; ++seq) {
      // An append refused by the dead disk is a NACK: the producer
      // still holds the record, so the journal does not owe it.
      if (sj->Append(Msg(source, seq)).ok()) *appended_upto = seq;
      // The floor models acks, and only a journaled record can have
      // been acked — advance it only when seq 4 really landed.
      if (seq == 4 && *appended_upto == 4) sj->SetRetainFloor(4);
    }
  };

  // Measure a healthy run so the sweep covers every byte written,
  // compaction staging included.
  uint64_t healthy_bytes = 0;
  {
    const std::string dir = FreshDir("measure");
    FaultyFileInjector probe{FaultyFileOptions{}};
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kOff;
    options.segment_max_bytes = 2 * record_size;
    options.retention_max_bytes = 1;
    options.file_factory = probe.Factory();
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK(sj.status());
    uint64_t upto = 0;
    run(journal->get(), *sj, &upto);
    ASSERT_EQ(upto, 7u);
    ASSERT_GT((*sj)->stats().segments_compacted, 0u)
        << "scenario does not exercise compaction";
    healthy_bytes = probe.stats().bytes_written;
  }
  ASSERT_GT(healthy_bytes, 0u);

  for (uint64_t kill_at = 1; kill_at <= healthy_bytes; kill_at += 7) {
    const std::string dir = FreshDir("kill" + std::to_string(kill_at));
    FaultyFileOptions fopts;
    fopts.fail_at_byte = kill_at;
    FaultyFileInjector injector(fopts);
    JournalOptions options;
    options.dir = dir;
    options.fsync = FsyncPolicy::kOff;
    options.segment_max_bytes = 2 * record_size;
    options.retention_max_bytes = 1;
    options.file_factory = injector.Factory();
    uint64_t appended_upto = 0;
    {
      auto journal = IngestJournal::Open(options);
      GS_ASSERT_OK(journal.status());
      auto sj = (*journal)->SourceFor(source);
      GS_ASSERT_OK(sj.status());
      run(journal->get(), *sj, &appended_upto);
    }
    // "Restart" on a healthy disk.
    JournalOptions clean = options;
    clean.file_factory = {};
    auto reopened = IngestJournal::Open(clean);
    GS_ASSERT_OK(reopened.status());
    const std::map<uint64_t, int64_t> ids =
        ReplayIds(reopened->get(), source);
    // Every live record the journal accepted must replay exactly once
    // (records 1..3 below the floor are settled — allowed to be gone,
    // required to be bit-faithful if present).
    const uint64_t floor = appended_upto >= 4 ? 4 : 1;
    for (uint64_t seq = floor; seq <= appended_upto; ++seq) {
      ASSERT_EQ(ids.count(seq), 1u)
          << "kill@" << kill_at << ": live seq " << seq << " lost ("
          << ids.size() << " replayed)";
    }
    for (const auto& [seq, stamp] : ids) {
      EXPECT_EQ(stamp, static_cast<int64_t>(seq))
          << "kill@" << kill_at << ": payload corrupted at seq " << seq;
    }
  }
}

// ENOSPC mid-record, then the disk heals WITHIN the same incarnation:
// the torn prefix the failed append persisted must be truncated away
// before the next append, or the healed journal buries garbage
// mid-file and recovery quarantines every acked record past the tear.
TEST(JournalCompactionTest, TornEnospcPrefixIsRepairedWhenDiskHealsInPlace) {
  const std::string dir = FreshDir("enospc");
  const std::string source = "cmp.src";
  const uint64_t record_size = RecordSize(source);

  FaultyFileOptions fopts;
  // Record 1 fits; record 2 tears halfway through and fails.
  fopts.space_quota_bytes = record_size + record_size / 2;
  FaultyFileInjector injector(fopts);

  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kPerRecord;
  options.file_factory = injector.Factory();
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK(sj.status());
    GS_ASSERT_OK((*sj)->Append(Msg(source, 1)));
    const Status full = (*sj)->Append(Msg(source, 2));
    ASSERT_EQ(full.code(), StatusCode::kResourceExhausted)
        << full.ToString();
    EXPECT_GT(injector.stats().enospc_failures, 0u);

    // Space frees up; the producer retries 2 and streams on — all in
    // the same journal incarnation, no restart in between.
    injector.SetSpaceQuota(0);
    GS_ASSERT_OK((*sj)->Append(Msg(source, 2)));
    GS_ASSERT_OK((*sj)->Append(Msg(source, 3)));

    // Live replay sees exactly 1..3 (the torn prefix is gone).
    const std::map<uint64_t, int64_t> live = ReplayIds(journal->get(), source);
    ASSERT_EQ(live.size(), 3u);
  }

  // A later restart recovers cleanly: nothing quarantined, nothing
  // torn, every acked record replayed bit-faithfully.
  JournalOptions clean = options;
  clean.file_factory = {};
  auto reopened = IngestJournal::Open(clean);
  GS_ASSERT_OK(reopened.status());
  EXPECT_EQ((*reopened)->recovery().corrupt_regions, 0u);
  EXPECT_EQ((*reopened)->recovery().torn_tails, 0u);
  const std::map<uint64_t, int64_t> ids = ReplayIds(reopened->get(), source);
  ASSERT_EQ(ids.size(), 3u);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_EQ(ids.count(seq), 1u) << "acked seq " << seq << " lost";
    EXPECT_EQ(ids.at(seq), static_cast<int64_t>(seq));
  }
}

TEST(JournalCompactionTest, StaleCompactTmpIsCleanedUp) {
  const std::string dir = FreshDir("tmp");
  const std::string source = "cmp.src";
  JournalOptions options;
  options.dir = dir;
  options.fsync = FsyncPolicy::kOff;
  options.segment_max_bytes = 1;
  options.retention_max_bytes = 1;
  {
    auto journal = IngestJournal::Open(options);
    GS_ASSERT_OK(journal.status());
    auto sj = (*journal)->SourceFor(source);
    GS_ASSERT_OK(sj.status());
    GS_ASSERT_OK((*sj)->Append(Msg(source, 1)));
  }
  // A crash between staging and rename leaves compact.tmp behind.
  const std::vector<std::string> segs = SegmentFiles(dir + "/" + source);
  ASSERT_FALSE(segs.empty());
  const std::string source_dir = fs::path(segs[0]).parent_path().string();
  {
    std::ofstream tmp(source_dir + "/compact.tmp", std::ios::binary);
    tmp << "half-finished rewrite";
  }
  ASSERT_TRUE(fs::exists(source_dir + "/compact.tmp"));

  // Reopen and append until a retention pass runs: the stale tmp is
  // swept, recovery and replay are unaffected.
  auto reopened = IngestJournal::Open(options);
  GS_ASSERT_OK(reopened.status());
  auto sj = (*reopened)->SourceFor(source);
  GS_ASSERT_OK(sj.status());
  GS_ASSERT_OK((*sj)->Append(Msg(source, 2)));
  GS_ASSERT_OK((*sj)->Append(Msg(source, 3)));
  EXPECT_FALSE(fs::exists(source_dir + "/compact.tmp"));
  const std::map<uint64_t, int64_t> ids = ReplayIds(reopened->get(), source);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    ASSERT_EQ(ids.count(seq), 1u) << "seq " << seq;
  }
}

}  // namespace
}  // namespace geostreams
