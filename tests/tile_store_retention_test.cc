// TileStore retention + garbage-collection tests: pruning by frame
// count / byte budget / age (pinned clock), whole-segment deletion,
// partially-dead segment rewrites (live frame runs re-based into a
// fresh page and still bit-exact), the retention horizon for catch-up
// truncation reporting, reopen recovery after GC, governor budget
// coupling with exact on-disk usage accounting, and degraded-mode
// PutFrame shedding with self-heal.

#include "store/tile_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "storage/faulty_file.h"
#include "storage/governor.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;
using testing_util::LatLonLattice;
using testing_util::TestValue;

std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsret-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

Raster FullFrame(const GridLattice& lattice, int64_t frame_id) {
  Raster raster(lattice.width(), lattice.height(), 1);
  raster.set_lattice(lattice);
  for (int64_t row = 0; row < lattice.height(); ++row) {
    for (int64_t col = 0; col < lattice.width(); ++col) {
      raster.Set(col, row, TestValue(frame_id, col, row));
    }
  }
  return raster;
}

Status PutFullFrame(TileStore* store, const std::string& source,
                    const GridLattice& lattice, int64_t frame_id) {
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  const Raster raster = FullFrame(lattice, frame_id);
  const std::vector<uint8_t> filled(
      static_cast<size_t>(lattice.num_cells()), 1);
  return store->PutFrame(source, info, raster, filled);
}

/// Sum of page-segment bytes under <dir>/<source sanitized dir>.
uint64_t PageBytesOnDisk(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("page-", 0) == 0) total += entry.file_size();
  }
  return total;
}

size_t PageFileCount(const std::string& dir) {
  size_t n = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().filename().string().rfind("page-", 0) == 0) ++n;
  }
  return n;
}

/// Scans one frame and checks every cell is bit-exact for `frame_id`.
void ExpectFrameIntact(TileStore* store, const std::string& source,
                       const GridLattice& lattice, int64_t frame_id) {
  CollectingSink sink;
  StoreScan scan;
  scan.min_frame_id = frame_id;
  scan.max_frame_id = frame_id;
  Status st = store->Scan(source, scan, &sink);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_TRUE(testing_util::WellFormedFrames(sink.events()));
  ASSERT_EQ(sink.NumFrames(), 1u) << "frame " << frame_id << " missing";
  uint64_t points = 0;
  for (const StreamEvent& e : sink.events()) {
    if (e.kind != EventKind::kPointBatch) continue;
    for (size_t i = 0; i < e.batch->size(); ++i) {
      EXPECT_EQ(e.batch->ValueAt(i, 0),
                TestValue(frame_id, e.batch->cols[i], e.batch->rows[i]))
          << "frame " << frame_id << " cell (" << e.batch->cols[i] << ","
          << e.batch->rows[i] << ")";
      ++points;
    }
  }
  EXPECT_EQ(points, static_cast<uint64_t>(lattice.num_cells()));
}

TEST(TileStoreRetentionTest, PrunesByFrameCountAndDeletesDeadSegments) {
  TileStoreOptions options;
  options.dir = FreshDir("count");
  options.tile_size = 16;
  options.segment_max_bytes = 1;  // one frame per segment
  options.retention_max_frames = 3;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  const GridLattice lattice = LatLonLattice(24, 16);
  for (int64_t f = 1; f <= 10; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  ASSERT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX).size(), 10u);
  const uint64_t bytes_before = PageBytesOnDisk(options.dir);

  GS_ASSERT_OK((*store)->RunRetentionNow());

  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{8, 9, 10}));
  EXPECT_EQ((*store)->Watermark("src"), 10);

  const StoreHorizon horizon = (*store)->Horizon("src");
  EXPECT_EQ(horizon.oldest_frame_id, 8);
  EXPECT_EQ(horizon.pruned_upto, 7);
  EXPECT_EQ(horizon.frames_pruned, 7u);

  const TileStoreStats stats = (*store)->TotalStats();
  EXPECT_EQ(stats.frames_pruned, 7u);
  EXPECT_EQ(stats.segments_deleted, 7u);  // frames 1..7 owned their segment
  EXPECT_GT(stats.bytes_reclaimed, 0u);
  EXPECT_LT(PageBytesOnDisk(options.dir), bytes_before);

  // What survived reads back bit-exact.
  for (int64_t f = 8; f <= 10; ++f) {
    ExpectFrameIntact(store->get(), "src", lattice, f);
  }
  // A pruned frame is simply absent.
  CollectingSink sink;
  StoreScan one;
  one.min_frame_id = 3;
  one.max_frame_id = 3;
  EXPECT_EQ((*store)->ScanFrame("src", 3, one, &sink).code(),
            StatusCode::kNotFound);
}

TEST(TileStoreRetentionTest, PrunesByAgeWithPinnedClock) {
  uint64_t now = 1000;
  TileStoreOptions options;
  options.dir = FreshDir("age");
  options.tile_size = 16;
  options.segment_max_bytes = 1;
  options.retention_max_age_ms = 5000;
  options.retention_min_frames = 2;
  options.now_ms = [&now] { return now; };
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  const GridLattice lattice = LatLonLattice(20, 12);
  for (int64_t f = 1; f <= 5; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  // Nothing is old yet: retention is a no-op.
  GS_ASSERT_OK((*store)->RunRetentionNow());
  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX).size(), 5u);

  // Everything ages past the cap — but the newest retention_min_frames
  // are pinned (the catch-up seam needs the watermark frame).
  now += 6000;
  GS_ASSERT_OK((*store)->RunRetentionNow());
  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{4, 5}));
  EXPECT_EQ((*store)->TotalStats().frames_pruned, 3u);
  ExpectFrameIntact(store->get(), "src", lattice, 5);
}

TEST(TileStoreRetentionTest, RewriteCompactsPartiallyDeadSegment) {
  // Measure one frame's on-disk run, then size segments to hold
  // exactly four frames each.
  const GridLattice lattice = LatLonLattice(24, 16);
  uint64_t run_bytes = 0;
  {
    TileStoreOptions probe;
    probe.dir = FreshDir("probe");
    probe.tile_size = 16;
    auto store = TileStore::Open(probe);
    GS_ASSERT_OK(store.status());
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 1));
    run_bytes = PageBytesOnDisk(probe.dir);
  }
  ASSERT_GT(run_bytes, 0u);

  TileStoreOptions options;
  options.dir = FreshDir("rewrite");
  options.tile_size = 16;
  options.segment_max_bytes = 4 * run_bytes;  // 4 frames per segment
  options.retention_max_frames = 6;
  options.gc_rewrite_dead_fraction = 0.5;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  // Segments: [1..4] [5..8] [9 active]. Pruning to 6 frames kills
  // 1..3 — segment one is 3/4 dead and must be rewritten around
  // frame 4.
  for (int64_t f = 1; f <= 9; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  GS_ASSERT_OK((*store)->RunRetentionNow());

  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{4, 5, 6, 7, 8, 9}));
  const TileStoreStats stats = (*store)->TotalStats();
  EXPECT_EQ(stats.frames_pruned, 3u);
  EXPECT_EQ(stats.segments_rewritten, 1u);
  EXPECT_GT(stats.bytes_reclaimed, 0u);

  // Frame 4 now lives at new offsets in a fresh page; every survivor
  // is still bit-exact.
  for (int64_t f = 4; f <= 9; ++f) {
    ExpectFrameIntact(store->get(), "src", lattice, f);
  }

  // Reopen: recovery sees the rewritten page as just another segment.
  store->reset();
  auto reopened = TileStore::Open(options);
  GS_ASSERT_OK(reopened.status());
  EXPECT_EQ((*reopened)->recovery().frames_recovered, 6u);
  EXPECT_EQ((*reopened)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{4, 5, 6, 7, 8, 9}));
  for (int64_t f = 4; f <= 9; ++f) {
    ExpectFrameIntact(reopened->get(), "src", lattice, f);
  }
}

TEST(TileStoreRetentionTest, GovernorBudgetDrivesPruningAndUsageIsExact) {
  StorageGovernor governor({});

  TileStoreOptions options;
  options.dir = FreshDir("gov");
  options.tile_size = 16;
  options.segment_max_bytes = 1;
  options.governor = &governor;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  const GridLattice lattice = LatLonLattice(24, 16);
  for (int64_t f = 1; f <= 8; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  // The store reports its on-disk bytes to the governor as it writes.
  EXPECT_EQ(governor.Usage("store"), PageBytesOnDisk(options.dir));
  const uint64_t full_usage = governor.Usage("store");

  // No store-side retention knobs at all: the governor's "store"
  // budget alone drives the prune (about half the bytes).
  governor.SetBudget("store", {/*max_bytes=*/full_usage / 2,
                               /*max_age_ms=*/0});
  GS_ASSERT_OK((*store)->RunRetentionNow());

  const std::vector<int64_t> kept =
      (*store)->FrameIds("src", INT64_MIN, INT64_MAX);
  EXPECT_LT(kept.size(), 8u);
  EXPECT_GE(kept.size(), 1u);
  EXPECT_EQ(kept.back(), 8) << "newest frame must survive";
  // Accounting stayed exact across prune + segment GC.
  EXPECT_EQ(governor.Usage("store"), PageBytesOnDisk(options.dir));
  EXPECT_LE(governor.Usage("store"), full_usage / 2);
  EXPECT_EQ(governor.BytesOverBudget("store"), 0u);
  for (int64_t f : kept) ExpectFrameIntact(store->get(), "src", lattice, f);
}

TEST(TileStoreRetentionTest, ReopenReportsUsageAndKeepsPruningState) {
  StorageGovernor governor({});
  TileStoreOptions options;
  options.dir = FreshDir("reopen");
  options.tile_size = 16;
  options.segment_max_bytes = 1;
  options.retention_max_frames = 2;
  {
    auto store = TileStore::Open(options);
    GS_ASSERT_OK(store.status());
    const GridLattice lattice = LatLonLattice(20, 12);
    for (int64_t f = 1; f <= 5; ++f) {
      GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
    }
    GS_ASSERT_OK((*store)->RunRetentionNow());
    EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
              (std::vector<int64_t>{4, 5}));
  }
  // Recovery seeds the governor's usage from what is really on disk.
  options.governor = &governor;
  auto reopened = TileStore::Open(options);
  GS_ASSERT_OK(reopened.status());
  EXPECT_EQ(governor.Usage("store"), PageBytesOnDisk(options.dir));
  EXPECT_EQ((*reopened)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{4, 5}));
  // The pruned-upto horizon is in-memory state; after a reopen the
  // store only knows what it retained.
  EXPECT_EQ((*reopened)->Horizon("src").oldest_frame_id, 4);
}

TEST(TileStoreRetentionTest, DegradedGovernorShedsPutFrameAndSelfHeals) {
  const std::string probe_dir = FreshDir("probe");
  FaultyFileOptions fopts;
  fopts.space_quota_bytes = 1;  // the probe cannot land a byte
  FaultyFileInjector injector(fopts);

  uint64_t now = 10000;
  StorageGovernorOptions gopts;
  gopts.probe_dir = probe_dir;
  gopts.probe_interval_ms = 200;
  gopts.file_factory = injector.Factory();
  gopts.now_ms = [&now] { return now; };
  StorageGovernor governor(gopts);

  TileStoreOptions options;
  options.dir = FreshDir("shed");
  options.tile_size = 16;
  options.governor = &governor;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  const GridLattice lattice = LatLonLattice(20, 12);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 1));

  // The journal (or the store itself) hit ENOSPC: the plane degrades
  // and PutFrame sheds at admission — no half-written run, the frame
  // is simply not stored, and the rejection is counted.
  governor.RecordWriteResult("store",
                             Status::ResourceExhausted("disk full"));
  now += 201;
  Status shed = PutFullFrame(store->get(), "src", lattice, 2);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable) << shed.ToString();
  EXPECT_EQ((*store)->TotalStats().frames_rejected, 1u);
  EXPECT_EQ((*store)->Watermark("src"), 1);
  // Reads keep serving while degraded.
  ExpectFrameIntact(store->get(), "src", lattice, 1);

  // Space frees: the admission probe heals and writes flow again.
  injector.SetSpaceQuota(0);
  now += 201;
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 2));
  EXPECT_FALSE(governor.degraded());
  EXPECT_EQ((*store)->Watermark("src"), 2);
  ExpectFrameIntact(store->get(), "src", lattice, 2);
}

TEST(TileStoreRetentionTest, HorizonOfUnknownOrUnprunedSourceIsEmpty) {
  TileStoreOptions options;
  options.dir = FreshDir("horizon");
  options.tile_size = 16;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  StoreHorizon horizon = (*store)->Horizon("nope");
  EXPECT_EQ(horizon.oldest_frame_id, INT64_MAX);
  EXPECT_EQ(horizon.pruned_upto, INT64_MIN);
  EXPECT_EQ(horizon.frames_pruned, 0u);

  const GridLattice lattice = LatLonLattice(20, 12);
  GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, 7));
  horizon = (*store)->Horizon("src");
  EXPECT_EQ(horizon.oldest_frame_id, 7);
  EXPECT_EQ(horizon.pruned_upto, INT64_MIN);
  EXPECT_EQ(horizon.frames_pruned, 0u);
}

TEST(TileStoreRetentionTest, BackgroundThreadPrunesWithoutExplicitCalls) {
  TileStoreOptions options;
  options.dir = FreshDir("bg");
  options.tile_size = 16;
  options.segment_max_bytes = 1;
  options.retention_max_frames = 2;
  options.gc_interval_ms = 20;
  auto store = TileStore::Open(options);
  GS_ASSERT_OK(store.status());

  const GridLattice lattice = LatLonLattice(20, 12);
  for (int64_t f = 1; f <= 6; ++f) {
    GS_ASSERT_OK(PutFullFrame(store->get(), "src", lattice, f));
  }
  // The background pass catches up within a few intervals.
  for (int i = 0; i < 200; ++i) {
    if ((*store)->FrameIds("src", INT64_MIN, INT64_MAX).size() <= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ((*store)->FrameIds("src", INT64_MIN, INT64_MAX),
            (std::vector<int64_t>{5, 6}));
  // Destructor joins the thread cleanly (no hang, no crash).
}

}  // namespace
}  // namespace geostreams
