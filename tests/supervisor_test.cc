// Supervision-layer tests: fault classification and restart policy
// (PipelineSupervisor), per-pipeline failure domains in the scheduler
// (retry with reset, dead-lettering, quarantine), and the
// deterministic fault-injection harness (FaultInjectorOp).

#include "stream/supervisor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ops/fault_injector_op.h"
#include "stream/pipeline.h"
#include "stream/scheduler.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

StreamEvent OnePointBatch(int64_t frame, int32_t col) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = frame;
  batch->band_count = 1;
  batch->Append1(col, 0, frame, 1.0);
  return StreamEvent::Batch(batch);
}

// --- Dead-letter queue ------------------------------------------------------

StreamEvent WideBatch(int64_t frame, size_t points) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = frame;
  batch->band_count = 1;
  for (size_t i = 0; i < points; ++i) {
    batch->Append1(static_cast<int32_t>(i), 0, frame, 0.5);
  }
  return StreamEvent::Batch(batch);
}

TEST(DeadLetterQueueTest, ByteCapEvictsOldestFirstAndKeepsOrdinals) {
  const StreamEvent sample = WideBatch(0, 64);
  const uint64_t each = ApproxEventBytes(sample);
  // Room for three retained batches, well under the count cap: the
  // byte cap is what drives eviction here.
  DeadLetterQueue dlq(/*max_events=*/100, /*max_bytes=*/each * 3 + 1);

  MemoryTracker tracker;
  dlq.BindMemoryTracker(&tracker, "dlq.test");

  for (int64_t i = 0; i < 10; ++i) {
    dlq.Push(WideBatch(i, 64), Status::InvalidArgument("poison"));
    EXPECT_LE(dlq.bytes(), each * 3 + 1);
    EXPECT_EQ(tracker.Snapshot()["dlq.test"], dlq.bytes());
  }
  EXPECT_EQ(dlq.total_pushed(), 10u);
  EXPECT_EQ(dlq.size(), 3u);

  // The survivors are the three NEWEST, oldest first, with ordinals
  // that kept climbing through the evictions.
  const std::vector<DeadLetter> retained = dlq.Snapshot();
  ASSERT_EQ(retained.size(), 3u);
  for (size_t i = 0; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].ordinal, 7 + i);
    ASSERT_TRUE(retained[i].event.batch);
    EXPECT_EQ(retained[i].event.batch->frame_id,
              static_cast<int64_t>(7 + i));
  }

  // An event bigger than the whole byte budget empties the ring but
  // still counts (the failure happened; we just cannot retain it).
  dlq.Push(WideBatch(99, 4096), Status::InvalidArgument("huge"));
  EXPECT_EQ(dlq.total_pushed(), 11u);
  EXPECT_EQ(dlq.size(), 0u);
  EXPECT_EQ(dlq.bytes(), 0u);
  EXPECT_EQ(tracker.Snapshot()["dlq.test"], 0u);

  dlq.Push(WideBatch(100, 64), Status::InvalidArgument("poison"));
  ASSERT_EQ(dlq.size(), 1u);
  EXPECT_EQ(dlq.Snapshot()[0].ordinal, 11u);
}

// --- Policy engine ----------------------------------------------------------

TEST(SupervisorTest, ClassifiesFaults) {
  EXPECT_EQ(ClassifyFault(Status::ResourceExhausted("x")),
            FaultClass::kTransient);
  EXPECT_EQ(ClassifyFault(Status::Unavailable("x")), FaultClass::kTransient);
  EXPECT_EQ(ClassifyFault(Status::FailedPrecondition("x")),
            FaultClass::kPoison);
  EXPECT_EQ(ClassifyFault(Status::InvalidArgument("x")), FaultClass::kPoison);
  EXPECT_EQ(ClassifyFault(Status::Internal("x")), FaultClass::kPermanent);
  EXPECT_EQ(ClassifyFault(Status::IoError("x")), FaultClass::kPermanent);
  EXPECT_EQ(ClassifyFault(Status::NotFound("x")), FaultClass::kPermanent);
}

TEST(SupervisorTest, Names) {
  EXPECT_STREQ(PipelineHealthName(PipelineHealth::kRunning), "RUNNING");
  EXPECT_STREQ(PipelineHealthName(PipelineHealth::kDegraded), "DEGRADED");
  EXPECT_STREQ(PipelineHealthName(PipelineHealth::kQuarantined),
               "QUARANTINED");
  EXPECT_STREQ(FaultClassName(FaultClass::kTransient), "transient");
  EXPECT_STREQ(FaultClassName(FaultClass::kPoison), "poison");
  EXPECT_STREQ(FaultClassName(FaultClass::kPermanent), "permanent");
}

TEST(SupervisorTest, TransientRetriesUntilAttemptCap) {
  SupervisorOptions options;
  options.max_restart_attempts = 3;
  PipelineSupervisor supervisor(options);
  const Status transient = Status::Unavailable("link down");
  for (int attempts = 0; attempts < 3; ++attempts) {
    EXPECT_EQ(supervisor.Decide(transient, attempts, 0).action,
              SupervisorDecision::Action::kRetry)
        << "attempts=" << attempts;
  }
  EXPECT_EQ(supervisor.Decide(transient, 3, 0).action,
            SupervisorDecision::Action::kQuarantine);
}

TEST(SupervisorTest, PoisonDeadLettersUntilLimit) {
  SupervisorOptions options;
  options.poison_limit = 3;
  PipelineSupervisor supervisor(options);
  const Status poison = Status::FailedPrecondition("corrupt row");
  EXPECT_EQ(supervisor.Decide(poison, 0, 0).action,
            SupervisorDecision::Action::kDeadLetter);
  EXPECT_EQ(supervisor.Decide(poison, 0, 1).action,
            SupervisorDecision::Action::kDeadLetter);
  // The third poison event reaches the limit.
  EXPECT_EQ(supervisor.Decide(poison, 0, 2).action,
            SupervisorDecision::Action::kQuarantine);
  // Default policy: the first poison event quarantines.
  PipelineSupervisor strict{SupervisorOptions{}};
  EXPECT_EQ(strict.Decide(poison, 0, 0).action,
            SupervisorDecision::Action::kQuarantine);
}

TEST(SupervisorTest, PermanentQuarantinesImmediately) {
  PipelineSupervisor supervisor{SupervisorOptions{}};
  EXPECT_EQ(supervisor.Decide(Status::Internal("bug"), 0, 0).action,
            SupervisorDecision::Action::kQuarantine);
}

TEST(SupervisorTest, BackoffIsDeterministicBoundedAndGrows) {
  SupervisorOptions options;
  options.backoff_initial_ms = 2;
  options.backoff_max_ms = 50;
  options.backoff_jitter_ms = 3;
  PipelineSupervisor supervisor(options);
  // Deterministic: same (pipeline, attempt) -> same backoff.
  for (int attempt = 0; attempt < 40; ++attempt) {
    const uint32_t ms = supervisor.BackoffMs(7, attempt);
    EXPECT_EQ(ms, supervisor.BackoffMs(7, attempt));
    EXPECT_LE(ms, options.backoff_max_ms);
    // Exponential base: at least initial << attempt until the cap.
    const uint64_t base = std::min<uint64_t>(
        static_cast<uint64_t>(options.backoff_initial_ms)
            << std::min(attempt, 20),
        options.backoff_max_ms);
    EXPECT_GE(ms, base);
  }
  // Jitter decorrelates pipelines: not every pipeline shares one
  // schedule (checked across a handful of tokens).
  std::set<uint32_t> seen;
  for (uint64_t token = 0; token < 8; ++token) {
    seen.insert(supervisor.BackoffMs(token, 1));
  }
  EXPECT_GT(seen.size(), 1u);
}

// --- Scheduler failure domains ----------------------------------------------

/// Fails the first `failures` deliveries with `status`, then succeeds.
class FlakySink : public EventSink {
 public:
  FlakySink(int failures, Status status)
      : remaining_(failures), status_(std::move(status)) {}

  Status Consume(const StreamEvent&) override {
    ++deliveries_;
    if (remaining_ > 0) {
      --remaining_;
      return status_;
    }
    ++succeeded_;
    return Status::OK();
  }

  int deliveries() const { return deliveries_; }
  int succeeded() const { return succeeded_; }

 private:
  int remaining_;
  Status status_;
  int deliveries_ = 0;
  int succeeded_ = 0;
};

TEST(SchedulerSupervisionTest, TransientFailureRecoversAfterBackoff) {
  FlakySink flaky(/*failures=*/2, Status::Unavailable("uplink hiccup"));
  SchedulerOptions options;
  options.workers = 2;
  QueryScheduler scheduler(options);
  const size_t pipeline = scheduler.AddPipelineGroup("flaky");
  EventSink* in = scheduler.AddPipelineInput(pipeline, &flaky);
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  // WaitIdle covers the whole retry dance: the queue stays non-empty
  // while the event waits out its backoff.
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(flaky.deliveries(), 3);
  EXPECT_EQ(flaky.succeeded(), 1);
  // Recovered: running again, counters pin the two redeliveries.
  EXPECT_EQ(scheduler.Health(pipeline), PipelineHealth::kRunning);
  GS_EXPECT_OK(scheduler.PipelineError(pipeline));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].restarts, 2u);
  EXPECT_EQ(stats[0].processed, 1u);
  EXPECT_EQ(stats[0].enqueued, 1u);
}

TEST(SchedulerSupervisionTest, ResetHookRunsBeforeEveryRedelivery) {
  FlakySink flaky(/*failures=*/3, Status::ResourceExhausted("no memory"));
  SchedulerOptions options;
  options.supervisor.max_restart_attempts = 5;
  QueryScheduler scheduler(options);
  const size_t pipeline = scheduler.AddPipelineGroup("flaky");
  EventSink* in = scheduler.AddPipelineInput(pipeline, &flaky);
  std::atomic<int> resets{0};
  scheduler.SetPipelineReset(pipeline, [&resets] { ++resets; });
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(resets.load(), 3);
  EXPECT_EQ(flaky.succeeded(), 1);
  GS_ASSERT_OK(scheduler.Stop());
}

TEST(SchedulerSupervisionTest, PersistentTransientFailureQuarantines) {
  // Never succeeds: retries are capped, then the pipeline quarantines
  // with the transient error recorded.
  FlakySink dead(/*failures=*/1000, Status::Unavailable("down for good"));
  SchedulerOptions options;
  options.supervisor.max_restart_attempts = 2;
  QueryScheduler scheduler(options);
  const size_t pipeline = scheduler.AddPipelineGroup("dead");
  EventSink* in = scheduler.AddPipelineInput(pipeline, &dead);
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  // Initial delivery + 2 redeliveries, then quarantine.
  EXPECT_EQ(dead.deliveries(), 3);
  EXPECT_EQ(scheduler.Health(pipeline), PipelineHealth::kQuarantined);
  EXPECT_EQ(scheduler.PipelineError(pipeline).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(in->Consume(OnePointBatch(0, 1)).code(),
            StatusCode::kUnavailable);
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].restarts, 2u);
  EXPECT_EQ(stats[0].rejected, 1u);
  EXPECT_EQ(stats[0].health, PipelineHealth::kQuarantined);
  // enqueued(1) = processed(0) + dead_letters(0) + discarded(1).
  EXPECT_EQ(stats[0].discarded, 1u);
  EXPECT_EQ(stats[0].processed, 0u);
}

/// Rejects batches whose first col is `poison_col` as poison.
class PickySink : public EventSink {
 public:
  explicit PickySink(int32_t poison_col) : poison_col_(poison_col) {}

  Status Consume(const StreamEvent& event) override {
    if (event.kind == EventKind::kPointBatch &&
        event.batch->cols[0] == poison_col_) {
      return Status::FailedPrecondition("corrupt scan row");
    }
    ++accepted_;
    return Status::OK();
  }
  int accepted() const { return accepted_; }

 private:
  int32_t poison_col_;
  int accepted_ = 0;
};

TEST(SchedulerSupervisionTest, PoisonEventsAreDeadLettered) {
  PickySink picky(/*poison_col=*/113);
  SchedulerOptions options;
  options.supervisor.poison_limit = 100;  // tolerate poison, count it
  QueryScheduler scheduler(options);
  const size_t pipeline = scheduler.AddPipelineGroup("picky");
  EventSink* in = scheduler.AddPipelineInput(pipeline, &picky);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 20; ++i) {
    // One poison batch hides mid-stream, one more arrives at the end.
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i == 7 ? 113 : i)));
  }
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 113)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  // Both poison events dropped, the pipeline kept running.
  EXPECT_EQ(picky.accepted(), 19);
  EXPECT_EQ(scheduler.Health(pipeline), PipelineHealth::kDegraded);
  GS_EXPECT_OK(scheduler.PipelineError(pipeline));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].dead_letters, 2u);
  EXPECT_EQ(stats[0].processed, 19u);
  EXPECT_EQ(stats[0].enqueued, 21u);
  EXPECT_EQ(stats[0].restarts, 0u);
}

TEST(SchedulerSupervisionTest, RemovePipelineChurnReturnsToBaseline) {
  // Satellite: 1k register/unregister cycles must not leak queues or
  // grow the slot table — removed ids are recycled.
  CollectingSink keeper_sink;
  SchedulerOptions options;
  options.workers = 2;
  QueryScheduler scheduler(options);
  const size_t keeper = scheduler.AddPipelineGroup("keeper");
  EventSink* keeper_in = scheduler.AddPipelineInput(keeper, &keeper_sink);
  GS_ASSERT_OK(scheduler.Start());
  const size_t baseline = scheduler.num_pipelines();
  ASSERT_EQ(baseline, 1u);
  for (int i = 0; i < 1000; ++i) {
    CollectingSink sink;
    const size_t id =
        scheduler.AddPipelineGroup("churn" + std::to_string(i));
    EventSink* in = scheduler.AddPipelineInput(id, &sink);
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i)));
    GS_ASSERT_OK(keeper_in->Consume(OnePointBatch(0, i)));
    GS_ASSERT_OK(scheduler.RemovePipeline(id));
    // Removed ids answer NotFound, not stale data (the entry sink
    // itself is destroyed with the pipeline).
    EXPECT_EQ(scheduler.PipelineError(id).code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(scheduler.num_pipelines(), baseline);
  EXPECT_EQ(scheduler.Stats().size(), baseline);
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(keeper_sink.TotalPoints(), 1000u);
  GS_ASSERT_OK(scheduler.Stop());
  // Slot table stayed bounded: ids were recycled, not appended.
  const size_t late = scheduler.AddPipelineGroup("late");
  EXPECT_LE(late, baseline + 1);
}

// --- Fault-injection harness ------------------------------------------------

TEST(FaultInjectorTest, InjectsOnScheduleThroughScheduler) {
  // Transient fault at event 2 (twice), poison at event 5. The
  // pipeline retries through the former and dead-letters the latter.
  std::vector<InjectedFault> faults;
  faults.push_back({2, StatusCode::kUnavailable, "transient glitch", 2});
  faults.push_back({5, StatusCode::kFailedPrecondition, "poison row", 1});
  auto injector_op =
      std::make_unique<FaultInjectorOp>("inject", std::move(faults));
  FaultInjectorOp* injector = injector_op.get();
  Pipeline pipeline;
  pipeline.Add(std::move(injector_op));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  SchedulerOptions options;
  options.supervisor.poison_limit = 100;
  QueryScheduler scheduler(options);
  const size_t id = scheduler.AddPipelineGroup("injected");
  EventSink* in = scheduler.AddPipelineInput(id, &pipeline);
  scheduler.SetPipelineReset(id, [&pipeline] { pipeline.Reset(); });
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 10; ++i) {
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i)));
  }
  GS_ASSERT_OK(scheduler.WaitIdle());
  GS_ASSERT_OK(scheduler.Stop());
  // Event 5 (col 5) was dead-lettered; everything else got through,
  // including event 2 after its retries.
  EXPECT_EQ(sink.TotalPoints(), 9u);
  EXPECT_EQ(injector->faults_injected(), 3u);
  EXPECT_EQ(injector->events_seen(), 10u);
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].restarts, 2u);
  EXPECT_EQ(stats[0].dead_letters, 1u);
  EXPECT_EQ(stats[0].processed, 9u);
  EXPECT_EQ(stats[0].health, PipelineHealth::kDegraded);
}

TEST(FaultInjectorTest, VerifiesChecksums) {
  FaultInjectorOp op("verify", {}, /*verify_checksums=*/true);
  CollectingSink sink;
  op.BindOutput(&sink);

  auto good = std::make_shared<PointBatch>();
  good->frame_id = 0;
  good->band_count = 1;
  good->Append1(0, 0, 0, 1.5);
  good->checksum = good->ComputeChecksum();
  GS_ASSERT_OK(op.Consume(StreamEvent::Batch(good)));

  // Corrupt after checksumming: a flipped payload byte must surface
  // as poison, not silently pass.
  auto bad = std::make_shared<PointBatch>(*good);
  bad->values[0] += 1.0;
  EXPECT_EQ(op.Consume(StreamEvent::Batch(bad)).code(),
            StatusCode::kFailedPrecondition);

  // Unchecksummed batches are never rejected (checksum 0 = unset).
  auto unset = std::make_shared<PointBatch>();
  unset->frame_id = 0;
  unset->band_count = 1;
  unset->Append1(1, 0, 0, 2.0);
  GS_ASSERT_OK(op.Consume(StreamEvent::Batch(unset)));

  EXPECT_EQ(op.checksum_failures(), 1u);
  EXPECT_EQ(sink.TotalPoints(), 2u);
}

TEST(FaultInjectorTest, ChecksumNeverZeroAndDetectsEachField) {
  PointBatch batch;
  batch.frame_id = 3;
  batch.band_count = 1;
  batch.Append1(4, 5, 6, 7.0);
  const uint64_t digest = batch.ComputeChecksum();
  EXPECT_NE(digest, 0u);
  EXPECT_TRUE(batch.ChecksumValid());  // unset checksum: always valid
  batch.checksum = digest;
  EXPECT_TRUE(batch.ChecksumValid());

  PointBatch tweaked = batch;
  tweaked.cols[0] = 40;
  EXPECT_NE(tweaked.ComputeChecksum(), digest);
  tweaked = batch;
  tweaked.timestamps[0] = 60;
  EXPECT_NE(tweaked.ComputeChecksum(), digest);
  tweaked = batch;
  tweaked.values[0] = 7.5;
  EXPECT_NE(tweaked.ComputeChecksum(), digest);
  EXPECT_FALSE(tweaked.ChecksumValid());
}

}  // namespace
}  // namespace geostreams
