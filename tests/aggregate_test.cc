#include "ops/aggregate_op.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

RegionPtr WholeExtent() { return MakeBBoxRegion(-130.0, 30.0, -110.0, 50.0); }

TEST(AggregateTest, CountOverWholeFrame) {
  GridLattice lattice = LatLonLattice(6, 5);
  AggregateOp op("a", AggregateFn::kCount, {WholeExtent()}, 1);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  ASSERT_EQ(op.results().size(), 1u);
  EXPECT_EQ(op.results()[0].count, 30u);
  EXPECT_DOUBLE_EQ(op.results()[0].value, 30.0);
  EXPECT_TRUE(WellFormedFrames(sink.events()));
}

TEST(AggregateTest, AvgMinMaxSum) {
  GridLattice lattice = LatLonLattice(10, 1);
  // TestValue(0, col, 0) = 0.01 * col for col 0..9.
  struct Case {
    AggregateFn fn;
    double expected;
  };
  for (const Case& c :
       {Case{AggregateFn::kAvg, 0.045}, Case{AggregateFn::kMin, 0.0},
        Case{AggregateFn::kMax, 0.09}, Case{AggregateFn::kSum, 0.45}}) {
    AggregateOp op("a", c.fn, {WholeExtent()}, 1);
    CollectingSink sink;
    op.BindOutput(&sink);
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
    ASSERT_EQ(op.results().size(), 1u) << AggregateFnName(c.fn);
    EXPECT_NEAR(op.results()[0].value, c.expected, 1e-12)
        << AggregateFnName(c.fn);
  }
}

TEST(AggregateTest, PerRegionSeparation) {
  GridLattice lattice = LatLonLattice(10, 8);
  // Western half vs eastern half of the 10-column extent.
  auto west = MakeBBoxRegion(-125.0, 40.0, -122.6, 45.0);  // cols 0..4
  auto east = MakeBBoxRegion(-122.4, 40.0, -120.0, 45.0);  // cols 5..9
  AggregateOp op("a", AggregateFn::kCount, {west, east}, 1);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  ASSERT_EQ(op.results().size(), 2u);
  EXPECT_EQ(op.results()[0].count, 5u * 8u);
  EXPECT_EQ(op.results()[1].count, 5u * 8u);
}

TEST(AggregateTest, TumblingWindowAcrossFrames) {
  GridLattice lattice = LatLonLattice(4, 4);
  AggregateOp op("a", AggregateFn::kCount, {WholeExtent()}, 3);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 7; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  // Two complete windows of 3 frames each (the 7th frame is pending).
  ASSERT_EQ(op.results().size(), 2u);
  EXPECT_EQ(op.results()[0].count, 3u * 16u);
  EXPECT_EQ(op.results()[0].window_start_frame, 0);
  EXPECT_EQ(op.results()[0].window_end_frame, 2);
  EXPECT_EQ(op.results()[1].window_start_frame, 3);
  EXPECT_EQ(op.results()[1].window_end_frame, 5);
  // StreamEnd flushes the partial window.
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));
  ASSERT_EQ(op.results().size(), 3u);
  EXPECT_EQ(op.results()[2].count, 16u);
}

TEST(AggregateTest, EmitsResultsAsClosedStream) {
  GridLattice lattice = LatLonLattice(4, 4);
  AggregateOp op("a", AggregateFn::kAvg,
                 {WholeExtent(), WholeExtent(), WholeExtent()}, 1);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 5));
  // One output frame with a 3 x 1 lattice (one column per region).
  ASSERT_EQ(sink.NumFrames(), 1u);
  for (const StreamEvent& e : sink.events()) {
    if (e.kind == EventKind::kFrameBegin) {
      EXPECT_EQ(e.frame.lattice.width(), 3);
      EXPECT_EQ(e.frame.lattice.height(), 1);
    }
  }
  EXPECT_EQ(sink.TotalPoints(), 3u);
}

TEST(AggregateTest, EmptyRegionYieldsZeroCount) {
  GridLattice lattice = LatLonLattice(4, 4);
  auto far_away = MakeBBoxRegion(0.0, 0.0, 1.0, 1.0);
  AggregateOp op("a", AggregateFn::kAvg, {far_away}, 1);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  ASSERT_EQ(op.results().size(), 1u);
  EXPECT_EQ(op.results()[0].count, 0u);
  EXPECT_DOUBLE_EQ(op.results()[0].value, 0.0);
}

TEST(AggregateTest, BoundedState) {
  GridLattice lattice = LatLonLattice(32, 32);
  AggregateOp op("a", AggregateFn::kSum, {WholeExtent(), WholeExtent()}, 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 4; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  // Constant-size accumulators regardless of stream length.
  EXPECT_LE(op.metrics().buffered_bytes_high_water, 2u * 64u);
}


TEST(AggregateTest, SlidingWindowOverlaps) {
  GridLattice lattice = LatLonLattice(4, 4);
  // Window of 3 frames sliding by 1: emissions at frames 2,3,4,5.
  AggregateOp op("a", AggregateFn::kCount, {WholeExtent()}, 3, 1);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 6; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  ASSERT_EQ(op.results().size(), 4u);
  for (size_t i = 0; i < op.results().size(); ++i) {
    EXPECT_EQ(op.results()[i].count, 3u * 16u);
    EXPECT_EQ(op.results()[i].window_start_frame, static_cast<int64_t>(i));
    EXPECT_EQ(op.results()[i].window_end_frame,
              static_cast<int64_t>(i) + 2);
  }
}

TEST(AggregateTest, SlidingWindowSlideTwo) {
  GridLattice lattice = LatLonLattice(2, 2);
  AggregateOp op("a", AggregateFn::kSum, {WholeExtent()}, 4, 2);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 8; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  // Emissions after frames 3, 5, 7: windows [0-3], [2-5], [4-7].
  ASSERT_EQ(op.results().size(), 3u);
  EXPECT_EQ(op.results()[0].window_start_frame, 0);
  EXPECT_EQ(op.results()[0].window_end_frame, 3);
  EXPECT_EQ(op.results()[1].window_start_frame, 2);
  EXPECT_EQ(op.results()[1].window_end_frame, 5);
  EXPECT_EQ(op.results()[2].window_start_frame, 4);
  EXPECT_EQ(op.results()[2].window_end_frame, 7);
}

TEST(AggregateTest, SlidingMatchesTumblingWhenSlideEqualsWindow) {
  GridLattice lattice = LatLonLattice(4, 4);
  auto run = [&](int slide) {
    AggregateOp op("a", AggregateFn::kAvg, {WholeExtent()}, 3, slide);
    CollectingSink sink;
    op.BindOutput(&sink);
    for (int64_t f = 0; f < 9; ++f) {
      Status st = PushFrame(op.input(0), lattice, f);
      EXPECT_TRUE(st.ok());
    }
    return op.results();
  };
  const auto tumbling = run(0);
  const auto slide3 = run(3);
  ASSERT_EQ(tumbling.size(), slide3.size());
  for (size_t i = 0; i < tumbling.size(); ++i) {
    EXPECT_EQ(tumbling[i].window_start_frame, slide3[i].window_start_frame);
    EXPECT_DOUBLE_EQ(tumbling[i].value, slide3[i].value);
  }
}

TEST(AggregateTest, SlidingStateIsBoundedByWindow) {
  GridLattice lattice = LatLonLattice(8, 8);
  AggregateOp op("a", AggregateFn::kAvg, {WholeExtent(), WholeExtent()},
                 /*window=*/5, /*slide=*/1);
  CollectingSink sink;
  op.BindOutput(&sink);
  for (int64_t f = 0; f < 50; ++f) {
    GS_ASSERT_OK(PushFrame(op.input(0), lattice, f));
  }
  // Per-frame partials for at most window+1 frames x 2 regions.
  EXPECT_LE(op.metrics().buffered_bytes_high_water, 6u * 2u * 40u);
}

}  // namespace
}  // namespace geostreams
