#include "stream/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "ops/restriction_ops.h"
#include "stream/pipeline.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

StreamEvent OnePointBatch(int64_t frame, int32_t col) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = frame;
  batch->band_count = 1;
  batch->Append1(col, 0, frame, 1.0);
  return StreamEvent::Batch(batch);
}

TEST(SchedulerTest, DeliversToAllPipelines) {
  CollectingSink a, b;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in_a = scheduler.AddPipeline("a", &a);
  EventSink* in_b = scheduler.AddPipeline("b", &b);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(6, 4);
  GS_ASSERT_OK(PushFrame(in_a, lattice, 0));
  GS_ASSERT_OK(PushFrame(in_b, lattice, 0));
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(a.TotalPoints(), 24u);
  EXPECT_EQ(b.TotalPoints(), 24u);
  EXPECT_TRUE(testing_util::WellFormedFrames(a.events()));
}

TEST(SchedulerTest, PerQueueOrderPreserved) {
  CollectingSink sink;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("q", &sink);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 200; ++i) {
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i)));
  }
  GS_ASSERT_OK(scheduler.Stop());
  ASSERT_EQ(sink.events().size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sink.events()[static_cast<size_t>(i)].batch->cols[0], i);
  }
}

TEST(SchedulerTest, OverflowShedsBatchesButNeverControlEvents) {
  // A pipeline that can never drain (scheduler not started yet can't
  // be used; instead use a tiny capacity and burst before the worker
  // catches up is racy) — so test the bound directly: enqueue from the
  // worker's own perspective by using capacity 4 and a slow consumer.
  class SlowSink : public EventSink {
   public:
    Status Consume(const StreamEvent& event) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++consumed_;
      if (event.kind != EventKind::kPointBatch) ++control_;
      return Status::OK();
    }
    std::atomic<int> consumed_{0};
    std::atomic<int> control_{0};
  };
  SlowSink slow;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin,
                           /*queue_capacity=*/4);
  EventSink* in = scheduler.AddPipeline("slow", &slow);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(4, 4);
  // Burst far more than capacity.
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameBegin(info)));
  for (int i = 0; i < 200; ++i) {
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i % 4)));
  }
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  // No double accounting: a shed event is counted in dropped only, so
  // enqueued + dropped is the total offered and a full drain leaves
  // processed == enqueued.
  EXPECT_GT(stats[0].dropped, 0u);
  EXPECT_EQ(stats[0].enqueued + stats[0].dropped, 202u);
  EXPECT_EQ(stats[0].processed, stats[0].enqueued);
  // Frame metadata survived the shedding.
  EXPECT_EQ(slow.control_.load(), 2);
}

TEST(SchedulerTest, ReportDropsSurfacesShedding) {
  // With report_drops, a producer can tell a shed batch (capacity 0
  // means every batch overflows) from a delivered one.
  CollectingSink sink;
  SchedulerOptions options;
  options.queue_capacity = 0;
  options.report_drops = true;
  QueryScheduler scheduler(options);
  EventSink* in = scheduler.AddPipeline("q", &sink);
  GS_ASSERT_OK(scheduler.Start());
  EXPECT_EQ(in->Consume(OnePointBatch(0, 0)).code(),
            StatusCode::kResourceExhausted);
  // Control events are still admitted (and the overshoot counted).
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = LatLonLattice(4, 4);
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameBegin(info)));
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].dropped, 1u);
  EXPECT_EQ(stats[0].enqueued, 2u);
  EXPECT_GE(stats[0].control_overflow, 1u);
}

TEST(SchedulerTest, LongestQueueFirstDrainsBacklog) {
  CollectingSink a, b;
  QueryScheduler scheduler(SchedulingPolicy::kLongestQueueFirst);
  EventSink* in_a = scheduler.AddPipeline("a", &a);
  EventSink* in_b = scheduler.AddPipeline("b", &b);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 50; ++i) {
    GS_ASSERT_OK(in_a->Consume(OnePointBatch(0, i)));
    if (i % 10 == 0) {
      GS_ASSERT_OK(in_b->Consume(OnePointBatch(0, i)));
    }
  }
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(a.TotalPoints(), 50u);
  EXPECT_EQ(b.TotalPoints(), 5u);
}

TEST(SchedulerTest, RunsRealPipelines) {
  // Scheduler feeding an actual operator chain.
  Pipeline pipeline;
  pipeline.Add(std::make_unique<SpatialRestrictionOp>(
      "r", MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0)));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("restricted", &pipeline);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(10, 8);
  GS_ASSERT_OK(PushFrame(in, lattice, 0));
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(sink.TotalPoints(), 2u * 8u);
}

TEST(SchedulerTest, Lifecycle) {
  CollectingSink sink;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("q", &sink);
  // Enqueue before Start is rejected.
  EXPECT_EQ(in->Consume(OnePointBatch(0, 0)).code(),
            StatusCode::kFailedPrecondition);
  GS_ASSERT_OK(scheduler.Start());
  EXPECT_EQ(scheduler.Start().code(), StatusCode::kFailedPrecondition);
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.Stop());
  // Stop is idempotent.
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(sink.TotalPoints(), 1u);
}

TEST(SchedulerTest, PermanentErrorQuarantinesPipeline) {
  // A permanent (unclassified) error quarantines the pipeline: the
  // error is recorded and retrievable, but the pool itself stays
  // healthy — Stop() and WaitIdle() return OK.
  class FailingSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      return Status::Internal("boom");
    }
  };
  FailingSink failing;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  const size_t pipeline = scheduler.AddPipelineGroup("failing");
  EventSink* in = scheduler.AddPipelineInput(pipeline, &failing);
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(scheduler.Health(pipeline), PipelineHealth::kQuarantined);
  EXPECT_EQ(scheduler.PipelineError(pipeline).code(), StatusCode::kInternal);
  EXPECT_EQ(scheduler.FirstPipelineError().code(), StatusCode::kInternal);
  GS_ASSERT_OK(scheduler.Stop());
}

// --- Worker pool ------------------------------------------------------------

/// Records the cols of every batch it sees. Deliberately NOT locked:
/// the scheduler's claim invariant promises at most one worker inside
/// a pipeline at a time (with mutex handoff between workers), so TSan
/// on this test doubles as a check of that invariant.
class RecordingSink : public EventSink {
 public:
  Status Consume(const StreamEvent& event) override {
    if (event.kind == EventKind::kPointBatch) {
      cols_.push_back(event.batch->cols[0]);
    }
    return Status::OK();
  }
  const std::vector<int32_t>& cols() const { return cols_; }

 private:
  std::vector<int32_t> cols_;
};

TEST(SchedulerTest, WorkerPoolPreservesPerPipelineOrderUnderLoad) {
  constexpr int kPipelines = 8;
  constexpr int kEvents = 400;
  SchedulerOptions options;
  options.workers = 4;
  options.queue_capacity = kPipelines * kEvents;  // never shed
  QueryScheduler scheduler(options);
  std::vector<std::unique_ptr<RecordingSink>> sinks;
  std::vector<EventSink*> inputs;
  for (int p = 0; p < kPipelines; ++p) {
    sinks.push_back(std::make_unique<RecordingSink>());
    inputs.push_back(scheduler.AddPipeline("q" + std::to_string(p),
                                           sinks.back().get()));
  }
  GS_ASSERT_OK(scheduler.Start());
  EXPECT_EQ(scheduler.num_workers(), 4u);
  // Interleave enqueues across pipelines while workers drain them.
  for (int i = 0; i < kEvents; ++i) {
    for (int p = 0; p < kPipelines; ++p) {
      GS_ASSERT_OK(inputs[static_cast<size_t>(p)]->Consume(
          OnePointBatch(0, i)));
    }
  }
  GS_ASSERT_OK(scheduler.Stop());
  for (int p = 0; p < kPipelines; ++p) {
    const auto& cols = sinks[static_cast<size_t>(p)]->cols();
    ASSERT_EQ(cols.size(), static_cast<size_t>(kEvents)) << "pipeline " << p;
    for (int i = 0; i < kEvents; ++i) {
      ASSERT_EQ(cols[static_cast<size_t>(i)], i) << "pipeline " << p;
    }
  }
  for (const auto& stat : scheduler.Stats()) {
    EXPECT_EQ(stat.processed, stat.enqueued);
    EXPECT_EQ(stat.dropped, 0u);
  }
}

TEST(SchedulerTest, MultiInputPipelineStaysSerialized) {
  // Two inputs of one pipeline fed from two producer threads: the
  // downstream sink must never run concurrently (unlocked sink +
  // TSan verifies) and must see every event.
  SchedulerOptions options;
  options.workers = 4;
  options.queue_capacity = 1 << 16;
  QueryScheduler scheduler(options);
  RecordingSink left_sink, right_sink;
  const size_t pipeline = scheduler.AddPipelineGroup("binary");
  EventSink* left = scheduler.AddPipelineInput(pipeline, &left_sink);
  EventSink* right = scheduler.AddPipelineInput(pipeline, &right_sink);
  GS_ASSERT_OK(scheduler.Start());
  constexpr int kPerSide = 500;
  auto produce = [](EventSink* in, int32_t base) {
    for (int i = 0; i < kPerSide; ++i) {
      Status st = in->Consume(OnePointBatch(0, base + i));
      EXPECT_TRUE(st.ok());
    }
  };
  std::thread t1(produce, left, 0);
  std::thread t2(produce, right, 1000);
  t1.join();
  t2.join();
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(left_sink.cols().size(), static_cast<size_t>(kPerSide));
  EXPECT_EQ(right_sink.cols().size(), static_cast<size_t>(kPerSide));
  // Per-input order is the enqueue order.
  for (int i = 0; i < kPerSide; ++i) {
    EXPECT_EQ(left_sink.cols()[static_cast<size_t>(i)], i);
    EXPECT_EQ(right_sink.cols()[static_cast<size_t>(i)], 1000 + i);
  }
}

TEST(SchedulerTest, FailureIsIsolatedToOnePipeline) {
  // The old pool killed every worker on the first error; pipelines are
  // now independent failure domains. The failed pipeline rejects new
  // events with ITS OWN status, the healthy one keeps accepting and
  // processing everything.
  class FailingSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      return Status::Internal("boom");
    }
  };
  class CountingSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      count_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    std::atomic<uint64_t> count_{0};
  };
  SchedulerOptions options;
  options.workers = 4;
  QueryScheduler scheduler(options);
  FailingSink failing;
  CountingSink healthy;
  const size_t bad_id = scheduler.AddPipelineGroup("bad");
  EventSink* bad = scheduler.AddPipelineInput(bad_id, &failing);
  const size_t good_id = scheduler.AddPipelineGroup("good");
  EventSink* good = scheduler.AddPipelineInput(good_id, &healthy);
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(bad->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(scheduler.Health(bad_id), PipelineHealth::kQuarantined);
  // Enqueue on the quarantined pipeline returns that pipeline's error.
  EXPECT_EQ(bad->Consume(OnePointBatch(0, 1)).code(), StatusCode::kInternal);
  // Enqueue on the healthy pipeline keeps succeeding — never the
  // stale first error of the old pool-wide abort.
  for (int i = 0; i < 1000; ++i) {
    GS_ASSERT_OK(good->Consume(OnePointBatch(0, i)));
  }
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(scheduler.Health(good_id), PipelineHealth::kRunning);
  EXPECT_EQ(healthy.count_.load(), 1000u);
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].rejected, 1u);
  EXPECT_FALSE(stats[0].error.empty());
  EXPECT_EQ(stats[1].processed, stats[1].enqueued);
}

TEST(SchedulerTest, DropAccountingSumsUnderContention) {
  class SlowSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      return Status::OK();
    }
  };
  SchedulerOptions options;
  options.workers = 2;
  options.queue_capacity = 8;
  QueryScheduler scheduler(options);
  SlowSink slow_a, slow_b;
  EventSink* in_a = scheduler.AddPipeline("a", &slow_a);
  EventSink* in_b = scheduler.AddPipeline("b", &slow_b);
  GS_ASSERT_OK(scheduler.Start());
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      EventSink* in = (t % 2 == 0) ? in_a : in_b;
      for (int i = 0; i < kPerProducer; ++i) {
        Status st = in->Consume(OnePointBatch(0, i));
        EXPECT_TRUE(st.ok());  // silent shedding: drops are stats-only
      }
    });
  }
  for (auto& t : producers) t.join();
  GS_ASSERT_OK(scheduler.Stop());
  uint64_t offered = 0;
  for (const auto& stat : scheduler.Stats()) {
    EXPECT_EQ(stat.processed, stat.enqueued);
    EXPECT_LE(stat.queue_high_water, 8u);
    offered += stat.enqueued + stat.dropped;
  }
  // Every offered event is accounted exactly once.
  EXPECT_EQ(offered, static_cast<uint64_t>(kProducers) * kPerProducer);
}

TEST(SchedulerTest, RoundRobinRotationIsExact) {
  // Fairness regression test. A previous implementation advanced the
  // round-robin cursor inside the condvar wait *predicate*, so every
  // wakeup (spurious or not) skewed the rotation without dequeuing.
  // Selection is now const and the cursor moves only on a claim; with
  // one worker the rotation over backlogged queues is deterministic.
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool gate_entered = false;
    bool gate_released = false;
    std::vector<int32_t> order;  // cols in global consumption order
  };
  Shared shared;
  class GateSink : public EventSink {
   public:
    explicit GateSink(Shared* s) : s_(s) {}
    Status Consume(const StreamEvent&) override {
      std::unique_lock<std::mutex> lock(s_->mutex);
      s_->gate_entered = true;
      s_->cv.notify_all();
      s_->cv.wait(lock, [this] { return s_->gate_released; });
      return Status::OK();
    }

   private:
    Shared* s_;
  };
  class OrderSink : public EventSink {
   public:
    explicit OrderSink(Shared* s) : s_(s) {}
    Status Consume(const StreamEvent& event) override {
      std::lock_guard<std::mutex> lock(s_->mutex);
      s_->order.push_back(event.batch->cols[0]);
      return Status::OK();
    }

   private:
    Shared* s_;
  };
  GateSink gate_sink(&shared);
  OrderSink order_sink(&shared);
  SchedulerOptions options;  // one worker: rotation fully determined
  QueryScheduler scheduler(options);
  EventSink* gate = scheduler.AddPipeline("gate", &gate_sink);
  std::vector<EventSink*> inputs;
  for (int q = 0; q < 3; ++q) {
    inputs.push_back(
        scheduler.AddPipeline("q" + std::to_string(q), &order_sink));
  }
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(gate->Consume(OnePointBatch(0, 999)));
  {
    // Wait for the worker to be parked inside the gate sink, then
    // backlog all three queues in *reverse* queue order.
    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.cv.wait(lock, [&shared] { return shared.gate_entered; });
  }
  for (int round = 0; round < 2; ++round) {
    for (int q = 2; q >= 0; --q) {
      GS_ASSERT_OK(inputs[static_cast<size_t>(q)]->Consume(
          OnePointBatch(0, q * 10 + round)));
    }
  }
  {
    std::lock_guard<std::mutex> lock(shared.mutex);
    shared.gate_released = true;
  }
  shared.cv.notify_all();
  GS_ASSERT_OK(scheduler.Stop());
  // Cursor sits after the gate queue, so the drain visits q0, q1, q2,
  // q0, q1, q2 — strict rotation, independent of enqueue order.
  const std::vector<int32_t> expected = {0, 10, 20, 1, 11, 21};
  EXPECT_EQ(shared.order, expected);
}

TEST(SchedulerTest, WaitIdleAndDynamicPipelines) {
  CollectingSink sink_a;
  SchedulerOptions options;
  options.workers = 2;
  QueryScheduler scheduler(options);
  EventSink* in_a = scheduler.AddPipeline("a", &sink_a);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 100; ++i) {
    GS_ASSERT_OK(in_a->Consume(OnePointBatch(0, i)));
  }
  GS_ASSERT_OK(scheduler.WaitIdle());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].processed, 100u);
  // Pipelines can join a running pool.
  CollectingSink sink_b;
  EventSink* in_b = scheduler.AddPipeline("late", &sink_b);
  GS_ASSERT_OK(in_b->Consume(OnePointBatch(0, 7)));
  GS_ASSERT_OK(scheduler.WaitIdle());
  EXPECT_EQ(sink_b.TotalPoints(), 1u);
  GS_ASSERT_OK(scheduler.Stop());
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kLongestQueueFirst),
               "longest-queue-first");
}

}  // namespace
}  // namespace geostreams
