#include "stream/scheduler.h"

#include <gtest/gtest.h>

#include <atomic>

#include "ops/restriction_ops.h"
#include "stream/pipeline.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

StreamEvent OnePointBatch(int64_t frame, int32_t col) {
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = frame;
  batch->band_count = 1;
  batch->Append1(col, 0, frame, 1.0);
  return StreamEvent::Batch(batch);
}

TEST(SchedulerTest, DeliversToAllPipelines) {
  CollectingSink a, b;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in_a = scheduler.AddPipeline("a", &a);
  EventSink* in_b = scheduler.AddPipeline("b", &b);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(6, 4);
  GS_ASSERT_OK(PushFrame(in_a, lattice, 0));
  GS_ASSERT_OK(PushFrame(in_b, lattice, 0));
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(a.TotalPoints(), 24u);
  EXPECT_EQ(b.TotalPoints(), 24u);
  EXPECT_TRUE(testing_util::WellFormedFrames(a.events()));
}

TEST(SchedulerTest, PerQueueOrderPreserved) {
  CollectingSink sink;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("q", &sink);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 200; ++i) {
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i)));
  }
  GS_ASSERT_OK(scheduler.Stop());
  ASSERT_EQ(sink.events().size(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sink.events()[static_cast<size_t>(i)].batch->cols[0], i);
  }
}

TEST(SchedulerTest, OverflowShedsBatchesButNeverControlEvents) {
  // A pipeline that can never drain (scheduler not started yet can't
  // be used; instead use a tiny capacity and burst before the worker
  // catches up is racy) — so test the bound directly: enqueue from the
  // worker's own perspective by using capacity 4 and a slow consumer.
  class SlowSink : public EventSink {
   public:
    Status Consume(const StreamEvent& event) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++consumed_;
      if (event.kind != EventKind::kPointBatch) ++control_;
      return Status::OK();
    }
    std::atomic<int> consumed_{0};
    std::atomic<int> control_{0};
  };
  SlowSink slow;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin,
                           /*queue_capacity=*/4);
  EventSink* in = scheduler.AddPipeline("slow", &slow);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(4, 4);
  // Burst far more than capacity.
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = lattice;
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameBegin(info)));
  for (int i = 0; i < 200; ++i) {
    GS_ASSERT_OK(in->Consume(OnePointBatch(0, i % 4)));
  }
  GS_ASSERT_OK(in->Consume(StreamEvent::FrameEnd(info)));
  GS_ASSERT_OK(scheduler.Stop());
  auto stats = scheduler.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].enqueued, 202u);
  EXPECT_GT(stats[0].dropped, 0u);
  EXPECT_EQ(stats[0].processed + stats[0].dropped, 202u);
  // Frame metadata survived the shedding.
  EXPECT_EQ(slow.control_.load(), 2);
}

TEST(SchedulerTest, LongestQueueFirstDrainsBacklog) {
  CollectingSink a, b;
  QueryScheduler scheduler(SchedulingPolicy::kLongestQueueFirst);
  EventSink* in_a = scheduler.AddPipeline("a", &a);
  EventSink* in_b = scheduler.AddPipeline("b", &b);
  GS_ASSERT_OK(scheduler.Start());
  for (int i = 0; i < 50; ++i) {
    GS_ASSERT_OK(in_a->Consume(OnePointBatch(0, i)));
    if (i % 10 == 0) {
      GS_ASSERT_OK(in_b->Consume(OnePointBatch(0, i)));
    }
  }
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(a.TotalPoints(), 50u);
  EXPECT_EQ(b.TotalPoints(), 5u);
}

TEST(SchedulerTest, RunsRealPipelines) {
  // Scheduler feeding an actual operator chain.
  Pipeline pipeline;
  pipeline.Add(std::make_unique<SpatialRestrictionOp>(
      "r", MakeBBoxRegion(-125.0, 40.0, -123.9, 45.0)));
  CollectingSink sink;
  GS_ASSERT_OK(pipeline.Finish(&sink));
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("restricted", &pipeline);
  GS_ASSERT_OK(scheduler.Start());
  GridLattice lattice = LatLonLattice(10, 8);
  GS_ASSERT_OK(PushFrame(in, lattice, 0));
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(sink.TotalPoints(), 2u * 8u);
}

TEST(SchedulerTest, Lifecycle) {
  CollectingSink sink;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("q", &sink);
  // Enqueue before Start is rejected.
  EXPECT_EQ(in->Consume(OnePointBatch(0, 0)).code(),
            StatusCode::kFailedPrecondition);
  GS_ASSERT_OK(scheduler.Start());
  EXPECT_EQ(scheduler.Start().code(), StatusCode::kFailedPrecondition);
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  GS_ASSERT_OK(scheduler.Stop());
  // Stop is idempotent.
  GS_ASSERT_OK(scheduler.Stop());
  EXPECT_EQ(sink.TotalPoints(), 1u);
}

TEST(SchedulerTest, PropagatesDownstreamErrors) {
  class FailingSink : public EventSink {
   public:
    Status Consume(const StreamEvent&) override {
      return Status::Internal("boom");
    }
  };
  FailingSink failing;
  QueryScheduler scheduler(SchedulingPolicy::kRoundRobin);
  EventSink* in = scheduler.AddPipeline("failing", &failing);
  GS_ASSERT_OK(scheduler.Start());
  GS_ASSERT_OK(in->Consume(OnePointBatch(0, 0)));
  EXPECT_EQ(scheduler.Stop().code(), StatusCode::kInternal);
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kLongestQueueFirst),
               "longest-queue-first");
}

}  // namespace
}  // namespace geostreams
