#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/lexer.h"

namespace geostreams {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Tokenize("region(g1, bbox(-1.5, 2, 3e2, \"x\"))");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = *tokens;
  EXPECT_EQ(t[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[0].text, "region");
  EXPECT_EQ(t[1].kind, TokenKind::kLParen);
  EXPECT_EQ(t[2].text, "g1");
  EXPECT_EQ(t[3].kind, TokenKind::kComma);
  EXPECT_EQ(t[4].text, "bbox");
  EXPECT_EQ(t[6].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ(t[6].number, -1.5);
  EXPECT_DOUBLE_EQ(t[10].number, 300.0);
  EXPECT_EQ(t[12].kind, TokenKind::kString);
  EXPECT_EQ(t[12].text, "x");
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, IdentifiersAllowDotsAndColons) {
  auto tokens = Tokenize("goes.band1 utm:10n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "goes.band1");
  EXPECT_EQ((*tokens)[1].text, "utm:10n");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("region($)").ok());
}

TEST(ParserTest, BareStreamRef) {
  auto e = ParseQuery("goes.band1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kStreamRef);
  EXPECT_EQ((*e)->stream_name, "goes.band1");
}

TEST(ParserTest, RegionBBox) {
  auto e = ParseQuery("region(g, bbox(-125, 32, -114, 42))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kSpatialRestrict);
  EXPECT_EQ((*e)->region->kind(), RegionKind::kBBox);
  EXPECT_TRUE((*e)->region->Contains(-120.0, 38.0));
  EXPECT_FALSE((*e)->region->Contains(-100.0, 38.0));
}

TEST(ParserTest, RegionShapes) {
  EXPECT_TRUE(ParseQuery("region(g, polygon(0,0, 10,0, 5,8))").ok());
  EXPECT_TRUE(ParseQuery("region(g, disk(1, 2, 3))").ok());
  EXPECT_TRUE(ParseQuery("region(g, all())").ok());
  EXPECT_TRUE(ParseQuery("region(g, points(0.5, 1,2, 3,4))").ok());
  auto u = ParseQuery(
      "region(g, union(bbox(0,0,1,1), disk(5,5,1)))");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->region->kind(), RegionKind::kUnion);
  auto i = ParseQuery(
      "region(g, intersection(bbox(0,0,4,4), bbox(2,2,6,6)))");
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE((*i)->region->Contains(3.0, 3.0));
  EXPECT_FALSE((*i)->region->Contains(1.0, 1.0));
}

TEST(ParserTest, RegionErrors) {
  EXPECT_FALSE(ParseQuery("region(g, bbox(1, 2, 3))").ok());
  EXPECT_FALSE(ParseQuery("region(g, polygon(0,0, 1,1))").ok());
  EXPECT_FALSE(ParseQuery("region(g, blob(1))").ok());
  EXPECT_FALSE(ParseQuery("region(g)").ok());
}

TEST(ParserTest, TimeSpecs) {
  auto e = ParseQuery("time(g, range(5, 10), instants(20), every(96, 40, 55))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kTemporalRestrict);
  EXPECT_TRUE((*e)->times.Contains(7));
  EXPECT_TRUE((*e)->times.Contains(20));
  EXPECT_TRUE((*e)->times.Contains(96 + 50));
  EXPECT_FALSE((*e)->times.Contains(15));
}

TEST(ParserTest, ValueRestrictions) {
  auto e = ParseQuery("vrange(g, 0, 0.2, 0.8)");
  ASSERT_TRUE(e.ok());
  ASSERT_EQ((*e)->ranges.size(), 1u);
  EXPECT_EQ((*e)->ranges[0].band, 0);
  EXPECT_DOUBLE_EQ((*e)->ranges[0].lo, 0.2);
  auto multi = ParseQuery("vrange(g, 0, 0, 1, 2, -5, 5)");
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ((*multi)->ranges.size(), 2u);
  EXPECT_FALSE(ParseQuery("vrange(g)").ok());
  EXPECT_FALSE(ParseQuery("vrange(g, 0.5, 0, 1)").ok());  // band not int
}

TEST(ParserTest, ValueTransforms) {
  auto g = ParseQuery("gray(g)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ((*g)->kind, ExprKind::kValueTransform);
  EXPECT_EQ((*g)->value_spec.kind, ValueFnSpec::Kind::kGray);
  auto r = ParseQuery("rescale(g, 2.0, -1.0)");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ((*r)->value_spec.a, 2.0);
  EXPECT_DOUBLE_EQ((*r)->value_spec.b, -1.0);
  EXPECT_TRUE(ParseQuery("clampv(g, 0, 1)").ok());
  EXPECT_TRUE(ParseQuery("absv(g)").ok());
  auto b = ParseQuery("band(g, 2)");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->value_spec.band, 2);
}

TEST(ParserTest, StretchModes) {
  auto lin = ParseQuery("stretch(g, \"linear\")");
  ASSERT_TRUE(lin.ok());
  EXPECT_EQ((*lin)->stretch.mode, StretchMode::kLinear);
  auto he = ParseQuery("stretch(g, \"histeq\")");
  ASSERT_TRUE(he.ok());
  EXPECT_EQ((*he)->stretch.mode, StretchMode::kHistogramEqualization);
  auto ga = ParseQuery("stretch(g, \"gauss\")");
  ASSERT_TRUE(ga.ok());
  EXPECT_EQ((*ga)->stretch.mode, StretchMode::kGaussian);
  auto clip = ParseQuery("stretch(g, \"linear\", 0.02)");
  ASSERT_TRUE(clip.ok());
  EXPECT_DOUBLE_EQ((*clip)->stretch.clip_fraction, 0.02);
  EXPECT_FALSE(ParseQuery("stretch(g, \"cubic\")").ok());
}

TEST(ParserTest, SpatialTransforms) {
  auto m = ParseQuery("magnify(g, 3)");
  ASSERT_TRUE(m.ok());
  EXPECT_EQ((*m)->kind, ExprKind::kMagnify);
  EXPECT_EQ((*m)->factor, 3);
  auto r = ParseQuery("reduce(g, 2)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, ExprKind::kReduce);
  EXPECT_FALSE(ParseQuery("magnify(g, 0)").ok());
  EXPECT_FALSE(ParseQuery("reduce(g, 1.5)").ok());
}

TEST(ParserTest, Reproject) {
  auto e = ParseQuery("reproject(g, \"utm:10n\")");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kReproject);
  EXPECT_EQ((*e)->target_crs, "utm:10n");
  EXPECT_EQ((*e)->kernel, ResampleKernel::kNearest);
  auto bi = ParseQuery("reproject(g, \"latlon\", \"bilinear\")");
  ASSERT_TRUE(bi.ok());
  EXPECT_EQ((*bi)->kernel, ResampleKernel::kBilinear);
  EXPECT_FALSE(ParseQuery("reproject(g, \"latlon\", \"cubic\")").ok());
}

TEST(ParserTest, Compositions) {
  for (const char* fn : {"add", "sub", "mul", "div", "sup", "inf"}) {
    auto e = ParseQuery(std::string(fn) + "(a, b)");
    ASSERT_TRUE(e.ok()) << fn;
    EXPECT_EQ((*e)->kind, ExprKind::kCompose) << fn;
  }
  auto ndvi = ParseQuery("ndvi(nir, vis)");
  ASSERT_TRUE(ndvi.ok());
  EXPECT_EQ((*ndvi)->kind, ExprKind::kNdviMacro);
}

TEST(ParserTest, Aggregate) {
  auto e = ParseQuery(
      "aggregate(g, \"avg\", 4, bbox(0,0,1,1), bbox(2,2,3,3))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kAggregate);
  EXPECT_EQ((*e)->agg_fn, AggregateFn::kAvg);
  EXPECT_EQ((*e)->agg_window, 4);
  EXPECT_EQ((*e)->agg_regions.size(), 2u);
  EXPECT_FALSE(ParseQuery("aggregate(g, \"avg\", 4)").ok());
  EXPECT_FALSE(ParseQuery("aggregate(g, \"median\", 4, bbox(0,0,1,1))").ok());
  EXPECT_FALSE(ParseQuery("aggregate(g, \"avg\", 0, bbox(0,0,1,1))").ok());
}

TEST(ParserTest, Sec34ExampleQuery) {
  // The paper's example: NDVI, value transform, re-projection to UTM,
  // then a spatial restriction in UTM coordinates.
  auto e = ParseQuery(
      "region(reproject(rescale(div(sub(g1, g2), add(g1, g2)), 100, 0), "
      "\"utm:10n\"), bbox(500000, 3500000, 800000, 4700000))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->kind, ExprKind::kSpatialRestrict);
  EXPECT_EQ((*e)->child->kind, ExprKind::kReproject);
  EXPECT_EQ((*e)->child->child->kind, ExprKind::kValueTransform);
  EXPECT_EQ((*e)->child->child->child->kind, ExprKind::kCompose);
  EXPECT_EQ((*e)->child->child->child->gamma, ComposeFn::kDivide);
}

TEST(ParserTest, NestedQueriesRoundTripThroughToString) {
  const char* queries[] = {
      "region(goes.band1, bbox(-125, 32, -114, 42))",
      "ndvi(goes.band2, goes.band1)",
      "time(vrange(goes.band4, 0, 200, 250), range(0, 100))",
      "reduce(magnify(goes.band1, 2), 2)",
      "aggregate(ndvi(a, b), \"avg\", 3, bbox(0, 0, 1, 1))",
  };
  for (const char* q : queries) {
    auto e1 = ParseQuery(q);
    ASSERT_TRUE(e1.ok()) << q;
    auto e2 = ParseQuery((*e1)->ToString());
    ASSERT_TRUE(e2.ok()) << "re-parse of " << (*e1)->ToString();
    EXPECT_EQ((*e1)->ToString(), (*e2)->ToString()) << q;
  }
}

TEST(ParserTest, GeneralErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("region(g, bbox(0,0,1,1)) trailing").ok());
  EXPECT_FALSE(ParseQuery("unknownfn(g)").ok());
  EXPECT_FALSE(ParseQuery("add(a)").ok());
  EXPECT_FALSE(ParseQuery("add(a, b, c)").ok());
  EXPECT_FALSE(ParseQuery("region(g, bbox(0,0,1,1)").ok());  // missing )
}


TEST(ParserTest, StackAndRgb) {
  auto st = ParseQuery("stack(a, b)");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->kind, ExprKind::kBandStack);
  auto rgb = ParseQuery("rgb(r, g, b)");
  ASSERT_TRUE(rgb.ok());
  EXPECT_EQ((*rgb)->kind, ExprKind::kBandStack);
  EXPECT_EQ((*rgb)->child->kind, ExprKind::kBandStack);
  EXPECT_EQ((*rgb)->right->stream_name, "b");
  EXPECT_EQ((*rgb)->child->child->stream_name, "r");
  EXPECT_FALSE(ParseQuery("stack(a)").ok());
  EXPECT_FALSE(ParseQuery("rgb(a, b)").ok());
}

TEST(ParserTest, AggregateSlide) {
  auto e = ParseQuery("aggregate(g, \"avg\", 6, 2, bbox(0,0,1,1))");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->agg_window, 6);
  EXPECT_EQ((*e)->agg_slide, 2);
  // Round-trips through ToString.
  auto again = ParseQuery((*e)->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->agg_slide, 2);
  // Slide must be in [1, window].
  EXPECT_FALSE(ParseQuery("aggregate(g, \"avg\", 6, 9, bbox(0,0,1,1))").ok());
  EXPECT_FALSE(ParseQuery("aggregate(g, \"avg\", 6, 0, bbox(0,0,1,1))").ok());
}

}  // namespace
}  // namespace geostreams
