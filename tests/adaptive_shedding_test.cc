#include "stream/adaptive_shedding.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::LatLonLattice;
using testing_util::PushFrame;

TEST(AdaptiveSheddingTest, DecreasesUnderPressureRecoversOnSlack) {
  size_t backlog = 0;
  LoadSheddingOp shed("s", SheddingMode::kDropPoints, 1.0);
  AdaptiveSheddingOptions options;
  options.high_watermark = 100;
  options.low_watermark = 10;
  AdaptiveShedController controller([&backlog] { return backlog; },
                                    options);
  controller.Control(&shed);
  EXPECT_DOUBLE_EQ(shed.keep_fraction(), 1.0);

  // Sustained pressure: multiplicative decrease toward the floor.
  backlog = 1000;
  EXPECT_DOUBLE_EQ(controller.Observe(), 0.5);
  EXPECT_DOUBLE_EQ(controller.Observe(), 0.25);
  EXPECT_DOUBLE_EQ(shed.keep_fraction(), 0.25);
  for (int i = 0; i < 10; ++i) controller.Observe();
  EXPECT_DOUBLE_EQ(controller.current_keep(), options.min_keep);
  EXPECT_GT(controller.decreases(), 2u);

  // Slack: additive recovery back to 1.0.
  backlog = 0;
  double prev = controller.current_keep();
  for (int i = 0; i < 50 && controller.current_keep() < 1.0; ++i) {
    const double now = controller.Observe();
    EXPECT_GE(now, prev);
    prev = now;
  }
  EXPECT_DOUBLE_EQ(controller.current_keep(), 1.0);
  EXPECT_DOUBLE_EQ(shed.keep_fraction(), 1.0);
}

TEST(AdaptiveSheddingTest, HoldsSteadyBetweenWatermarks) {
  size_t backlog = 50;  // between low (10) and high (100)
  AdaptiveSheddingOptions options;
  options.high_watermark = 100;
  options.low_watermark = 10;
  AdaptiveShedController controller([&backlog] { return backlog; },
                                    options);
  LoadSheddingOp shed("s", SheddingMode::kDropRows, 1.0);
  controller.Control(&shed);
  // Drop once, then sit in the dead band: keep must not oscillate.
  backlog = 1000;
  controller.Observe();
  backlog = 50;
  const double settled = controller.current_keep();
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(controller.Observe(), settled);
  }
}

TEST(AdaptiveSheddingTest, ControlsMultipleOperators) {
  size_t backlog = 1000;
  AdaptiveShedController controller([&backlog] { return backlog; });
  LoadSheddingOp a("a", SheddingMode::kDropPoints, 1.0);
  LoadSheddingOp b("b", SheddingMode::kDropFrames, 1.0);
  controller.Control(&a);
  controller.Control(&b);
  controller.Observe();
  EXPECT_DOUBLE_EQ(a.keep_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(b.keep_fraction(), 0.5);
}

TEST(AdaptiveSheddingTest, RuntimeKeepChangeAffectsTheStream) {
  // End to end: halving keep mid-stream halves the delivered points of
  // later frames only.
  GridLattice lattice = LatLonLattice(32, 32);
  LoadSheddingOp shed("s", SheddingMode::kDropPoints, 1.0);
  CollectingSink sink;
  shed.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(shed.input(0), lattice, 0));
  const uint64_t full = sink.TotalPoints();
  EXPECT_EQ(full, 1024u);
  shed.set_keep_fraction(0.25);
  GS_ASSERT_OK(PushFrame(shed.input(0), lattice, 1));
  const uint64_t after = sink.TotalPoints() - full;
  EXPECT_NEAR(static_cast<double>(after), 256.0, 70.0);
}

TEST(AdaptiveSheddingTest, NullBacklogMeansNoPressure) {
  AdaptiveShedController controller(nullptr);
  EXPECT_DOUBLE_EQ(controller.Observe(), 1.0);
  EXPECT_EQ(controller.decreases(), 0u);
}

}  // namespace
}  // namespace geostreams
