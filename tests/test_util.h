// Shared helpers for the GeoStreams test suite.

#ifndef GEOSTREAMS_TESTS_TEST_UTIL_H_
#define GEOSTREAMS_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/geostream.h"
#include "core/stream_event.h"
#include "geo/geographic_crs.h"
#include "raster/frame_assembler.h"
#include "raster/raster.h"
#include "stream/operator.h"

namespace geostreams {
namespace testing_util {

#define GS_ASSERT_OK(expr)                                        \
  do {                                                            \
    const ::geostreams::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

#define GS_EXPECT_OK(expr)                                        \
  do {                                                            \
    const ::geostreams::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                      \
  } while (0)

/// A small lat/lon lattice around a configurable origin: w x h cells
/// of `step` degrees, row 0 at the northern edge.
inline GridLattice LatLonLattice(int64_t w, int64_t h, double step = 0.5,
                                 double west = -125.0,
                                 double north = 45.0) {
  return GridLattice(GeographicCrs::Instance(), west + step / 2.0,
                     north - step / 2.0, step, -step, w, h);
}

/// A deterministic descriptor over LatLonLattice.
inline GeoStreamDescriptor TestDescriptor(
    const std::string& name, int64_t w = 16, int64_t h = 12,
    PointOrganization org = PointOrganization::kRowByRow) {
  return GeoStreamDescriptor(name, ValueSet::ReflectanceF32(),
                             LatLonLattice(w, h), org,
                             TimestampPolicy::kScanSectorId);
}

/// Value function used by synthetic frames: deterministic, smooth in
/// cell coordinates, distinct per frame id.
inline double TestValue(int64_t frame, int64_t col, int64_t row) {
  return 0.01 * static_cast<double>(col) +
         0.001 * static_cast<double>(row) +
         0.1 * static_cast<double>(frame % 7);
}

/// Pushes one full frame (row-by-row batches) into `sink` using the
/// lattice geometry. Timestamps equal the frame id.
inline Status PushFrame(EventSink* sink, const GridLattice& lattice,
                        int64_t frame_id) {
  FrameInfo info;
  info.frame_id = frame_id;
  info.lattice = lattice;
  info.expected_points = lattice.num_cells();
  GEOSTREAMS_RETURN_IF_ERROR(sink->Consume(StreamEvent::FrameBegin(info)));
  for (int64_t row = 0; row < lattice.height(); ++row) {
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = frame_id;
    batch->band_count = 1;
    for (int64_t col = 0; col < lattice.width(); ++col) {
      batch->Append1(static_cast<int32_t>(col), static_cast<int32_t>(row),
                     frame_id, TestValue(frame_id, col, row));
    }
    GEOSTREAMS_RETURN_IF_ERROR(
        sink->Consume(StreamEvent::Batch(std::move(batch))));
  }
  return sink->Consume(StreamEvent::FrameEnd(info));
}

/// Collects the points of all batches into (col, row, t) -> value.
inline std::map<std::tuple<int32_t, int32_t, int64_t>, double>
CollectPoints(const std::vector<StreamEvent>& events, int band = 0) {
  std::map<std::tuple<int32_t, int32_t, int64_t>, double> out;
  for (const StreamEvent& e : events) {
    if (e.kind != EventKind::kPointBatch || !e.batch) continue;
    const PointBatch& b = *e.batch;
    for (size_t i = 0; i < b.size(); ++i) {
      out[{b.cols[i], b.rows[i], b.timestamps[i]}] = b.ValueAt(i, band);
    }
  }
  return out;
}

/// Assembles the first complete frame in `events` into a raster.
inline Result<Raster> AssembleFirstFrame(
    const std::vector<StreamEvent>& events, int band_count = 1) {
  FrameAssembler assembler(/*nodata=*/-999.0);
  bool assembled_any = false;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kFrameBegin:
        GEOSTREAMS_RETURN_IF_ERROR(assembler.Begin(e.frame, band_count));
        assembled_any = true;
        break;
      case EventKind::kPointBatch:
        if (assembler.active()) {
          GEOSTREAMS_RETURN_IF_ERROR(assembler.Add(*e.batch));
        }
        break;
      case EventKind::kFrameEnd:
        if (assembler.active()) {
          GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame,
                                      assembler.Finish());
          return std::move(frame.raster);
        }
        break;
      case EventKind::kStreamEnd:
        break;
    }
  }
  if (assembled_any && assembler.active()) {
    GEOSTREAMS_ASSIGN_OR_RETURN(AssembledFrame frame, assembler.Finish());
    return std::move(frame.raster);
  }
  return Status::NotFound("no complete frame in events");
}

/// Checks frame events are well-formed: begins/ends alternate, ids
/// match, batches only inside frames (or entirely outside for
/// point-by-point streams).
inline ::testing::AssertionResult WellFormedFrames(
    const std::vector<StreamEvent>& events) {
  bool in_frame = false;
  int64_t current = -1;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kFrameBegin:
        if (in_frame) {
          return ::testing::AssertionFailure()
                 << "nested FrameBegin for frame " << e.frame.frame_id;
        }
        in_frame = true;
        current = e.frame.frame_id;
        break;
      case EventKind::kFrameEnd:
        if (!in_frame || e.frame.frame_id != current) {
          return ::testing::AssertionFailure()
                 << "unmatched FrameEnd for frame " << e.frame.frame_id;
        }
        in_frame = false;
        break;
      case EventKind::kPointBatch:
        if (in_frame && e.batch && e.batch->frame_id != current) {
          return ::testing::AssertionFailure()
                 << "batch for frame " << e.batch->frame_id
                 << " inside frame " << current;
        }
        break;
      case EventKind::kStreamEnd:
        if (in_frame) {
          return ::testing::AssertionFailure()
                 << "StreamEnd inside frame " << current;
        }
        break;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_util
}  // namespace geostreams

// Catalog helpers need the analyzer; keep the include at the end so
// lightweight tests that only need the helpers above stay cheap.
#include "query/analyzer.h"

namespace geostreams {
namespace testing_util {

/// Standard test catalog: two aligned single-band GOES-style bands
/// ("g.nir", "g.vis"), a 3-band airborne camera ("cam.rgb",
/// image-by-image), and a point-by-point LIDAR stream ("lidar.z").
inline StreamCatalog MakeTestCatalog() {
  StreamCatalog catalog;
  GridLattice lattice = LatLonLattice(16, 12);
  auto st = catalog.Register(GeoStreamDescriptor(
      "g.nir", ValueSet::ReflectanceF32(), lattice,
      PointOrganization::kRowByRow, TimestampPolicy::kScanSectorId));
  st = catalog.Register(GeoStreamDescriptor(
      "g.vis", ValueSet::ReflectanceF32(), lattice,
      PointOrganization::kRowByRow, TimestampPolicy::kScanSectorId));
  st = catalog.Register(GeoStreamDescriptor(
      "cam.rgb", ValueSet::RgbU8(), LatLonLattice(8, 8, 0.25),
      PointOrganization::kImageByImage, TimestampPolicy::kScanSectorId));
  st = catalog.Register(GeoStreamDescriptor(
      "lidar.z", ValueSet::RadianceF32(), LatLonLattice(8, 8, 0.125),
      PointOrganization::kPointByPoint, TimestampPolicy::kMeasurementTime));
  (void)st;
  return catalog;
}

}  // namespace testing_util
}  // namespace geostreams

#endif  // GEOSTREAMS_TESTS_TEST_UTIL_H_
