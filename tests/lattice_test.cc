#include "geo/lattice.h"

#include <gtest/gtest.h>

#include "geo/geographic_crs.h"
#include "geo/mercator_crs.h"

namespace geostreams {
namespace {

GridLattice MakeLattice() {
  // 10 x 8 cells, 0.5 degree spacing, row 0 at the north.
  return GridLattice(GeographicCrs::Instance(), -124.75, 44.75, 0.5, -0.5,
                     10, 8);
}

TEST(GridLatticeTest, Validate) {
  EXPECT_TRUE(MakeLattice().Validate().ok());
  EXPECT_FALSE(GridLattice().Validate().ok());  // no CRS
  EXPECT_FALSE(GridLattice(GeographicCrs::Instance(), 0, 0, 0.5, -0.5, 0, 8)
                   .Validate()
                   .ok());
  EXPECT_FALSE(GridLattice(GeographicCrs::Instance(), 0, 0, 0.0, -0.5, 8, 8)
                   .Validate()
                   .ok());
}

TEST(GridLatticeTest, CellCoordinates) {
  GridLattice lat = MakeLattice();
  EXPECT_DOUBLE_EQ(lat.CellX(0), -124.75);
  EXPECT_DOUBLE_EQ(lat.CellX(9), -120.25);
  EXPECT_DOUBLE_EQ(lat.CellY(0), 44.75);
  EXPECT_DOUBLE_EQ(lat.CellY(7), 41.25);
}

TEST(GridLatticeTest, NearestCellRoundTrips) {
  GridLattice lat = MakeLattice();
  for (int64_t r = 0; r < lat.height(); ++r) {
    for (int64_t c = 0; c < lat.width(); ++c) {
      int64_t col = -1, row = -1;
      lat.NearestCell(lat.CellX(c), lat.CellY(r), &col, &row);
      EXPECT_EQ(col, c);
      EXPECT_EQ(row, r);
    }
  }
}

TEST(GridLatticeTest, NearestCellOutside) {
  GridLattice lat = MakeLattice();
  int64_t col, row;
  lat.NearestCell(-130.0, 50.0, &col, &row);
  EXPECT_FALSE(lat.ContainsCell(col, row));
}

TEST(GridLatticeTest, ExtentPadsHalfCell) {
  GridLattice lat = MakeLattice();
  BoundingBox ext = lat.Extent();
  EXPECT_DOUBLE_EQ(ext.min_x, -125.0);
  EXPECT_DOUBLE_EQ(ext.max_x, -120.0);
  EXPECT_DOUBLE_EQ(ext.max_y, 45.0);
  EXPECT_DOUBLE_EQ(ext.min_y, 41.0);
}

TEST(GridLatticeTest, AlignedWith) {
  GridLattice a = MakeLattice();
  // Same grid shifted by whole cells: aligned.
  GridLattice b(GeographicCrs::Instance(), -124.75 + 2 * 0.5, 44.75 - 0.5,
                0.5, -0.5, 5, 5);
  EXPECT_TRUE(a.AlignedWith(b));
  EXPECT_TRUE(b.AlignedWith(a));
  // Shifted by half a cell: not aligned.
  GridLattice c(GeographicCrs::Instance(), -124.5, 44.75, 0.5, -0.5, 5, 5);
  EXPECT_FALSE(a.AlignedWith(c));
  // Different spacing: not aligned.
  GridLattice d(GeographicCrs::Instance(), -124.75, 44.75, 0.25, -0.25, 5,
                5);
  EXPECT_FALSE(a.AlignedWith(d));
  // Different CRS: not aligned.
  GridLattice e(MercatorCrs::Instance(), -124.75, 44.75, 0.5, -0.5, 10, 8);
  EXPECT_FALSE(a.AlignedWith(e));
}

TEST(GridLatticeTest, EqualityIsExact) {
  EXPECT_TRUE(MakeLattice() == MakeLattice());
  GridLattice other(GeographicCrs::Instance(), -124.75, 44.75, 0.5, -0.5,
                    10, 9);
  EXPECT_FALSE(MakeLattice() == other);
}

TEST(GridLatticeTest, MagnifiedPreservesExtent) {
  GridLattice lat = MakeLattice();
  GridLattice mag = lat.Magnified(3);
  EXPECT_EQ(mag.width(), 30);
  EXPECT_EQ(mag.height(), 24);
  const BoundingBox a = lat.Extent();
  const BoundingBox b = mag.Extent();
  EXPECT_NEAR(a.min_x, b.min_x, 1e-9);
  EXPECT_NEAR(a.max_x, b.max_x, 1e-9);
  EXPECT_NEAR(a.min_y, b.min_y, 1e-9);
  EXPECT_NEAR(a.max_y, b.max_y, 1e-9);
}

TEST(GridLatticeTest, ReducedRoundsUp) {
  GridLattice lat = MakeLattice();  // 10 x 8
  GridLattice red = lat.Reduced(3);
  EXPECT_EQ(red.width(), 4);   // ceil(10/3)
  EXPECT_EQ(red.height(), 3);  // ceil(8/3)
  EXPECT_DOUBLE_EQ(red.dx(), 1.5);
  EXPECT_DOUBLE_EQ(red.dy(), -1.5);
}

TEST(GridLatticeTest, MagnifyThenReduceRestoresGeometry) {
  GridLattice lat = MakeLattice();
  GridLattice back = lat.Magnified(4).Reduced(4);
  EXPECT_TRUE(lat == back) << lat.ToString() << " vs " << back.ToString();
}

}  // namespace
}  // namespace geostreams
