// Randomized query property tests.
//
// A seeded generator builds random-but-valid query trees over a
// 2-band generated instrument, then checks, for every seed:
//  (1) the textual form re-parses to the same tree (print/parse
//      round-trip);
//  (2) analysis succeeds and every node is a valid GeoStream
//      (closure under random composition);
//  (3) the optimized plan delivers exactly the points of the naive
//      plan (rewrite soundness beyond the hand-picked cases);
//  (4) random garbage never crashes the lexer/parser.

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "common/math_util.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/planner.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;

/// Deterministic PRNG stream for one seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 0x9E3779B97F4A7C15ULL + 1) {}

  uint64_t Next() { return state_ = Mix64(state_); }
  double Unit() { return HashToUnit(Next()); }
  int Int(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(Unit() * (hi - lo + 1)) % (hi - lo + 1);
  }

 private:
  uint64_t state_;
};

constexpr double kLonLo = -125.0, kLonHi = -66.0;
constexpr double kLatLo = 24.0, kLatHi = 50.0;

ExprPtr RandomLeaf(Rng& rng) {
  return MakeStreamRef(rng.Unit() < 0.5 ? "g.band1" : "g.band2");
}

RegionPtr RandomRegion(Rng& rng) {
  const double x0 = kLonLo + rng.Unit() * (kLonHi - kLonLo);
  const double y0 = kLatLo + rng.Unit() * (kLatHi - kLatLo);
  const double w = 2.0 + rng.Unit() * 30.0;
  const double h = 2.0 + rng.Unit() * 15.0;
  switch (rng.Int(0, 2)) {
    case 0:
      return MakeBBoxRegion(x0, y0, x0 + w, y0 + h);
    case 1:
      return MakePolygonRegion(
          {{x0, y0}, {x0 + w, y0}, {x0 + w / 2.0, y0 + h}});
    default:
      return ConstraintRegion::Disk(x0, y0, 1.0 + rng.Unit() * 8.0);
  }
}

/// Builds a random single-band expression of bounded depth. Only
/// rewrite-relevant operators (pointwise transforms, restrictions,
/// compositions, shed, reduce/magnify) — stretches and re-projections
/// are intentionally excluded here because their conservative
/// semantics are covered by dedicated tests. `geom_ok` gates
/// lattice-changing transforms: beneath a binary node both inputs must
/// stay on the instrument lattice (Def. 10's alignment precondition).
ExprPtr RandomExpr(Rng& rng, int depth, bool geom_ok = true) {
  if (depth <= 0) return RandomLeaf(rng);
  switch (rng.Int(0, geom_ok ? 8 : 6)) {
    case 0:
      return MakeSpatialRestrict(RandomExpr(rng, depth - 1, geom_ok),
                                 RandomRegion(rng));
    case 1: {
      const int64_t lo = rng.Int(0, 3);
      return MakeTemporalRestrict(RandomExpr(rng, depth - 1, geom_ok),
                                  TimeSet::Range(lo, lo + rng.Int(0, 4)));
    }
    case 2: {
      const double lo = rng.Unit() * 0.4;
      return MakeValueRestrict(RandomExpr(rng, depth - 1, geom_ok),
                               {{0, lo, lo + 0.3 + rng.Unit() * 0.5}});
    }
    case 3: {
      const double a = 1.0 + rng.Unit() * 4.0;
      const double b = rng.Unit();
      ExprPtr e = MakeValueTransform(RandomExpr(rng, depth - 1, geom_ok),
                                     ValueFn());
      e->value_spec.kind = ValueFnSpec::Kind::kRescale;
      e->value_spec.a = a;
      e->value_spec.b = b;
      return e;
    }
    case 4:
      return MakeCompose(static_cast<ComposeFn>(rng.Int(0, 5)),
                         RandomExpr(rng, depth - 1, false),
                         RandomExpr(rng, depth - 1, false));
    case 5:
      return MakeNdvi(RandomExpr(rng, depth - 1, false),
                      RandomExpr(rng, depth - 1, false));
    case 6:
      return MakeShed(RandomExpr(rng, depth - 1, geom_ok),
                      static_cast<SheddingMode>(rng.Int(0, 2)),
                      0.3 + rng.Unit() * 0.7);
    case 7:
      return MakeMagnify(RandomExpr(rng, depth - 1, false), rng.Int(2, 3));
    default:
      return MakeReduce(RandomExpr(rng, depth - 1, false), rng.Int(2, 3));
  }
}

class QueryFuzz : public ::testing::TestWithParam<int> {
 protected:
  static StreamCatalog MakeGeneratorCatalog(StreamGenerator* gen) {
    StreamCatalog catalog;
    EXPECT_TRUE(gen->Init().ok());
    for (size_t b = 0; b < 2; ++b) {
      auto d = gen->Descriptor(b);
      EXPECT_TRUE(d.ok());
      Status st = catalog.Register(*d);
      EXPECT_TRUE(st.ok());
    }
    return catalog;
  }

  static InstrumentConfig Config() {
    InstrumentConfig config;
    config.crs_name = "latlon";
    config.cells_per_sector = 16 * 12;
    config.bands = {SpectralBand::kVisible, SpectralBand::kNearInfrared};
    config.name_prefix = "g";
    return config;
  }

  static std::map<std::tuple<int32_t, int32_t, int64_t>, double> Run(
      const ExprPtr& expr) {
    CollectingSink sink;
    auto plan = BuildPlan(expr, &sink);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return {};
    StreamGenerator gen(Config(), ScanSchedule::GoesRoutine());
    EXPECT_TRUE(gen.Init().ok());
    NullSink null;
    EventSink* b1 = (*plan)->input("g.band1");
    EventSink* b2 = (*plan)->input("g.band2");
    std::vector<EventSink*> sinks = {
        b1 ? b1 : static_cast<EventSink*>(&null),
        b2 ? b2 : static_cast<EventSink*>(&null)};
    Status st = gen.GenerateScans(0, 2, sinks);
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = gen.Finish(sinks);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return CollectPoints(sink.events());
  }
};

TEST_P(QueryFuzz, PrintParseRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  ExprPtr expr = RandomExpr(rng, 3);
  const std::string text = expr->ToString();
  auto reparsed = ParseQuery(text);
  ASSERT_TRUE(reparsed.ok())
      << "unparseable ToString: " << text << " -> "
      << reparsed.status().ToString();
  EXPECT_EQ((*reparsed)->ToString(), text);
}

TEST_P(QueryFuzz, ClosureUnderRandomComposition) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 5000);
  ExprPtr expr = RandomExpr(rng, 3);
  StreamGenerator gen(Config(), ScanSchedule::GoesRoutine());
  StreamCatalog catalog = MakeGeneratorCatalog(&gen);
  Status st = AnalyzeQuery(catalog, expr);
  ASSERT_TRUE(st.ok()) << expr->ToString() << ": " << st.ToString();
  std::function<void(const ExprPtr&)> check = [&](const ExprPtr& node) {
    if (!node) return;
    Status vst = node->out_desc.Validate();
    EXPECT_TRUE(vst.ok()) << ExprKindName(node->kind);
    check(node->child);
    check(node->right);
  };
  check(expr);
}

TEST_P(QueryFuzz, OptimizedPlanEqualsNaivePlan) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 9000);
  ExprPtr expr = RandomExpr(rng, 3);
  StreamGenerator gen(Config(), ScanSchedule::GoesRoutine());
  StreamCatalog catalog = MakeGeneratorCatalog(&gen);
  ASSERT_TRUE(AnalyzeQuery(catalog, expr).ok()) << expr->ToString();

  OptimizerOptions naive_opts;
  naive_opts.spatial_pushdown = false;
  naive_opts.temporal_pushdown = false;
  naive_opts.merge_restrictions = false;
  naive_opts.remove_trivial = false;
  naive_opts.fuse_ndvi_macro = false;
  auto naive = OptimizeQuery(catalog, expr, naive_opts);
  ASSERT_TRUE(naive.ok());
  auto optimized = OptimizeQuery(catalog, expr);
  ASSERT_TRUE(optimized.ok()) << expr->ToString();

  auto naive_points = Run(*naive);
  auto optimized_points = Run(*optimized);
  ASSERT_EQ(naive_points.size(), optimized_points.size())
      << expr->ToString();
  for (const auto& [key, v] : naive_points) {
    auto it = optimized_points.find(key);
    ASSERT_NE(it, optimized_points.end()) << expr->ToString();
    EXPECT_NEAR(it->second, v, 1e-9) << expr->ToString();
  }
}

TEST_P(QueryFuzz, GarbageInputNeverCrashes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 77000);
  // Random printable soup, plus mutations of a valid query.
  std::string soup;
  const int len = 1 + rng.Int(0, 80);
  for (int i = 0; i < len; ++i) {
    soup.push_back(static_cast<char>(32 + rng.Int(0, 94)));
  }
  auto r1 = ParseQuery(soup);
  (void)r1;  // any Status is fine; no crash, no UB
  std::string mutated =
      "region(ndvi(g.band2, g.band1), bbox(-120, 30, -100, 45))";
  const size_t pos = static_cast<size_t>(rng.Int(0, 20)) %
                     mutated.size();
  mutated[pos] = static_cast<char>(32 + rng.Int(0, 94));
  auto r2 = ParseQuery(mutated);
  if (r2.ok()) {
    StreamGenerator gen(Config(), ScanSchedule::GoesRoutine());
    StreamCatalog catalog = MakeGeneratorCatalog(&gen);
    Status st = AnalyzeQuery(catalog, *r2);
    (void)st;  // either outcome is acceptable; must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzz, ::testing::Range(1, 31));

}  // namespace
}  // namespace geostreams
