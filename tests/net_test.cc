// Network boundary tests: wire framing (strict decode), command
// dispatch (no sockets), per-client backpressure, and loopback
// end-to-end runs of the full TCP stack — control plane, streaming
// delivery, slow-consumer shedding, and RESTART recovery. Every
// server binds port 0 (ephemeral), so tests parallelize safely.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"

#include "net/client_session.h"
#include "net/command_dispatch.h"
#include "net/geostreams_client.h"
#include "net/net_server.h"
#include "net/socket_util.h"
#include "net/wire_protocol.h"
#include "obs/event_log.h"
#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol

FrameMessage SampleMessage() {
  FrameMessage message;
  message.query_id = 42;
  message.frame_id = 7;
  message.width = 3;
  message.height = 2;
  message.bands = 1;
  message.samples = {0.0, 1.5, -2.25, 3.125, 1e300, -0.5};
  return message;
}

TEST(WireProtocolTest, RoundTripSamples) {
  const FrameMessage original = SampleMessage();
  const std::vector<uint8_t> wire = EncodeFrameMessage(original);
  ASSERT_GE(wire.size(), kWireHeaderSize + kFramePreambleSize);
  auto decoded = DecodeFrameMessage(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->query_id, 42);
  EXPECT_EQ(decoded->frame_id, 7);
  EXPECT_EQ(decoded->width, 3u);
  EXPECT_EQ(decoded->height, 2u);
  EXPECT_EQ(decoded->bands, 1u);
  EXPECT_FALSE(decoded->png);
  EXPECT_EQ(decoded->samples, original.samples);
}

TEST(WireProtocolTest, RoundTripPng) {
  FrameMessage message;
  message.query_id = 1;
  message.frame_id = 2;
  message.width = 8;
  message.height = 8;
  message.bands = 1;
  message.png = true;
  message.png_bytes = {0x89, 'P', 'N', 'G', 0x0D, 0x0A, 0x1A, 0x0A, 0x00};
  const std::vector<uint8_t> wire = EncodeFrameMessage(message);
  auto decoded = DecodeFrameMessage(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->png);
  EXPECT_EQ(decoded->png_bytes, message.png_bytes);
}

TEST(WireProtocolTest, RejectsMalformedInputWithoutCrashing) {
  const std::vector<uint8_t> wire = EncodeFrameMessage(SampleMessage());

  // Truncations at every prefix length: never OK, never a crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto r = DecodeFrameMessage(wire.data(), len);
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }

  // Bad magic.
  std::vector<uint8_t> bad = wire;
  bad[0] = 'X';
  EXPECT_EQ(DecodeFrameMessage(bad.data(), bad.size()).status().code(),
            StatusCode::kInvalidArgument);

  // Flipped payload byte fails the CRC.
  bad = wire;
  bad[kWireHeaderSize + kFramePreambleSize + 3] ^= 0x40;
  auto r = DecodeFrameMessage(bad.data(), bad.size());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);

  // Length field pointing far beyond the limit.
  bad = wire;
  bad[8] = 0xFF;
  bad[9] = 0xFF;
  bad[10] = 0xFF;
  bad[11] = 0xFF;
  EXPECT_EQ(DecodeFrameMessage(bad.data(), bad.size()).status().code(),
            StatusCode::kInvalidArgument);

  // Pure garbage.
  std::vector<uint8_t> garbage(64, 0xA5);
  EXPECT_EQ(
      DecodeFrameMessage(garbage.data(), garbage.size()).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(FrameDecoderTest, DemultiplexesTextAndBinaryAcrossChunks) {
  const std::vector<uint8_t> wire = EncodeFrameMessage(SampleMessage());
  std::vector<uint8_t> stream;
  const std::string line1 = "OK QUERY 42\r\n";
  stream.insert(stream.end(), line1.begin(), line1.end());
  stream.insert(stream.end(), wire.begin(), wire.end());
  const std::string line2 = "OK PONG\n";
  stream.insert(stream.end(), line2.begin(), line2.end());

  FrameDecoder decoder;
  std::vector<FrameDecoder::Unit> units;
  // Dribble the bytes in 5-byte chunks; incomplete input must yield
  // nullopt, never an error or a partial unit.
  for (size_t off = 0; off < stream.size(); off += 5) {
    decoder.Feed(stream.data() + off, std::min<size_t>(5, stream.size() - off));
    for (;;) {
      auto unit = decoder.Next();
      ASSERT_TRUE(unit.ok()) << unit.status().ToString();
      if (!unit->has_value()) break;
      units.push_back(std::move(**unit));
    }
  }
  ASSERT_EQ(units.size(), 3u);
  ASSERT_TRUE(units[0].line.has_value());
  EXPECT_EQ(*units[0].line, "OK QUERY 42");  // \r\n stripped
  ASSERT_TRUE(units[1].frame.has_value());
  EXPECT_EQ(units[1].frame->query_id, 42);
  ASSERT_TRUE(units[2].line.has_value());
  EXPECT_EQ(*units[2].line, "OK PONG");
}

TEST(FrameDecoderTest, GarbageAfterMagicPoisonsTheStream) {
  // Only the FULL 4-byte magic selects the binary path; garbage after
  // it (bad type byte here) is desynchronization and stays fatal.
  FrameDecoder decoder;
  std::vector<uint8_t> junk(kWireHeaderSize, 0x00);
  junk[0] = 'G';
  junk[1] = 'S';
  junk[2] = 'F';
  junk[3] = '1';
  decoder.Feed(junk.data(), junk.size());
  auto first = decoder.Next();
  EXPECT_FALSE(first.ok());
  auto second = decoder.Next();  // the error is sticky
  EXPECT_FALSE(second.ok());
}

TEST(FrameDecoderTest, GLeadingTextStaysOnTheLinePath) {
  // 'G'-leading text ("GET /metrics", future verbs) must not be
  // mistaken for a binary frame even when the first bytes arrive
  // alone — the decoder waits until the 4-byte magic is decided.
  FrameDecoder decoder;
  const std::string request = "GET /metrics HTTP/1.0\r\n";
  decoder.Feed(reinterpret_cast<const uint8_t*>(request.data()), 2);
  auto pending = decoder.Next();
  ASSERT_TRUE(pending.ok()) << pending.status().ToString();
  EXPECT_FALSE(pending->has_value());  // "GE" could still become magic
  decoder.Feed(reinterpret_cast<const uint8_t*>(request.data()) + 2,
               request.size() - 2);
  auto unit = decoder.Next();
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  ASSERT_TRUE(unit->has_value());
  ASSERT_TRUE((*unit)->line.has_value());
  EXPECT_EQ(*(*unit)->line, "GET /metrics HTTP/1.0");

  // And a real binary frame still decodes right after it.
  const std::vector<uint8_t> wire = EncodeFrameMessage(SampleMessage());
  decoder.Feed(wire.data(), wire.size());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_TRUE(frame->has_value());
  EXPECT_TRUE((*frame)->frame.has_value());
}

// ---------------------------------------------------------------------------
// Command dispatch (no sockets)

class FakeHooks : public SessionHooks {
 public:
  Result<QueryId> RegisterClientQuery(const std::string& text) override {
    last_query = text;
    if (fail_register) return Status::ParseError("bad query");
    return QueryId{7};
  }
  Status UnregisterClientQuery(QueryId id) override {
    last_unregistered = id;
    return Status::OK();
  }
  std::string SessionStatsLine() override {
    return "enqueued=1 dropped=0 keep=1.00";
  }

  Result<QueryId> RegisterClientQuerySince(const std::string& text,
                                           int64_t since) override {
    last_query = text;
    last_since = since;
    if (fail_register) return Status::ParseError("bad query");
    return QueryId{8};
  }
  Status ControlAuth(const std::string& token) override {
    authorized = token == "sesame";
    return authorized ? Status::OK()
                      : Status::FailedPrecondition("control token rejected");
  }
  Status AuthorizeControl() override {
    if (!require_auth || authorized) return Status::OK();
    return Status::FailedPrecondition("control token required (AUTH <token>)");
  }

  std::string last_query;
  int64_t last_since = INT64_MIN;
  QueryId last_unregistered = -1;
  bool fail_register = false;
  bool require_auth = false;
  bool authorized = false;
};

TEST(CommandDispatchTest, CoreVerbs) {
  DsmsServer server;  // empty engine is enough for HEALTH
  FakeHooks hooks;
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "PING"), "OK PONG");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "  ping  "), "OK PONG");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "QUERY ndvi(a.b, a.c)"),
            "OK QUERY 7");
  EXPECT_EQ(hooks.last_query, "ndvi(a.b, a.c)");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "UNREGISTER 7"),
            "OK UNREGISTER 7");
  EXPECT_EQ(hooks.last_unregistered, 7);
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "HEALTH"), "OK HEALTH n=0");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "STATS"),
            "OK STATS enqueued=1 dropped=0 keep=1.00");
}

TEST(CommandDispatchTest, ErrorsAreErrResponses) {
  DsmsServer server;
  FakeHooks hooks;
  EXPECT_EQ(ExecuteCommand(&server, &hooks, ""),
            "ERR InvalidArgument empty command");
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "FROBNICATE"),
                         "ERR InvalidArgument unknown command"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "QUERY"),
                         "ERR InvalidArgument"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "UNREGISTER abc"),
                         "ERR InvalidArgument"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "RESTART 99"),
                         "ERR NotFound"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "DLQ 99"),
                         "ERR NotFound"));
  hooks.fail_register = true;
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "QUERY x"),
                         "ERR ParseError"));
}

TEST(CommandDispatchTest, QuerySinceRoutesToTheCatchUpHook) {
  DsmsServer server;
  FakeHooks hooks;
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "QUERY ndvi(a.b, a.c) SINCE 17"),
            "OK QUERY 8");
  EXPECT_EQ(hooks.last_query, "ndvi(a.b, a.c)");
  EXPECT_EQ(hooks.last_since, 17);

  // Case-insensitive, negative watermarks allowed.
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "query a.b since -3"),
            "OK QUERY 8");
  EXPECT_EQ(hooks.last_since, -3);

  // "SINCE" without a numeric tail is part of the query text, not the
  // clause: the plain register hook gets the whole string.
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "QUERY a.since"), "OK QUERY 7");
  EXPECT_EQ(hooks.last_query, "a.since");
  // A bare "since N" with no query text in front is not a clause —
  // it reaches the parser as query text and fails there, not here.
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "QUERY since 5"), "OK QUERY 7");
  EXPECT_EQ(hooks.last_query, "since 5");
}

TEST(CommandDispatchTest, MutatingVerbsRequireAuthWhenConfigured) {
  DsmsServer server;
  FakeHooks hooks;
  hooks.require_auth = true;
  // Read-only verbs stay open.
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "PING"), "OK PONG");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "HEALTH"), "OK HEALTH n=0");
  // Mutating verbs bounce until AUTH succeeds.
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "QUERY a.b"),
                         "ERR FailedPrecondition"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "UNREGISTER 7"),
                         "ERR FailedPrecondition"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "RESTART 1"),
                         "ERR FailedPrecondition"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "DLQ 1"),
                         "ERR FailedPrecondition"));
  EXPECT_TRUE(StartsWith(ExecuteCommand(&server, &hooks, "AUTH wrong"),
                         "ERR FailedPrecondition"));
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "AUTH sesame"), "OK AUTH");
  EXPECT_EQ(ExecuteCommand(&server, &hooks, "QUERY a.b"), "OK QUERY 7");
}

TEST(CommandDispatchTest, HttpRequestHandling) {
  EXPECT_TRUE(IsHttpRequestLine("GET /metrics HTTP/1.0"));
  EXPECT_TRUE(IsHttpRequestLine("HEAD /metrics HTTP/1.1"));
  EXPECT_TRUE(IsHttpRequestLine("  GET / HTTP/1.1"));
  EXPECT_FALSE(IsHttpRequestLine("QUERY a.b"));
  EXPECT_FALSE(IsHttpRequestLine("GETX /"));

  DsmsServer server;
  const std::string ok = HandleHttpRequest(&server, "GET /metrics HTTP/1.0");
  EXPECT_TRUE(StartsWith(ok, "HTTP/1.0 200 OK\r\n"));
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(ok.find("geostreams_"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  const std::string head = HandleHttpRequest(&server, "HEAD /metrics HTTP/1.1");
  EXPECT_TRUE(StartsWith(head, "HTTP/1.0 200 OK\r\n"));
  EXPECT_EQ(head.find("geostreams_"), std::string::npos);  // no body

  const std::string missing = HandleHttpRequest(&server, "GET /nope HTTP/1.0");
  EXPECT_TRUE(StartsWith(missing, "HTTP/1.0 404 Not Found\r\n"));
}

TEST(CommandDispatchTest, EventzEndpointDumpsFlightRecorder) {
  DsmsServer server;  // construction records the "server start" event
  const std::string ok = HandleHttpRequest(&server, "GET /eventz HTTP/1.0");
  EXPECT_TRUE(StartsWith(ok, "HTTP/1.0 200 OK\r\n")) << ok;
  EXPECT_NE(ok.find("Content-Type: text/plain"), std::string::npos) << ok;
  const size_t body_at = ok.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = ok.substr(body_at + 4);
  EXPECT_TRUE(StartsWith(body, "total=")) << body;
  EXPECT_NE(body.find("kept="), std::string::npos) << body;
  EXPECT_NE(body.find("\nEV 0 "), std::string::npos) << body;
  EXPECT_NE(body.find("comp=server kind=start"), std::string::npos) << body;
}

// ---------------------------------------------------------------------------
// ClientSession backpressure (raw socket pair)

struct SocketPair {
  int server_fd = -1;
  int client_fd = -1;
  int listen_fd = -1;

  Status Open() {
    GEOSTREAMS_ASSIGN_OR_RETURN(listen_fd, ListenTcp(0));
    GEOSTREAMS_ASSIGN_OR_RETURN(uint16_t port, LocalPort(listen_fd));
    GEOSTREAMS_ASSIGN_OR_RETURN(client_fd, ConnectTcp("127.0.0.1", port));
    GEOSTREAMS_ASSIGN_OR_RETURN(server_fd, AcceptClient(listen_fd));
    return Status::OK();
  }
  ~SocketPair() {
    CloseFd(client_fd);
    CloseFd(listen_fd);
    // server_fd is owned by the ClientSession under test.
  }
};

TEST(ClientSessionTest, SlowConsumerShedsThenDisconnects) {
  SocketPair pair;
  GS_ASSERT_OK(pair.Open());
  ClientSessionOptions options;
  options.max_queue_events = 2;
  options.max_consecutive_drops = 5;
  options.send_buffer_bytes = 4096;
  ClientSession session(pair.server_fd, 1, options);

  // 256 KiB frames against an unread 4 KiB socket buffer: the writer
  // jams on the first frame, the queue caps at two, and every further
  // enqueue sheds until the consecutive-drop limit closes the session.
  auto frame = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(256 * 1024, 0xCD));
  bool disconnected = false;
  for (int i = 0; i < 64 && !disconnected; ++i) {
    Status st = session.EnqueueFrame(frame);
    if (session.closed()) disconnected = true;
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
    }
  }
  EXPECT_TRUE(disconnected);
  const auto stats = session.Stats();
  EXPECT_GE(stats.frames_dropped, options.max_consecutive_drops);
  EXPECT_TRUE(stats.closed);
  // Closed session refuses everything, quietly.
  EXPECT_EQ(session.EnqueueFrame(frame).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ClientSessionTest, SlowConsumerDisconnectIsFlightRecorded) {
  SocketPair pair;
  GS_ASSERT_OK(pair.Open());
  EventLog log(16);
  ClientSessionOptions options;
  options.max_queue_events = 2;
  options.max_consecutive_drops = 5;
  options.send_buffer_bytes = 4096;
  options.event_log = &log;
  ClientSession session(pair.server_fd, 42, options);

  auto frame = std::make_shared<const std::vector<uint8_t>>(
      std::vector<uint8_t>(256 * 1024, 0xCD));
  for (int i = 0; i < 64 && !session.closed(); ++i) {
    Status ignored = session.EnqueueFrame(frame);
    (void)ignored;
  }
  ASSERT_TRUE(session.closed());

  // The operator asking "why did my client drop?" finds the answer in
  // the flight recorder: which session, and how jammed it was.
  const EventLog::Snapshot snap = log.TakeSnapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  const FlightEvent& event = snap.events[0];
  EXPECT_EQ(event.severity, EventSeverity::kError);
  EXPECT_EQ(event.component, "net");
  EXPECT_EQ(event.kind, "slow-consumer-disconnect");
  EXPECT_NE(event.detail.find("session=42"), std::string::npos)
      << event.detail;
  EXPECT_NE(event.detail.find("consecutive_drops=5"), std::string::npos)
      << event.detail;
}

// ---------------------------------------------------------------------------
// Loopback end-to-end

/// A 2-band GOES-like instrument (band2 = near-infrared, band1 =
/// visible) behind a DsmsServer + NetServer on an ephemeral port.
class NetFixture {
 public:
  explicit NetFixture(DsmsOptions options = {},
                      NetServerOptions net_options = {},
                      size_t cells_per_sector = 24 * 16)
      : server_(options),
        net_(&server_, net_options),
        gen_(MakeConfig(cells_per_sector), ScanSchedule::GoesRoutine()) {
    Status st = gen_.Init();
    EXPECT_TRUE(st.ok()) << st.ToString();
    for (size_t b = 0; b < 2; ++b) {
      auto d = gen_.Descriptor(b);
      EXPECT_TRUE(d.ok());
      st = server_.RegisterStream(*d);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
    st = net_.Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  static InstrumentConfig MakeConfig(size_t cells_per_sector) {
    InstrumentConfig config;
    config.crs_name = "latlon";
    config.cells_per_sector = cells_per_sector;
    config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
    config.name_prefix = "goes";
    return config;
  }

  Status Ingest(int64_t first_scan, int64_t count) {
    std::vector<EventSink*> sinks = {server_.ingest("goes.band2"),
                                     server_.ingest("goes.band1")};
    GEOSTREAMS_RETURN_IF_ERROR(gen_.GenerateScans(first_scan, count, sinks));
    return server_.Flush();
  }

  DsmsServer& server() { return server_; }
  NetServer& net() { return net_; }
  StreamGenerator& generator() { return gen_; }

 private:
  DsmsServer server_;
  NetServer net_;
  StreamGenerator gen_;
};

int64_t ParseIdFromOk(const std::string& response) {
  // "OK QUERY <id>"
  const size_t last_space = response.rfind(' ');
  return std::stoll(response.substr(last_space + 1));
}

TEST(NetServerE2eTest, NdviOverTcpDeliversVerifiedFrames) {
  DsmsOptions options;
  options.workers = 1;
  NetFixture fixture(options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto pong = client.Command("PING");
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, "OK PONG");

  auto response = client.Command("QUERY ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY "));
  const int64_t id = ParseIdFromOk(*response);
  EXPECT_EQ(fixture.server().num_queries(), 1u);

  GS_ASSERT_OK(fixture.Ingest(0, 3));

  // Three frames stream in; the decoder CRC-checks each payload.
  for (int64_t expect_frame = 0; expect_frame < 3; ++expect_frame) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->query_id, id);
    EXPECT_EQ(frame->frame_id, expect_frame);
    EXPECT_EQ(frame->bands, 1u);
    ASSERT_EQ(frame->samples.size(),
              static_cast<size_t>(frame->width) * frame->height);
    for (double v : frame->samples) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);  // NDVI range
    }
  }

  auto unregister = client.Command(StringPrintf("UNREGISTER %lld",
                                                static_cast<long long>(id)));
  ASSERT_TRUE(unregister.ok()) << unregister.status().ToString();
  EXPECT_TRUE(StartsWith(*unregister, "OK UNREGISTER"));
  EXPECT_EQ(fixture.server().num_queries(), 0u);
}

TEST(NetServerE2eTest, DisconnectUnregistersTheClientsQueries) {
  DsmsOptions options;
  options.workers = 1;
  NetFixture fixture(options);
  {
    GeoStreamsClient client;
    GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
    auto response = client.Command("QUERY goes.band1");
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(StartsWith(*response, "OK QUERY "));
    EXPECT_EQ(fixture.server().num_queries(), 1u);
  }  // client destructs: TCP FIN
  // The reader notices EOF and unregisters; poll until it has.
  for (int i = 0; i < 100 && fixture.server().num_queries() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(fixture.server().num_queries(), 0u);
}

TEST(NetServerE2eTest, SlowConsumerShedsWhileHealthyClientSeesEveryFrame) {
  DsmsOptions options;
  options.workers = 1;
  NetServerOptions net_options;
  net_options.session.max_queue_events = 4;
  net_options.session.max_consecutive_drops = 1u << 20;  // shed, don't drop
  net_options.session.send_buffer_bytes = 4096;
  // Big frames (96x64 cells => ~49 KiB each) so a stalled reader's
  // 4 KiB socket buffer jams after the first frame.
  NetFixture fixture(options, net_options, /*cells_per_sector=*/96 * 64);

  GeoStreamsClient healthy, slow;
  GS_ASSERT_OK(healthy.Connect("127.0.0.1", fixture.net().port()));
  GS_ASSERT_OK(slow.Connect("127.0.0.1", fixture.net().port()));
  auto healthy_resp = healthy.Command("QUERY goes.band1");
  ASSERT_TRUE(healthy_resp.ok());
  const int64_t healthy_id = ParseIdFromOk(*healthy_resp);
  auto slow_resp = slow.Command("QUERY goes.band1");
  ASSERT_TRUE(slow_resp.ok());

  constexpr int kScans = 24;
  // The healthy client drains in lockstep with ingest, so its queue
  // never backs up and it must receive every frame (each payload
  // CRC-verified by the decoder). The slow client reads NOTHING the
  // whole time: its writer jams against the 4 KiB socket buffer, its
  // queue caps at four frames, and the shedding controller takes the
  // rest.
  for (int i = 0; i < kScans; ++i) {
    GS_ASSERT_OK(fixture.Ingest(i, 1));
    auto frame = healthy.ReadFrame(20000);
    ASSERT_TRUE(frame.ok()) << "scan " << i << ": "
                            << frame.status().ToString();
    EXPECT_EQ(frame->query_id, healthy_id);
    EXPECT_EQ(frame->frame_id, i);
  }

  // Now the slow client wakes up and asks for its own damage report.
  // STATS is control-plane: always admitted, never shed. Frames
  // queued ahead of the response arrive first; Command parks them.
  auto stats = slow.Command("STATS", 20000);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_TRUE(StartsWith(*stats, "OK STATS ")) << *stats;
  const std::string line = *stats;
  const size_t dropped_at = line.find("dropped=");
  ASSERT_NE(dropped_at, std::string::npos);
  const uint64_t dropped =
      std::stoull(line.substr(dropped_at + std::string("dropped=").size()));
  EXPECT_GT(dropped, 0u) << line;
  // Shedding reduced the keep fraction below 1.
  const size_t keep_at = line.find("keep=");
  ASSERT_NE(keep_at, std::string::npos);
  EXPECT_LT(std::stod(line.substr(keep_at + 5)), 1.0) << line;
}

TEST(NetServerE2eTest, RestartRecoversQuarantinedQueryInPlace) {
  DsmsOptions options;
  options.workers = 1;  // supervised execution
  NetFixture fixture(options);
  // Swallow scan 0's FrameEnd on band 2: scan 1's FrameBegin then
  // nests, the chain rejects it (FailedPrecondition = poison), and
  // the default poison_limit=1 quarantines the query.
  CorruptionConfig corruption;
  corruption.target_band = 0;  // kNearInfrared = goes.band2
  corruption.drop_frame_end_scans = {0};
  fixture.generator().SetCorruption(corruption);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band2");
  ASSERT_TRUE(response.ok());
  const int64_t id = ParseIdFromOk(*response);

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  auto health = client.Command("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find(StringPrintf("%lld=QUARANTINED",
                                      static_cast<long long>(id))),
            std::string::npos)
      << *health;

  // The poison event is inspectable through the dead-letter queue.
  auto dlq = client.Command(StringPrintf("DLQ %lld",
                                         static_cast<long long>(id)));
  ASSERT_TRUE(dlq.ok());
  ASSERT_TRUE(StartsWith(*dlq, "OK DLQ ")) << *dlq;
  EXPECT_NE(dlq->find("kept=1"), std::string::npos) << *dlq;
  auto dl_line = client.ReadNext();
  ASSERT_TRUE(dl_line.ok());
  ASSERT_TRUE(dl_line->line.has_value());
  EXPECT_TRUE(StartsWith(*dl_line->line, "DL ")) << *dl_line->line;

  // RESTART un-quarantines in place: same connection, same query id.
  auto restart = client.Command(StringPrintf("RESTART %lld",
                                             static_cast<long long>(id)));
  ASSERT_TRUE(restart.ok());
  EXPECT_TRUE(StartsWith(*restart, "OK RESTART")) << *restart;
  health = client.Command("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->find(StringPrintf("%lld=RUNNING",
                                      static_cast<long long>(id))),
            std::string::npos)
      << *health;

  // Clean scans flow again, to the same subscription.
  GS_ASSERT_OK(fixture.Ingest(2, 2));
  auto frame = client.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->query_id, id);
  EXPECT_GE(frame->frame_id, 2);
}

// ---------------------------------------------------------------------------
// Ingest-boundary checksum verification

TEST(IngestChecksumTest, CorruptBatchesAreDeadLetteredAtTheBoundary) {
  DsmsOptions options;
  options.verify_ingest_checksums = true;
  NetFixture fixture(options);
  CorruptionConfig corruption;
  corruption.target_band = 0;  // goes.band2
  corruption.checksum_batches = true;
  corruption.corrupt_value_batches = {1, 4, 7};
  fixture.generator().SetCorruption(corruption);

  // A query over the corrupted band still completes every frame —
  // the poisoned rows are shed at the boundary, not mid-chain.
  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "goes.band2", [&](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  GS_ASSERT_OK(fixture.Ingest(0, 3));
  EXPECT_EQ(frames.load(), 3);

  const auto& stats = fixture.generator().corruption_stats();
  EXPECT_EQ(stats.values_corrupted, 3u);
  EXPECT_EQ(fixture.server().IngestChecksumFailures(), 3u);
  auto letters = fixture.server().SourceDeadLetters("goes.band2");
  ASSERT_TRUE(letters.ok()) << letters.status().ToString();
  ASSERT_EQ(letters->size(), 3u);
  for (const DeadLetter& letter : *letters) {
    EXPECT_NE(letter.error.find("checksum mismatch"), std::string::npos);
    EXPECT_EQ(letter.event.kind, EventKind::kPointBatch);
  }
  // The clean band saw no failures.
  auto clean = fixture.server().SourceDeadLetters("goes.band1");
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->empty());
  EXPECT_FALSE(fixture.server().SourceDeadLetters("nope.band1").ok());
}

TEST(IngestChecksumTest, VerificationIsOptIn) {
  // Default server: same corruption, nothing dead-lettered (checksums
  // are not even attached unless the generator is asked to).
  NetFixture fixture;
  CorruptionConfig corruption;
  corruption.target_band = 0;
  corruption.checksum_batches = true;
  corruption.corrupt_value_batches = {1};
  fixture.generator().SetCorruption(corruption);
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  EXPECT_EQ(fixture.server().IngestChecksumFailures(), 0u);
}

// ---------------------------------------------------------------------------
// Server-level dead letters & restart (no sockets)

TEST(ServerDlqTest, RestartQueryGrantsFreshPoisonBudget) {
  DsmsOptions options;
  options.workers = 1;
  NetFixture fixture(options);
  CorruptionConfig corruption;
  corruption.target_band = 0;
  corruption.drop_frame_end_scans = {0};
  fixture.generator().SetCorruption(corruption);

  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "goes.band2", [&](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok());

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  auto health = fixture.server().QueryHealth(*id);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, PipelineHealth::kQuarantined);
  EXPECT_FALSE(fixture.server().QueryError(*id).ok());
  auto letters = fixture.server().DeadLetters(*id);
  ASSERT_TRUE(letters.ok());
  ASSERT_EQ(letters->size(), 1u);

  GS_ASSERT_OK(fixture.server().RestartQuery(*id));
  health = fixture.server().QueryHealth(*id);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(*health, PipelineHealth::kRunning);
  GS_ASSERT_OK(fixture.server().QueryError(*id));
  // Retained dead letters stay inspectable after the restart.
  letters = fixture.server().DeadLetters(*id);
  ASSERT_TRUE(letters.ok());
  EXPECT_EQ(letters->size(), 1u);

  const int before = frames.load();
  GS_ASSERT_OK(fixture.Ingest(2, 2));
  EXPECT_EQ(frames.load(), before + 2);

  // Restarting a healthy query is a harmless no-op; unknown ids fail.
  GS_ASSERT_OK(fixture.server().RestartQuery(*id));
  EXPECT_FALSE(fixture.server().RestartQuery(9999).ok());
  EXPECT_FALSE(fixture.server().DeadLetters(9999).ok());
}

TEST(ServerDlqTest, SynchronousServerHasEmptyDlqAndNoopRestart) {
  NetFixture fixture;  // workers = 0
  std::atomic<int> frames{0};
  auto id = fixture.server().RegisterQuery(
      "goes.band1", [&](int64_t, const Raster&, const std::vector<uint8_t>&) {
        ++frames;
      });
  ASSERT_TRUE(id.ok());
  auto letters = fixture.server().DeadLetters(*id);
  ASSERT_TRUE(letters.ok());
  EXPECT_TRUE(letters->empty());
  GS_ASSERT_OK(fixture.server().RestartQuery(*id));
}

// ---------------------------------------------------------------------------
// Multi-connection subscription: QUERY <id> attaches to the fan-out

TEST(NetServerE2eTest, SecondClientAttachesToExistingQuery) {
  DsmsOptions options;
  options.workers = 1;
  NetFixture fixture(options);

  GeoStreamsClient first;
  GS_ASSERT_OK(first.Connect("127.0.0.1", fixture.net().port()));
  auto registered = first.Command("QUERY ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(registered.ok()) << registered.status().ToString();
  ASSERT_TRUE(StartsWith(*registered, "OK QUERY "));
  const int64_t id = ParseIdFromOk(*registered);

  // A second connection attaches to the SAME query by id — the
  // engine still sees one query; the frame is encoded once and fanned
  // out to both.
  GeoStreamsClient second;
  GS_ASSERT_OK(second.Connect("127.0.0.1", fixture.net().port()));
  auto attached = second.Command(StringPrintf("QUERY %lld",
                                              static_cast<long long>(id)));
  ASSERT_TRUE(attached.ok()) << attached.status().ToString();
  EXPECT_EQ(*attached, StringPrintf("OK QUERY %lld",
                                    static_cast<long long>(id)));
  EXPECT_EQ(fixture.server().num_queries(), 1u);

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  for (int64_t expect_frame = 0; expect_frame < 2; ++expect_frame) {
    auto from_first = first.ReadFrame(10000);
    ASSERT_TRUE(from_first.ok()) << from_first.status().ToString();
    auto from_second = second.ReadFrame(10000);
    ASSERT_TRUE(from_second.ok()) << from_second.status().ToString();
    EXPECT_EQ(from_first->frame_id, expect_frame);
    EXPECT_EQ(from_second->frame_id, expect_frame);
    EXPECT_EQ(from_first->samples, from_second->samples);
  }

  // One subscriber leaving does not unregister the query...
  second.Close();
  const auto still_there =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fixture.net().num_sessions() > 1 &&
         std::chrono::steady_clock::now() < still_there) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.server().num_queries(), 1u);
  GS_ASSERT_OK(fixture.Ingest(2, 1));
  auto third_frame = first.ReadFrame(10000);
  ASSERT_TRUE(third_frame.ok()) << third_frame.status().ToString();
  EXPECT_EQ(third_frame->frame_id, 2);

  // ... but the LAST subscriber leaving does.
  first.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fixture.server().num_queries() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.server().num_queries(), 0u);
}

TEST(NetServerE2eTest, AttachToUnknownOrDuplicateQueryIdIsRefused) {
  NetFixture fixture;
  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto unknown = client.Command("QUERY 12345");
  ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
  EXPECT_TRUE(StartsWith(*unknown, "ERR NotFound")) << *unknown;

  // Attaching twice from one connection is a client bug, not a second
  // subscription.
  auto registered = client.Command("QUERY goes.band1");
  ASSERT_TRUE(registered.ok());
  ASSERT_TRUE(StartsWith(*registered, "OK QUERY "));
  const int64_t id = ParseIdFromOk(*registered);
  auto duplicate = client.Command(StringPrintf("QUERY %lld",
                                               static_cast<long long>(id)));
  ASSERT_TRUE(duplicate.ok());
  EXPECT_TRUE(StartsWith(*duplicate, "ERR AlreadyExists")) << *duplicate;
}

// ---------------------------------------------------------------------------
// HTTP pull endpoint, control auth, and hybrid QUERY ... SINCE

TEST(NetServerE2eTest, HttpMetricsEndpointServesPrometheusText) {
  NetFixture fixture;
  GS_ASSERT_OK(fixture.Ingest(0, 2));

  auto fd = ConnectTcp("127.0.0.1", fixture.net().port(), 2000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: localhost\r\nUser-Agent: test\r\n\r\n";
  GS_ASSERT_OK(WriteAll(*fd, reinterpret_cast<const uint8_t*>(request.data()),
                        request.size()));

  // HTTP/1.0 with Content-Length: read headers, then exactly the body.
  std::string response;
  size_t body_start = std::string::npos;
  size_t content_length = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    char buf[4096];
    const ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
    if (body_start == std::string::npos) {
      const size_t end = response.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      body_start = end + 4;
      const size_t cl = response.find("Content-Length: ");
      ASSERT_NE(cl, std::string::npos) << response;
      content_length = std::stoull(response.substr(cl + 16));
    }
    if (response.size() >= body_start + content_length) break;
  }
  CloseFd(*fd);

  ASSERT_TRUE(StartsWith(response, "HTTP/1.0 200 OK\r\n")) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string body = response.substr(body_start);
  EXPECT_EQ(body.size(), content_length);
  // Prometheus text exposition of the same registry METRICS serves.
  EXPECT_NE(body.find("# TYPE geostreams_"), std::string::npos) << body;
  EXPECT_NE(body.find("geostreams_scheduler_enqueued_total"),
            std::string::npos)
      << body;
}

// ---------------------------------------------------------------------------
// Metrics exposition lint
//
// A malformed exposition fails silently: Prometheus drops the whole
// scrape and dashboards just go blank. This lint parses every line of
// a real GET /metrics scrape strictly — names, label escaping, value
// syntax, exemplar syntax, `le` ordering, bucket monotonicity, and
// series uniqueness — so a bad renderer change fails a test here
// instead of a scrape in production.

/// One scraped HTTP body (HTTP/1.0 + Content-Length framing).
/// `extra_headers` are raw header lines ("K: v\r\n") appended to the
/// request; `content_type` (if non-null) receives the response's
/// Content-Type value.
std::string ScrapeHttpBody(uint16_t port, const std::string& path,
                           const std::string& extra_headers = "",
                           std::string* content_type = nullptr) {
  auto fd = ConnectTcp("127.0.0.1", port, 2000);
  if (!fd.ok()) {
    ADD_FAILURE() << fd.status().ToString();
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n" +
                              extra_headers + "\r\n";
  Status sent = WriteAll(*fd, reinterpret_cast<const uint8_t*>(request.data()),
                         request.size());
  if (!sent.ok()) {
    ADD_FAILURE() << sent.ToString();
    CloseFd(*fd);
    return "";
  }
  std::string response;
  size_t body_start = std::string::npos;
  size_t content_length = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    char buf[4096];
    const ssize_t n = ::recv(*fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
    if (body_start == std::string::npos) {
      const size_t end = response.find("\r\n\r\n");
      if (end == std::string::npos) continue;
      body_start = end + 4;
      const size_t cl = response.find("Content-Length: ");
      if (cl == std::string::npos) break;
      content_length = std::stoull(response.substr(cl + 16));
    }
    if (response.size() >= body_start + content_length) break;
  }
  CloseFd(*fd);
  if (body_start == std::string::npos) {
    ADD_FAILURE() << "no header terminator in response:\n" << response;
    return "";
  }
  EXPECT_TRUE(StartsWith(response, "HTTP/1.0 200 OK\r\n")) << response;
  if (content_type != nullptr) {
    content_type->clear();
    const size_t ct = response.find("Content-Type: ");
    if (ct != std::string::npos && ct < body_start) {
      const size_t eol = response.find("\r\n", ct);
      *content_type = response.substr(ct + 14, eol - (ct + 14));
    }
  }
  return response.substr(body_start);
}

bool IsMetricNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Parses `name{k="v",...}` starting at `*pos`; appends the canonical
/// series key (name + labels except `le`) to `*series_key`, stores the
/// `le` label (if any) in `*le`, advances `*pos` past the closing
/// brace (or the bare name). Returns false on any syntax violation.
bool ParseNameAndLabels(const std::string& line, size_t* pos,
                        std::string* series_key, std::string* le) {
  const size_t name_start = *pos;
  while (*pos < line.size() &&
         IsMetricNameChar(line[*pos], *pos == name_start)) {
    ++(*pos);
  }
  if (*pos == name_start) return false;
  series_key->append(line, name_start, *pos - name_start);
  if (*pos >= line.size() || line[*pos] != '{') return true;
  ++(*pos);  // consume '{'
  series_key->push_back('{');
  while (*pos < line.size() && line[*pos] != '}') {
    const size_t key_start = *pos;
    while (*pos < line.size() &&
           IsMetricNameChar(line[*pos], *pos == key_start)) {
      ++(*pos);
    }
    if (*pos == key_start) return false;
    const std::string key = line.substr(key_start, *pos - key_start);
    if (*pos + 1 >= line.size() || line[*pos] != '=' ||
        line[*pos + 1] != '"') {
      return false;
    }
    *pos += 2;
    std::string value;
    for (;; ++(*pos)) {
      if (*pos >= line.size()) return false;  // unterminated value
      const char c = line[*pos];
      if (c == '"') break;
      if (c == '\\') {
        // Only \\, \" and \n are legal escapes in label values.
        if (*pos + 1 >= line.size()) return false;
        const char next = line[*pos + 1];
        if (next != '\\' && next != '"' && next != 'n') return false;
        value.push_back(next);
        ++(*pos);
        continue;
      }
      value.push_back(c);
    }
    ++(*pos);  // consume closing '"'
    if (key == "le" && le != nullptr) {
      *le = value;
    } else {
      series_key->append(key);
      series_key->append("=\"");
      series_key->append(value);
      series_key->append("\",");
    }
    if (*pos < line.size() && line[*pos] == ',') ++(*pos);
  }
  if (*pos >= line.size()) return false;  // no closing '}'
  ++(*pos);                               // consume '}'
  series_key->push_back('}');
  return true;
}

/// Parses an unsigned sample value at `*pos` (all registry samples are
/// integral microseconds/counts; "+Inf" never appears as a value).
bool ParseSampleValue(const std::string& line, size_t* pos, double* value) {
  const size_t start = *pos;
  while (*pos < line.size() &&
         ((line[*pos] >= '0' && line[*pos] <= '9') || line[*pos] == '.' ||
          line[*pos] == 'e' || line[*pos] == '+' || line[*pos] == '-')) {
    ++(*pos);
  }
  if (*pos == start) return false;
  *value = std::stod(line.substr(start, *pos - start));
  return true;
}

/// Strictly lints one scraped exposition body. In OpenMetrics mode
/// exemplar tails are legal on bucket lines and the body must end
/// with `# EOF`; in 0.0.4 mode any exemplar tail (or `# EOF`) is a
/// lint failure — 0.0.4 parsers read the tail as a malformed
/// timestamp and drop the whole scrape. `*exemplars_out` receives the
/// number of well-formed exemplars seen.
void LintExposition(const std::string& body, bool openmetrics,
                    size_t* exemplars_out) {
  std::set<std::string> seen_series;
  // Histogram group (series key minus `le`) -> ordered (le, count).
  std::map<std::string, std::vector<std::pair<double, double>>> buckets;
  std::map<std::string, double> counts;  // _count series values
  size_t samples = 0;
  size_t exemplars = 0;
  size_t line_no = 0;
  size_t start = 0;
  bool saw_eof = false;
  while (start < body.size()) {
    size_t eol = body.find('\n', start);
    if (eol == std::string::npos) eol = body.size();
    const std::string line = body.substr(start, eol - start);
    start = eol + 1;
    ++line_no;
    ASSERT_FALSE(line.empty()) << "blank line " << line_no;
    ASSERT_FALSE(saw_eof) << "content after # EOF at line " << line_no;
    if (line[0] == '#') {
      if (line == "# EOF") {
        ASSERT_TRUE(openmetrics) << "# EOF in a 0.0.4 exposition";
        saw_eof = true;
        continue;
      }
      const bool help = StartsWith(line, "# HELP ");
      const bool type = StartsWith(line, "# TYPE ");
      ASSERT_TRUE(help || type) << "line " << line_no << ": " << line;
      if (type) {
        const size_t kind_at = line.rfind(' ');
        const std::string kind = line.substr(kind_at + 1);
        ASSERT_TRUE(kind == "counter" || kind == "gauge" ||
                    kind == "histogram")
            << "line " << line_no << ": " << line;
      }
      continue;
    }
    size_t pos = 0;
    std::string series;
    std::string le;
    ASSERT_TRUE(ParseNameAndLabels(line, &pos, &series, &le))
        << "line " << line_no << ": " << line;
    ASSERT_TRUE(pos < line.size() && line[pos] == ' ')
        << "line " << line_no << ": " << line;
    ++pos;
    double value = 0;
    ASSERT_TRUE(ParseSampleValue(line, &pos, &value))
        << "line " << line_no << ": " << line;
    ++samples;
    // Exactly one sample per (name, labels) pair across the scrape.
    const std::string unique_key =
        series + (le.empty() ? "" : "~le=" + le);
    ASSERT_TRUE(seen_series.insert(unique_key).second)
        << "duplicate series at line " << line_no << ": " << line;
    if (!le.empty()) {
      const double le_value =
          le == "+Inf" ? std::numeric_limits<double>::infinity()
                       : std::stod(le);
      buckets[series].emplace_back(le_value, value);
    } else if (series.find("_count") != std::string::npos) {
      counts[series] = value;
    }
    if (pos < line.size()) {
      // The only legal tail is an OpenMetrics exemplar, and only on
      // bucket lines of the OpenMetrics exposition.
      ASSERT_TRUE(openmetrics)
          << "exemplar tail on 0.0.4 line " << line_no << ": " << line;
      const std::string tail = line.substr(pos);
      ASSERT_TRUE(StartsWith(tail, " # {"))
          << "line " << line_no << ": " << line;
      ASSERT_FALSE(le.empty()) << "exemplar on non-bucket line " << line_no
                               << ": " << line;
      // Reuse the label parser on `x{...} value` (fake one-char name).
      const std::string synthetic = "x" + tail.substr(3);
      size_t spos = 0;
      std::string dummy;
      ASSERT_TRUE(ParseNameAndLabels(synthetic, &spos, &dummy, nullptr))
          << "line " << line_no << ": " << line;
      ASSERT_TRUE(spos < synthetic.size() && synthetic[spos] == ' ')
          << "line " << line_no << ": " << line;
      ++spos;
      double exemplar_value = 0;
      ASSERT_TRUE(ParseSampleValue(synthetic, &spos, &exemplar_value))
          << "line " << line_no << ": " << line;
      ASSERT_EQ(spos, synthetic.size())
          << "line " << line_no << ": " << line;
      ++exemplars;
    }
  }
  ASSERT_GT(samples, 0u);
  ASSERT_EQ(saw_eof, openmetrics) << "missing # EOF terminator";

  // `le` strictly ascending, cumulative counts monotone, +Inf present
  // and agreeing with the family's _count.
  ASSERT_FALSE(buckets.empty());
  for (const auto& [series, family] : buckets) {
    ASSERT_GE(family.size(), 2u) << series;
    for (size_t i = 1; i < family.size(); ++i) {
      EXPECT_LT(family[i - 1].first, family[i].first)
          << "le out of order in " << series;
      EXPECT_LE(family[i - 1].second, family[i].second)
          << "bucket counts not cumulative in " << series;
    }
    EXPECT_TRUE(std::isinf(family.back().first))
        << "no +Inf bucket in " << series;
    // series is `name_bucket{labels-except-le}`; the count series is
    // `name_count{same labels}`.
    const size_t bucket_at = series.find("_bucket");
    ASSERT_NE(bucket_at, std::string::npos) << series;
    std::string count_series = series;
    count_series.replace(bucket_at, 7, "_count");
    // An unlabeled histogram's bucket series keeps `{}` once `le` is
    // folded out, but its _count renders with no braces at all.
    if (count_series.size() >= 2 &&
        count_series.compare(count_series.size() - 2, 2, "{}") == 0) {
      count_series.resize(count_series.size() - 2);
    }
    const auto count_it = counts.find(count_series);
    ASSERT_NE(count_it, counts.end()) << count_series;
    EXPECT_EQ(family.back().second, count_it->second) << series;
  }
  *exemplars_out = exemplars;
}

TEST(NetServerE2eTest, MetricsExpositionLintPasses) {
  DsmsOptions options;
  options.trace_sample_every = 1;  // inline traces: spans + rings live
  NetFixture fixture(options);
  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  // Exemplars and gnarly label values must render scrapably too.
  fixture.server()
      .metrics_registry()
      ->GetHistogram("geostreams_lint_probe_us", "lint probe",
                     {{"path", "a\"b\\c\nd"}}, {10, 100})
      ->ObserveWithExemplar(50, 3, "q\"1");

  // A plain GET negotiates nothing and gets the 0.0.4 exposition —
  // exemplar-free, since 0.0.4 parsers fail the whole scrape on an
  // exemplar tail.
  std::string content_type;
  const std::string plain =
      ScrapeHttpBody(fixture.net().port(), "/metrics", "", &content_type);
  ASSERT_FALSE(plain.empty());
  EXPECT_TRUE(StartsWith(content_type, "text/plain; version=0.0.4"))
      << content_type;
  size_t plain_exemplars = 0;
  ASSERT_NO_FATAL_FAILURE(LintExposition(plain, /*openmetrics=*/false,
                                         &plain_exemplars));
  EXPECT_EQ(plain_exemplars, 0u);

  // Accept: application/openmetrics-text negotiates the OpenMetrics
  // exposition, where the lint probe's exemplar must render.
  const std::string om = ScrapeHttpBody(
      fixture.net().port(), "/metrics",
      "Accept: application/openmetrics-text; version=1.0.0\r\n",
      &content_type);
  ASSERT_FALSE(om.empty());
  EXPECT_TRUE(StartsWith(content_type, "application/openmetrics-text"))
      << content_type;
  size_t om_exemplars = 0;
  ASSERT_NO_FATAL_FAILURE(LintExposition(om, /*openmetrics=*/true,
                                         &om_exemplars));
  ASSERT_GE(om_exemplars, 1u) << "the lint probe exemplar did not render";
}

TEST(NetServerE2eTest, ControlTokenGatesMutatingVerbs) {
  NetServerOptions net_options;
  net_options.control_auth_token = "hunter2";
  NetFixture fixture({}, net_options);

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  // Read-only verbs stay open without AUTH.
  auto pong = client.Command("PING");
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(*pong, "OK PONG");
  auto health = client.Command("HEALTH");
  ASSERT_TRUE(health.ok());
  EXPECT_TRUE(StartsWith(*health, "OK HEALTH"));

  auto denied = client.Command("QUERY goes.band1");
  ASSERT_TRUE(denied.ok());
  EXPECT_TRUE(StartsWith(*denied, "ERR FailedPrecondition")) << *denied;
  EXPECT_EQ(fixture.server().num_queries(), 0u);

  auto bad = client.Command("AUTH wrong");
  ASSERT_TRUE(bad.ok());
  EXPECT_TRUE(StartsWith(*bad, "ERR FailedPrecondition")) << *bad;

  auto good = client.Command("AUTH hunter2");
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, "OK AUTH");
  auto allowed = client.Command("QUERY goes.band1");
  ASSERT_TRUE(allowed.ok());
  EXPECT_TRUE(StartsWith(*allowed, "OK QUERY ")) << *allowed;

  // Authorization is per connection, not per server.
  GeoStreamsClient second;
  GS_ASSERT_OK(second.Connect("127.0.0.1", fixture.net().port()));
  auto still_denied = second.Command("QUERY goes.band1");
  ASSERT_TRUE(still_denied.ok());
  EXPECT_TRUE(StartsWith(*still_denied, "ERR FailedPrecondition"));
}

TEST(NetServerE2eTest, QuerySinceReplaysHistoryThenStreamsLive) {
  DsmsOptions options;
  options.store_dir = ::testing::TempDir() + "gsnet-query-since-store";
  std::filesystem::remove_all(options.store_dir);
  NetFixture fixture(options);
  // Recorded history the subscriber missed.
  GS_ASSERT_OK(fixture.Ingest(0, 4));

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band1 SINCE 0");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY ")) << *response;
  const int64_t id = ParseIdFromOk(*response);
  GS_ASSERT_OK(fixture.Ingest(4, 3));

  // The exactly-once audit over the wire: stored 0..3, live 4..6,
  // strictly ascending, no gap and no duplicate across the seam.
  for (int64_t expect_frame = 0; expect_frame < 7; ++expect_frame) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->query_id, id);
    EXPECT_EQ(frame->frame_id, expect_frame);
  }

  auto unregister = client.Command(StringPrintf(
      "UNREGISTER %lld", static_cast<long long>(id)));
  ASSERT_TRUE(unregister.ok());
  EXPECT_TRUE(StartsWith(*unregister, "OK UNREGISTER"));
}

TEST(NetServerE2eTest, CatchUpCutoverIsObservable) {
  DsmsOptions options;
  options.store_dir = ::testing::TempDir() + "gsnet-catchup-obs-store";
  std::filesystem::remove_all(options.store_dir);
  NetFixture fixture(options);
  GS_ASSERT_OK(fixture.Ingest(0, 4));

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", fixture.net().port()));
  auto response = client.Command("QUERY goes.band1 SINCE 0");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_TRUE(StartsWith(*response, "OK QUERY ")) << *response;
  const int64_t id = ParseIdFromOk(*response);
  for (int64_t expect_frame = 0; expect_frame < 4; ++expect_frame) {
    auto frame = client.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  }

  // The cut-over fires on the catch-up task right after the last
  // replay enqueue, which can trail the client's last read by a
  // moment — poll briefly for it.
  bool cutover = false;
  EventLog::Snapshot snap;
  for (int attempt = 0; attempt < 500 && !cutover; ++attempt) {
    snap = fixture.server().Events();
    for (const FlightEvent& event : snap.events) {
      if (event.kind == "catchup-cutover") cutover = true;
    }
    if (!cutover) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // The cut-over landed in the flight recorder with its wall anchor,
  // so "when did this query go live?" is answerable after the fact.
  ASSERT_TRUE(cutover) << "no catchup-cutover event recorded";
  for (const FlightEvent& event : snap.events) {
    if (event.kind != "catchup-cutover") continue;
    EXPECT_EQ(event.component, "server");
    EXPECT_NE(event.detail.find(StringPrintf(
                  "query=%lld replayed=4", static_cast<long long>(id))),
              std::string::npos)
        << event.detail;
    EXPECT_NE(event.detail.find("wall_us="), std::string::npos)
        << event.detail;
  }

  // After the replay drained, the catch-up lag gauge reads zero. One
  // unlabeled series summed over registrations — a per-query-id label
  // would leak a frozen series per finished query.
  const std::string metrics = fixture.server().RenderMetrics();
  EXPECT_NE(metrics.find("geostreams_catchup_lag_frames 0\n"),
            std::string::npos)
      << metrics;
  EXPECT_EQ(metrics.find("geostreams_catchup_lag_frames{"), std::string::npos)
      << metrics;
}

// ---------------------------------------------------------------------------
// Client deadline discipline and ConnectTcp resolution

TEST(GeoStreamsClientTest, TrickledLinesDoNotExtendReadFrameDeadline) {
  // A peer that sends a noise line every 30 ms would reset a
  // per-read-deadline forever; ReadFrame must give up on ONE overall
  // deadline regardless.
  auto listener = ListenTcp(0);
  GS_ASSERT_OK(listener.status());
  auto port = LocalPort(*listener);
  GS_ASSERT_OK(port.status());

  std::atomic<bool> stop{false};
  std::thread noisy([listen_fd = *listener, &stop] {
    auto accepted = AcceptClient(listen_fd);
    if (!accepted.ok()) return;
    const std::string noise = "OK NOISE\n";
    while (!stop.load()) {
      Status sent = WriteAll(
          *accepted, reinterpret_cast<const uint8_t*>(noise.data()),
          noise.size());
      if (!sent.ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
    }
    CloseFd(*accepted);
  });

  GeoStreamsClient client;
  GS_ASSERT_OK(client.Connect("127.0.0.1", *port, 2000));
  const auto start = std::chrono::steady_clock::now();
  auto frame = client.ReadFrame(300);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
  // Generous upper bound (sanitizer builds are slow), but far below
  // the forever that per-line deadline extension would allow.
  EXPECT_LT(elapsed_ms, 5000);
  EXPECT_GE(elapsed_ms, 250);

  stop.store(true);
  client.Close();
  noisy.join();
  CloseFd(*listener);
}

TEST(SocketUtilTest, ConnectsByHostname) {
  NetFixture fixture;
  auto fd = ConnectTcp("localhost", fixture.net().port(), 2000);
  if (!fd.ok()) {
    GTEST_SKIP() << "localhost does not resolve here: "
                 << fd.status().ToString();
  }
  CloseFd(*fd);
}

TEST(SocketUtilTest, ListensAndConnectsOverIpv6Loopback) {
  auto listener = ListenTcp(0, 16, /*ipv6=*/true);
  if (!listener.ok()) {
    GTEST_SKIP() << "IPv6 unavailable: " << listener.status().ToString();
  }
  auto port = LocalPort(*listener);
  GS_ASSERT_OK(port.status());
  auto fd = ConnectTcp("::1", *port, 2000);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  auto readable = PollReadable(*listener, 1000);
  ASSERT_TRUE(readable.ok());
  ASSERT_TRUE(*readable);
  auto accepted = AcceptClient(*listener);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  CloseFd(*accepted);
  CloseFd(*fd);
  CloseFd(*listener);
}

TEST(SocketUtilTest, ConnectTimeoutIsBounded) {
  // RFC 5737 TEST-NET-1 is guaranteed non-routable: the connect can
  // only time out (or fail fast where the sandbox rejects the route).
  // Either way it must not block anywhere near the OS default.
  const auto start = std::chrono::steady_clock::now();
  auto fd = ConnectTcp("192.0.2.1", 9, 200);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (fd.ok()) {
    CloseFd(*fd);
    GTEST_SKIP() << "sandbox intercepted the blackhole address";
  }
  EXPECT_LT(elapsed_ms, 5000);
  if (elapsed_ms >= 200) {
    // The timeout (not a fast kernel error) is what fired.
    EXPECT_NE(fd.status().message().find("timed out"), std::string::npos)
        << fd.status().ToString();
  }
}

}  // namespace
}  // namespace geostreams
