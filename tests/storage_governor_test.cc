// StorageGovernor unit tests: byte/budget arithmetic, the
// degraded-mode state machine (write failure -> degraded, Admit
// refusals, rate-limited self-heal probe, success-triggered immediate
// probe), the free-space floor, and the metrics surface. All disk
// pressure is injected deterministically — a FaultyFileInjector space
// quota gates the write probe, a closure supplies free bytes, and a
// pinned millisecond clock steps the probe rate limiter by hand.

#include "storage/governor.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "obs/metrics_registry.h"
#include "storage/faulty_file.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gsgov-" +
                    info->test_suite_name() + "-" + info->name() + "-" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(StorageGovernorTest, UsageAndBudgetArithmetic) {
  StorageGovernor governor({});

  EXPECT_EQ(governor.Usage("store"), 0u);
  EXPECT_EQ(governor.BytesOverBudget("store"), 0u);

  governor.SetUsage("store", 1000);
  governor.AddUsage("store", 500);
  governor.AddUsage("store", -200);
  EXPECT_EQ(governor.Usage("store"), 1300u);
  // No budget set: never over.
  EXPECT_EQ(governor.BytesOverBudget("store"), 0u);

  governor.SetBudget("store", {/*max_bytes=*/1000, /*max_age_ms=*/0});
  EXPECT_EQ(governor.Budget("store").max_bytes, 1000u);
  EXPECT_EQ(governor.BytesOverBudget("store"), 300u);
  governor.SetUsage("store", 400);
  EXPECT_EQ(governor.BytesOverBudget("store"), 0u);

  // Accounting drift clamps at zero instead of wrapping.
  governor.AddUsage("store", -4000);
  EXPECT_EQ(governor.Usage("store"), 0u);

  // Subsystems are independent.
  governor.SetUsage("journal", 77);
  EXPECT_EQ(governor.Usage("journal"), 77u);
  EXPECT_EQ(governor.Usage("store"), 0u);
}

TEST(StorageGovernorTest, NonIoFailuresAreNotDiskPressure) {
  StorageGovernor governor({});
  governor.RecordWriteResult("journal",
                             Status::InvalidArgument("caller bug"));
  governor.RecordWriteResult("journal",
                             Status::FailedPrecondition("closed"));
  EXPECT_FALSE(governor.degraded());
  EXPECT_EQ(governor.stats().write_errors, 0u);
  GS_ASSERT_OK(governor.Admit("journal"));
}

TEST(StorageGovernorTest, WriteFailureDegradesAndHealsWhenSpaceFrees) {
  const std::string dir = FreshDir("heal");
  FaultyFileOptions fopts;
  fopts.space_quota_bytes = 1;  // the disk is full from the start
  FaultyFileInjector injector(fopts);

  uint64_t now = 10000;
  StorageGovernorOptions options;
  options.probe_dir = dir;
  options.probe_interval_ms = 200;
  options.file_factory = injector.Factory();
  options.now_ms = [&now] { return now; };
  StorageGovernor governor(options);

  GS_ASSERT_OK(governor.Admit("journal"));
  EXPECT_FALSE(governor.degraded());

  // The journal reports ENOSPC on its own append: degraded, loudly.
  governor.RecordWriteResult(
      "journal", Status::ResourceExhausted("no space left on device"));
  EXPECT_TRUE(governor.degraded());
  StorageGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.degraded_entries, 1u);
  EXPECT_EQ(stats.write_errors, 1u);
  EXPECT_NE(stats.last_error.find("journal"), std::string::npos);

  // Admission now probes (the quota still refuses the probe's bytes)
  // and refuses the write — this is what makes the journal NACK.
  Status admitted = governor.Admit("journal");
  EXPECT_EQ(admitted.code(), StatusCode::kUnavailable);
  stats = governor.stats();
  EXPECT_GE(stats.probes, 1u);
  EXPECT_GE(stats.probe_failures, 1u);
  EXPECT_GE(stats.admissions_refused, 1u);
  EXPECT_GT(injector.stats().enospc_failures, 0u);

  // Space frees up (operator deletes files / retention reclaims):
  // the next admission probe heals the plane.
  injector.SetSpaceQuota(0);  // unlimited again
  now += 201;                 // past the probe interval
  GS_ASSERT_OK(governor.Admit("journal"));
  EXPECT_FALSE(governor.degraded());
  EXPECT_EQ(governor.stats().healed, 1u);
}

TEST(StorageGovernorTest, ProbesAreRateLimitedOnTheAdmissionPath) {
  const std::string dir = FreshDir("rate");
  FaultyFileOptions fopts;
  fopts.space_quota_bytes = 1;
  FaultyFileInjector injector(fopts);

  uint64_t now = 10000;
  StorageGovernorOptions options;
  options.probe_dir = dir;
  options.probe_interval_ms = 200;
  options.file_factory = injector.Factory();
  options.now_ms = [&now] { return now; };
  StorageGovernor governor(options);

  governor.RecordWriteResult("store", Status::IoError("EIO"));
  ASSERT_TRUE(governor.degraded());

  // A burst of refused admissions at one instant runs ONE probe; the
  // rest are refused without touching the disk (a NACK storm must not
  // become a probe storm).
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(governor.Admit("store").code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(governor.stats().probes, 1u);

  now += 200;  // the interval elapses: exactly one more probe
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(governor.Admit("store").code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(governor.stats().probes, 2u);
}

TEST(StorageGovernorTest, SuccessfulWriteWhileDegradedProbesImmediately) {
  // No probe_dir: the probe itself always succeeds, so the state
  // machine is driven purely by reported write results.
  StorageGovernor governor({});
  governor.RecordWriteResult("store", Status::IoError("EIO"));
  ASSERT_TRUE(governor.degraded());

  // One subsystem's write lands while the plane is degraded: verify
  // with a probe right now instead of waiting out the interval.
  governor.RecordWriteResult("store", Status::OK());
  EXPECT_FALSE(governor.degraded());
  const StorageGovernorStats stats = governor.stats();
  EXPECT_EQ(stats.healed, 1u);
  EXPECT_GE(stats.probes, 1u);
}

TEST(StorageGovernorTest, FreeSpaceFloorDegradesBeforeFirstEnospc) {
  const std::string dir = FreshDir("floor");
  uint64_t now = 10000;
  uint64_t free_bytes = 50;  // under the floor from the start
  StorageGovernorOptions options;
  options.probe_dir = dir;
  options.min_free_bytes = 1000;
  options.probe_interval_ms = 200;
  options.now_ms = [&now] { return now; };
  options.free_bytes_fn = [&free_bytes](const std::string&)
      -> Result<uint64_t> { return free_bytes; };
  StorageGovernor governor(options);

  // The healthy admission path checks the floor at probe cadence and
  // degrades before any write ever fails.
  now += 200;
  Status first = governor.Admit("store");
  EXPECT_TRUE(governor.degraded());
  EXPECT_EQ(first.code(), StatusCode::kUnavailable) << first.ToString();

  // Space returns over the floor: the degraded-path probe heals.
  free_bytes = 1u << 20;
  now += 200;
  GS_ASSERT_OK(governor.Admit("store"));
  EXPECT_FALSE(governor.degraded());

  auto reported = governor.FreeBytes();
  GS_ASSERT_OK(reported.status());
  EXPECT_EQ(*reported, free_bytes);
}

TEST(StorageGovernorTest, ProbeNowForcesAnImmediateVerdict) {
  const std::string dir = FreshDir("probenow");
  FaultyFileOptions fopts;
  fopts.space_quota_bytes = 1;
  FaultyFileInjector injector(fopts);
  StorageGovernorOptions options;
  options.probe_dir = dir;
  options.file_factory = injector.Factory();
  StorageGovernor governor(options);

  // Healthy plane, dead disk: ProbeNow discovers the pressure without
  // any subsystem write having failed yet.
  EXPECT_FALSE(governor.ProbeNow());
  EXPECT_TRUE(governor.degraded());

  injector.SetSpaceQuota(0);
  EXPECT_TRUE(governor.ProbeNow());
  EXPECT_FALSE(governor.degraded());
  // No stale probe file left behind.
  EXPECT_FALSE(fs::exists(fs::path(dir) / ".gs-write-probe"));
}

TEST(StorageGovernorTest, MetricsExportTheStateMachine) {
  MetricsRegistry registry;
  StorageGovernorOptions options;
  options.metrics = &registry;
  StorageGovernor governor(options);
  governor.SetUsage("journal", 1234);

  governor.RecordWriteResult("journal", Status::IoError("EIO"));
  std::string prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("geostreams_storage_degraded 1"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("geostreams_storage_degraded_entries_total 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("geostreams_storage_bytes{subsystem=\"journal\"} 1234"),
            std::string::npos)
      << prom;

  governor.RecordWriteResult("journal", Status::OK());  // heals via probe
  prom = registry.RenderPrometheus();
  EXPECT_NE(prom.find("geostreams_storage_degraded 0"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("geostreams_storage_healed_total 1"),
            std::string::npos)
      << prom;
}

}  // namespace
}  // namespace geostreams
