// Whole-instrument integration tests: all five GOES-like bands through
// the DSMS at once, exercising products that cross bands and the
// scheduler-driven multi-query path against the synchronous one.

#include <gtest/gtest.h>

#include <map>

#include "server/dsms_server.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "stream/scheduler.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

InstrumentConfig FiveBandConfig() {
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 32 * 24;
  config.bands = {SpectralBand::kVisible, SpectralBand::kNearInfrared,
                  SpectralBand::kWaterVapor, SpectralBand::kInfrared,
                  SpectralBand::kSplitWindow};
  config.name_prefix = "goes";
  return config;
}

class FiveBandFixture {
 public:
  explicit FiveBandFixture(DsmsOptions options = {})
      : server_(options), gen_(FiveBandConfig(), ScanSchedule::GoesRoutine()) {
    Status st = gen_.Init();
    EXPECT_TRUE(st.ok());
    for (size_t b = 0; b < 5; ++b) {
      auto d = gen_.Descriptor(b);
      EXPECT_TRUE(d.ok());
      st = server_.RegisterStream(*d);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }

  std::vector<EventSink*> IngestSinks() {
    std::vector<EventSink*> sinks;
    for (int b = 1; b <= 5; ++b) {
      sinks.push_back(server_.ingest("goes.band" + std::to_string(b)));
    }
    return sinks;
  }

  DsmsServer& server() { return server_; }
  StreamGenerator& generator() { return gen_; }

 private:
  DsmsServer server_;
  StreamGenerator gen_;
};

TEST(MultibandTest, SplitWindowDifferenceProduct) {
  // The classic split-window moisture proxy: band4 - band5, always a
  // small positive-ish number for our synthetic fields.
  FiveBandFixture fixture;
  std::vector<Raster> frames;
  auto id = fixture.server().RegisterQuery(
      "sub(goes.band4, goes.band5)",
      [&frames](int64_t, const Raster& raster, const std::vector<uint8_t>&) {
        frames.push_back(raster);
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.generator().GenerateScans(0, 2,
                                                 fixture.IngestSinks()));
  ASSERT_EQ(frames.size(), 2u);
  double lo, hi;
  frames[0].MinMax(0, &lo, &hi);
  EXPECT_GT(hi, 0.0);
  EXPECT_LT(hi, 25.0);  // a few kelvin, not a whole temperature
  EXPECT_GT(lo, -25.0);
}

TEST(MultibandTest, FalseColorComposite) {
  FiveBandFixture fixture;
  Raster captured;
  auto id = fixture.server().RegisterQuery(
      "rgb(goes.band2, goes.band1, goes.band4)",
      [&captured](int64_t, const Raster& raster,
                  const std::vector<uint8_t>&) { captured = raster; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.generator().GenerateScans(0, 1,
                                                 fixture.IngestSinks()));
  ASSERT_EQ(captured.bands(), 3);
  // Bands really are different channels: reflective bands in [0, 1],
  // the thermal band in the hundreds of kelvin.
  double lo, hi;
  captured.MinMax(0, &lo, &hi);
  EXPECT_LE(hi, 1.0);
  captured.MinMax(2, &lo, &hi);
  EXPECT_GT(hi, 150.0);
}

TEST(MultibandTest, ManyProductsShareTheScan) {
  FiveBandFixture fixture;
  std::map<std::string, int> delivered;
  const char* products[] = {
      "ndvi(goes.band2, goes.band1)",
      "sub(goes.band4, goes.band5)",
      "vrange(goes.band4, 0, 300, 400)",
      "region(goes.band3, bbox(-120, 28, -100, 45))",
      "aggregate(goes.band4, \"max\", 1, bbox(-125, 24, -66, 50))",
  };
  for (const char* q : products) {
    std::string name = q;
    auto id = fixture.server().RegisterQuery(
        q, [&delivered, name](int64_t, const Raster&,
                              const std::vector<uint8_t>&) {
          ++delivered[name];
        });
    ASSERT_TRUE(id.ok()) << q << ": " << id.status().ToString();
  }
  GS_ASSERT_OK(fixture.generator().GenerateScans(0, 3,
                                                 fixture.IngestSinks()));
  for (const char* q : products) {
    EXPECT_EQ(delivered[q], 3) << q;
  }
}

TEST(MultibandTest, FireDetectionOnThermalAnomaly) {
  // The pinned synthetic wildfire (active scans 2..9 near 121.5W,
  // 39N) must surface through a hot-pixel query and be absent before.
  FiveBandFixture fixture;
  std::map<int64_t, uint64_t> hot_pixels_by_scan;
  auto id = fixture.server().RegisterQuery(
      "vrange(region(goes.band4, bbox(-124, 36, -119, 42)), 0, 305, 400)",
      [&hot_pixels_by_scan](int64_t scan, const Raster& raster,
                            const std::vector<uint8_t>&) {
        uint64_t hot = 0;
        for (int64_t r = 0; r < raster.height(); ++r) {
          for (int64_t c = 0; c < raster.width(); ++c) {
            if (raster.At(c, r) >= 305.0) ++hot;
          }
        }
        hot_pixels_by_scan[scan] = hot;
      });
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.generator().GenerateScans(0, 8,
                                                 fixture.IngestSinks()));
  EXPECT_EQ(hot_pixels_by_scan[0], 0u);
  EXPECT_EQ(hot_pixels_by_scan[1], 0u);
  uint64_t during = 0;
  for (int64_t scan = 3; scan <= 7; ++scan) {
    during += hot_pixels_by_scan[scan];
  }
  EXPECT_GT(during, 0u) << "fire never detected";
}

TEST(MultibandTest, SchedulerDrivenIngestMatchesSynchronous) {
  // Route the five band streams through the QueryScheduler (one queue
  // per band) and verify the delivered product is identical to the
  // synchronous path.
  auto run = [](bool scheduled) {
    FiveBandFixture fixture;
    std::vector<Raster> frames;
    auto id = fixture.server().RegisterQuery(
        "ndvi(goes.band2, goes.band1)",
        [&frames](int64_t, const Raster& raster,
                  const std::vector<uint8_t>&) { frames.push_back(raster); });
    EXPECT_TRUE(id.ok());
    if (!scheduled) {
      Status st = fixture.generator().GenerateScans(0, 2,
                                                    fixture.IngestSinks());
      EXPECT_TRUE(st.ok());
      return frames;
    }
    // One scheduler queue per band keeps each band's event order; all
    // five drain on one worker thread, so cross-band operators stay
    // single-threaded.
    QueryScheduler scheduler(SchedulingPolicy::kRoundRobin,
                             /*queue_capacity=*/1 << 16);
    std::vector<EventSink*> direct = fixture.IngestSinks();
    std::vector<EventSink*> queued;
    for (size_t b = 0; b < direct.size(); ++b) {
      queued.push_back(scheduler.AddPipeline("band" + std::to_string(b),
                                             direct[b]));
    }
    Status st = scheduler.Start();
    EXPECT_TRUE(st.ok());
    st = fixture.generator().GenerateScans(0, 2, queued);
    EXPECT_TRUE(st.ok());
    st = scheduler.Stop();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return frames;
  };
  auto sync_frames = run(false);
  auto sched_frames = run(true);
  ASSERT_EQ(sync_frames.size(), 2u);
  ASSERT_EQ(sched_frames.size(), 2u);
  for (size_t f = 0; f < 2; ++f) {
    auto diff = Raster::AbsDifference(sync_frames[f], sched_frames[f]);
    ASSERT_TRUE(diff.ok());
    EXPECT_NEAR(*diff, 0.0, 1e-12) << "frame " << f;
  }
}

}  // namespace
}  // namespace geostreams
