#include "query/planner.h"

#include <gtest/gtest.h>

#include "query/explain.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::MakeTestCatalog;
using testing_util::PushFrame;
using testing_util::WellFormedFrames;

Result<ExprPtr> Analyzed(const StreamCatalog& catalog,
                         const std::string& query) {
  GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseQuery(query));
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, e));
  return e;
}

TEST(PlannerTest, SingleChainPlan) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "vrange(region(g.nir, bbox(-125,40,-123,45)), 0, 0, 1)");
  ASSERT_TRUE(e.ok());
  CollectingSink sink;
  auto plan = BuildPlan(*e, &sink);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->operators().size(), 2u);
  EXPECT_EQ((*plan)->input_names(), std::vector<std::string>{"g.nir"});
  EXPECT_NE((*plan)->input("g.nir"), nullptr);
  EXPECT_EQ((*plan)->input("g.vis"), nullptr);
  EXPECT_EQ((*plan)->output_descriptor().name(), (*e)->out_desc.name());
}

TEST(PlannerTest, ExecutesChain) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "rescale(region(g.nir, bbox(-125,43,-123.4,45)), 10, 0)");
  ASSERT_TRUE(e.ok());
  CollectingSink sink;
  auto plan = BuildPlan(*e, &sink);
  ASSERT_TRUE(plan.ok());
  GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame((*plan)->input("g.nir"), lattice, 0));
  auto points = CollectPoints(sink.events());
  // Columns 0..2 of rows 0..3 fall in the box (0.5-degree lattice from
  // (-124.75, 44.75), box x<=-123.4 keeps 3 columns, y>=43 keeps 4
  // rows).
  EXPECT_EQ(points.size(), 3u * 4u);
  for (const auto& [key, v] : points) {
    EXPECT_NEAR(v, 10.0 * testing_util::TestValue(0, std::get<0>(key),
                                                  std::get<1>(key)),
                1e-9);
  }
}

TEST(PlannerTest, PointByPointSpatialRestrictionWithoutFrames) {
  // lidar.z is point-by-point: batches arrive with no FrameBegin at
  // all. The planner hands the spatial restriction the stream's
  // reference lattice so the bare batches are still evaluated against
  // real geometry instead of erroring (or, worse, a default lattice).
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "region(lidar.z, bbox(-125,40,-124.75,45))");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  CollectingSink sink;
  auto plan = BuildPlan(*e, &sink);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The catalog's lidar lattice: 8x8 cells of 0.125 deg from -125/45.
  GridLattice lattice = LatLonLattice(8, 8, 0.125);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  for (int32_t row = 0; row < 8; ++row) {
    for (int32_t col = 0; col < 8; ++col) {
      batch->Append1(col, row, row * 8 + col, 1.0);
    }
  }
  GS_ASSERT_OK(
      (*plan)->input("lidar.z")->Consume(StreamEvent::Batch(batch)));
  auto points = CollectPoints(sink.events());
  EXPECT_EQ(points.size(), 2u * 8u);  // columns 0 and 1 survive
  for (const auto& [key, v] : points) {
    EXPECT_LT(std::get<0>(key), 2);
  }
}

TEST(PlannerTest, BinaryPlanHasTwoInputs) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "ndvi(g.nir, g.vis)");
  ASSERT_TRUE(e.ok());
  CollectingSink sink;
  auto plan = BuildPlan(*e, &sink);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->operators().size(), 1u);
  EXPECT_EQ((*plan)->input_names().size(), 2u);
  EXPECT_NE((*plan)->input("g.nir"), nullptr);
  EXPECT_NE((*plan)->input("g.vis"), nullptr);
}

TEST(PlannerTest, SharedStreamBroadcasts) {
  // div(sub(a,b), add(a,b)) references each stream twice; the plan
  // fans each input out to both composition ports.
  StreamCatalog catalog = MakeTestCatalog();
  auto parsed = ParseQuery("div(sub(g.nir, g.vis), add(g.nir, g.vis))");
  ASSERT_TRUE(parsed.ok());
  GS_ASSERT_OK(AnalyzeQuery(catalog, *parsed));
  CollectingSink sink;
  auto plan = BuildPlan(*parsed, &sink);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->operators().size(), 3u);
  EXPECT_EQ((*plan)->input_names().size(), 2u);

  // Execute: NDVI of the expanded form must match the macro form.
  GridLattice lattice = LatLonLattice(16, 12);
  auto push_band = [&](const char* name, double bias) {
    EventSink* in = (*plan)->input(name);
    ASSERT_NE(in, nullptr);
    FrameInfo info;
    info.frame_id = 0;
    info.lattice = lattice;
    GS_ASSERT_OK(in->Consume(StreamEvent::FrameBegin(info)));
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    for (int64_t r = 0; r < lattice.height(); ++r) {
      for (int64_t c = 0; c < lattice.width(); ++c) {
        batch->Append1(static_cast<int32_t>(c), static_cast<int32_t>(r), 0,
                       testing_util::TestValue(0, c, r) + bias);
      }
    }
    GS_ASSERT_OK(in->Consume(StreamEvent::Batch(batch)));
    GS_ASSERT_OK(in->Consume(StreamEvent::FrameEnd(info)));
  };
  push_band("g.nir", 0.6);
  push_band("g.vis", 0.2);
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 16u * 12u);
  for (const auto& [key, v] : points) {
    const double base =
        testing_util::TestValue(0, std::get<0>(key), std::get<1>(key));
    EXPECT_NEAR(v, 0.4 / (2.0 * base + 0.8), 1e-9);
  }
}

TEST(PlannerTest, Sec34QueryEndToEnd) {
  // The full paper example over generated GOES-like streams, with the
  // optimizer on: NDVI -> value transform -> reproject to UTM ->
  // spatial restriction in UTM coordinates.
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 32 * 16;
  config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
  config.name_prefix = "goes";
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  ASSERT_TRUE(gen.Init().ok());
  StreamCatalog catalog;
  for (size_t b = 0; b < 2; ++b) {
    auto d = gen.Descriptor(b);
    ASSERT_TRUE(d.ok());
    GS_ASSERT_OK(catalog.Register(*d));
  }

  auto parsed = ParseQuery(
      "region(reproject(rescale(ndvi(goes.band2, goes.band1), 100, 100), "
      "\"utm:10n\"), bbox(300000, 3000000, 900000, 5200000))");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  GS_ASSERT_OK(AnalyzeQuery(catalog, *parsed));
  auto optimized = OptimizeQuery(catalog, *parsed);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  CollectingSink sink;
  auto plan = BuildPlan(*optimized, &sink);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<EventSink*> sinks = {(*plan)->input("goes.band2"),
                                   (*plan)->input("goes.band1")};
  ASSERT_NE(sinks[0], nullptr);
  ASSERT_NE(sinks[1], nullptr);
  GS_ASSERT_OK(gen.GenerateScans(0, 2, sinks));
  GS_ASSERT_OK(gen.Finish(sinks));

  EXPECT_TRUE(WellFormedFrames(sink.events()));
  auto points = CollectPoints(sink.events());
  ASSERT_GT(points.size(), 0u);
  // NDVI rescaled by (100, +100) stays within [0, 200].
  for (const auto& [key, v] : points) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 200.0);
  }
  // The output descriptor is in UTM (closure through the whole chain).
  EXPECT_EQ((*plan)->output_descriptor().crs()->name(), "utm:10n");
}

TEST(PlannerTest, RequiresAnalyzedTree) {
  auto parsed = ParseQuery("g.nir");
  ASSERT_TRUE(parsed.ok());
  CollectingSink sink;
  EXPECT_EQ(BuildPlan(*parsed, &sink).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, RequiresSink) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "g.nir");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(BuildPlan(*e, nullptr).ok());
}

TEST(PlannerTest, MetricsAccounting) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "region(g.nir, bbox(-125,43,-123.4,45))");
  ASSERT_TRUE(e.ok());
  CollectingSink sink;
  MemoryTracker tracker;
  auto plan = BuildPlan(*e, &sink, &tracker);
  ASSERT_TRUE(plan.ok());
  GridLattice lattice = LatLonLattice(16, 12);
  GS_ASSERT_OK(PushFrame((*plan)->input("g.nir"), lattice, 0));
  EXPECT_EQ((*plan)->PointsProcessed(), 16u * 12u);
  EXPECT_EQ((*plan)->BufferedHighWater(), 0u);  // pure filter
}

TEST(ExplainTest, ShowsTreeAndCosts) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(ndvi(g.nir, g.vis), bbox(-125,40,-123,45))");
  ASSERT_TRUE(e.ok());
  const std::string text = ExplainQuery(*e);
  EXPECT_NE(text.find("SpatialRestrict"), std::string::npos);
  EXPECT_NE(text.find("NdviMacro"), std::string::npos);
  EXPECT_NE(text.find("Stream g.nir"), std::string::npos);
  EXPECT_NE(text.find("in="), std::string::npos);  // cost annotations
  // Two levels of indentation.
  EXPECT_NE(text.find("\n  "), std::string::npos);
  EXPECT_NE(text.find("\n    "), std::string::npos);
}

}  // namespace
}  // namespace geostreams
