#include "server/dsms_server.h"

#include <gtest/gtest.h>

#include <map>

#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

/// Full Fig.-3 setup: a 2-band lat/lon instrument registered with a
/// server; `Ingest` pushes scans through the server's ingest sinks.
class ServerFixture {
 public:
  explicit ServerFixture(DsmsOptions options = {})
      : server_(options),
        gen_(MakeConfig(), ScanSchedule::GoesRoutine()) {
    Status st = gen_.Init();
    EXPECT_TRUE(st.ok());
    for (size_t b = 0; b < 2; ++b) {
      auto d = gen_.Descriptor(b);
      EXPECT_TRUE(d.ok());
      st = server_.RegisterStream(*d);
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }

  static InstrumentConfig MakeConfig() {
    InstrumentConfig config;
    config.crs_name = "latlon";
    config.cells_per_sector = 24 * 16;
    config.bands = {SpectralBand::kNearInfrared, SpectralBand::kVisible};
    config.name_prefix = "goes";
    return config;
  }

  Status Ingest(int64_t first_scan, int64_t count) {
    std::vector<EventSink*> sinks = {server_.ingest("goes.band2"),
                                     server_.ingest("goes.band1")};
    GEOSTREAMS_RETURN_IF_ERROR(gen_.GenerateScans(first_scan, count, sinks));
    return Status::OK();
  }

  DsmsServer& server() { return server_; }

 private:
  DsmsServer server_;
  StreamGenerator gen_;
};

/// Captures delivered frames per query.
struct Capture {
  std::vector<std::pair<int64_t, Raster>> frames;

  FrameCallback Callback() {
    return [this](int64_t frame_id, const Raster& raster,
                  const std::vector<uint8_t>&) {
      frames.emplace_back(frame_id, raster);
    };
  }
};

TEST(DsmsServerTest, RegisterStreamAndQuery) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery(
      "region(goes.band1, bbox(-120, 28, -100, 45))", capture.Callback());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(fixture.server().num_queries(), 1u);
  GS_ASSERT_OK(fixture.Ingest(0, 3));
  EXPECT_EQ(capture.frames.size(), 3u);
  auto delivered = fixture.server().FramesDelivered(*id);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 3u);
}

TEST(DsmsServerTest, UnknownStreamInQueryFails) {
  ServerFixture fixture;
  Capture capture;
  EXPECT_FALSE(
      fixture.server().RegisterQuery("nope.band9", capture.Callback()).ok());
  EXPECT_FALSE(fixture.server()
                   .RegisterQuery("region(goes.band1, bbox(0,0,1,1)",
                                  capture.Callback())
                   .ok());  // parse error
  EXPECT_EQ(fixture.server().num_queries(), 0u);
}

TEST(DsmsServerTest, NdviQueryDeliversIndexValues) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery(
      "ndvi(goes.band2, goes.band1)", capture.Callback());
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  ASSERT_EQ(capture.frames.size(), 2u);
  const Raster& frame = capture.frames[0].second;
  double lo, hi;
  frame.MinMax(0, &lo, &hi);
  EXPECT_GE(lo, -1.0);
  EXPECT_LE(hi, 1.0);
  EXPECT_GT(hi, lo);  // not a constant image
}

TEST(DsmsServerTest, MultipleQueriesShareTheStream) {
  ServerFixture fixture;
  Capture west, east, unrestricted;
  auto id1 = fixture.server().RegisterQuery(
      "region(goes.band1, bbox(-125, 24, -110, 50))", west.Callback());
  auto id2 = fixture.server().RegisterQuery(
      "region(goes.band1, bbox(-90, 24, -66, 50))", east.Callback());
  auto id3 = fixture.server().RegisterQuery("goes.band1",
                                            unrestricted.Callback());
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(id3.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  ASSERT_EQ(west.frames.size(), 2u);
  ASSERT_EQ(east.frames.size(), 2u);
  ASSERT_EQ(unrestricted.frames.size(), 2u);
}

TEST(DsmsServerTest, SharedVsDirectModesAgree) {
  // The cascade-tree shared restriction must not change any delivered
  // pixel compared to per-query direct filtering.
  const char* queries[] = {
      "region(goes.band1, bbox(-120, 28, -100, 45))",
      "region(ndvi(goes.band2, goes.band1), bbox(-110, 25, -80, 48))",
  };
  std::map<int, std::vector<std::pair<int64_t, Raster>>> by_mode[2];
  for (int mode = 0; mode < 2; ++mode) {
    DsmsOptions options;
    options.shared_restriction = (mode == 1);
    ServerFixture fixture(options);
    std::vector<Capture> captures(2);
    for (int q = 0; q < 2; ++q) {
      auto id = fixture.server().RegisterQuery(queries[q],
                                               captures[q].Callback());
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    GS_ASSERT_OK(fixture.Ingest(0, 3));
    for (int q = 0; q < 2; ++q) {
      by_mode[mode][q] = std::move(captures[q].frames);
    }
  }
  for (int q = 0; q < 2; ++q) {
    ASSERT_EQ(by_mode[0][q].size(), by_mode[1][q].size()) << "query " << q;
    for (size_t f = 0; f < by_mode[0][q].size(); ++f) {
      EXPECT_EQ(by_mode[0][q][f].first, by_mode[1][q][f].first);
      auto diff = Raster::AbsDifference(by_mode[0][q][f].second,
                                        by_mode[1][q][f].second);
      ASSERT_TRUE(diff.ok()) << diff.status().ToString();
      EXPECT_NEAR(*diff, 0.0, 1e-9) << "query " << q << " frame " << f;
    }
  }
}

TEST(DsmsServerTest, IndexKindsAgree) {
  for (DsmsOptions::IndexKind kind :
       {DsmsOptions::IndexKind::kCascadeTree, DsmsOptions::IndexKind::kGrid,
        DsmsOptions::IndexKind::kFilterBank}) {
    DsmsOptions options;
    options.index_kind = kind;
    ServerFixture fixture(options);
    Capture capture;
    auto id = fixture.server().RegisterQuery(
        "region(goes.band1, bbox(-118, 30, -102, 44))", capture.Callback());
    ASSERT_TRUE(id.ok());
    GS_ASSERT_OK(fixture.Ingest(0, 1));
    ASSERT_EQ(capture.frames.size(), 1u);
  }
}

TEST(DsmsServerTest, UnregisterStopsDelivery) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery(
      "region(goes.band1, bbox(-120, 28, -100, 45))", capture.Callback());
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  EXPECT_EQ(capture.frames.size(), 1u);
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id));
  GS_ASSERT_OK(fixture.Ingest(1, 1));
  EXPECT_EQ(capture.frames.size(), 1u);
  EXPECT_EQ(fixture.server().UnregisterQuery(*id).code(),
            StatusCode::kNotFound);
}

TEST(DsmsServerTest, ExplainShowsOptimizedPlan) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery(
      "region(ndvi(goes.band2, goes.band1), bbox(-110, 25, -80, 48))",
      capture.Callback());
  ASSERT_TRUE(id.ok());
  auto text = fixture.server().Explain(*id);
  ASSERT_TRUE(text.ok());
  // After pushdown the restriction sits below the NDVI macro.
  EXPECT_NE(text->find("NdviMacro"), std::string::npos);
  const size_t ndvi_pos = text->find("NdviMacro");
  const size_t restrict_pos = text->find("SpatialRestrict");
  EXPECT_NE(restrict_pos, std::string::npos);
  EXPECT_LT(ndvi_pos, restrict_pos);
  EXPECT_FALSE(fixture.server().Explain(999).ok());
}

TEST(DsmsServerTest, PngDelivery) {
  DsmsOptions options;
  options.encode_png = true;
  ServerFixture fixture(options);
  std::vector<size_t> png_sizes;
  auto id = fixture.server().RegisterQuery(
      "goes.band1",
      [&png_sizes](int64_t, const Raster&, const std::vector<uint8_t>& png) {
        png_sizes.push_back(png.size());
        // PNG signature present.
        ASSERT_GE(png.size(), 8u);
        EXPECT_EQ(png[1], 'P');
      });
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  ASSERT_EQ(png_sizes.size(), 1u);
  EXPECT_GT(png_sizes[0], 100u);
}

TEST(DsmsServerTest, EndAllStreamsBroadcastsStreamEnd) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery("goes.band1",
                                           capture.Callback());
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  GS_ASSERT_OK(fixture.server().EndAllStreams());
  EXPECT_EQ(capture.frames.size(), 1u);
}

TEST(DsmsServerTest, AggregateQueryThroughServer) {
  ServerFixture fixture;
  std::vector<double> averages;
  auto id = fixture.server().RegisterQuery(
      "aggregate(goes.band1, \"avg\", 1, bbox(-120, 28, -100, 45))",
      [&averages](int64_t, const Raster& raster,
                  const std::vector<uint8_t>&) {
        averages.push_back(raster.At(0, 0));
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 3));
  ASSERT_EQ(averages.size(), 3u);
  for (double avg : averages) {
    EXPECT_GE(avg, 0.0);
    EXPECT_LE(avg, 1.0);
  }
}


TEST(DsmsServerTest, RgbCompositeQueryDeliversThreeBands) {
  // stack()/rgb() build the colour (Z^3) value sets of Sec. 2 from
  // single-band instrument streams; delivery assembles 3-band frames
  // that PNG-encode as colour images.
  DsmsOptions options;
  options.encode_png = true;
  ServerFixture fixture(options);
  int bands_seen = 0;
  size_t png_size = 0;
  auto id = fixture.server().RegisterQuery(
      "rgb(goes.band2, goes.band1, goes.band2)",
      [&](int64_t, const Raster& raster, const std::vector<uint8_t>& png) {
        bands_seen = raster.bands();
        png_size = png.size();
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  EXPECT_EQ(bands_seen, 3);
  ASSERT_GT(png_size, 100u);
}

TEST(DsmsServerTest, SlidingAggregateQuery) {
  ServerFixture fixture;
  std::vector<int64_t> window_starts;
  auto id = fixture.server().RegisterQuery(
      "aggregate(goes.band1, \"avg\", 3, 1, bbox(-120, 28, -100, 45))",
      [&window_starts](int64_t frame_id, const Raster&,
                       const std::vector<uint8_t>&) {
        window_starts.push_back(frame_id);
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 6));
  // Window 3 sliding by 1 over 6 scans: emissions for windows starting
  // at scans 0, 1, 2, 3.
  ASSERT_EQ(window_starts.size(), 4u);
  EXPECT_EQ(window_starts[0], 0);
  EXPECT_EQ(window_starts[3], 3);
}


TEST(DsmsServerTest, DerivedStreamServesDownstreamQueries) {
  // Closure at the system level: register NDVI once as a continuous
  // view, then subscribe two regional queries to the view.
  ServerFixture fixture;
  auto view = fixture.server().RegisterDerivedStream(
      "products.ndvi", "ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  Capture west, east;
  auto id1 = fixture.server().RegisterQuery(
      "region(products.ndvi, bbox(-125, 24, -100, 50))", west.Callback());
  auto id2 = fixture.server().RegisterQuery(
      "region(products.ndvi, bbox(-100, 24, -66, 50))", east.Callback());
  ASSERT_TRUE(id1.ok()) << id1.status().ToString();
  ASSERT_TRUE(id2.ok()) << id2.status().ToString();

  GS_ASSERT_OK(fixture.Ingest(0, 2));
  ASSERT_EQ(west.frames.size(), 2u);
  ASSERT_EQ(east.frames.size(), 2u);
  // The view really computed NDVI: values stay in [-1, 1].
  double lo, hi;
  west.frames[0].second.MinMax(0, &lo, &hi);
  EXPECT_GE(lo, -1.0);
  EXPECT_LE(hi, 1.0);
}

TEST(DsmsServerTest, DerivedStreamMatchesDirectQuery) {
  // A query over the view delivers the same pixels as the inlined
  // query over the base bands.
  ServerFixture fixture;
  auto view = fixture.server().RegisterDerivedStream(
      "products.ndvi", "ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(view.ok());
  Capture via_view, direct;
  auto q1 = fixture.server().RegisterQuery(
      "region(products.ndvi, bbox(-120, 28, -100, 45))",
      via_view.Callback());
  auto q2 = fixture.server().RegisterQuery(
      "region(ndvi(goes.band2, goes.band1), bbox(-120, 28, -100, 45))",
      direct.Callback());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  ASSERT_EQ(via_view.frames.size(), direct.frames.size());
  for (size_t f = 0; f < direct.frames.size(); ++f) {
    auto diff = Raster::AbsDifference(via_view.frames[f].second,
                                      direct.frames[f].second);
    ASSERT_TRUE(diff.ok()) << diff.status().ToString();
    EXPECT_NEAR(*diff, 0.0, 1e-9) << "frame " << f;
  }
}

TEST(DsmsServerTest, DerivedStreamRestrictions) {
  ServerFixture fixture;
  // Duplicate names and self-reference are rejected.
  auto v1 = fixture.server().RegisterDerivedStream(
      "goes.band1", "ndvi(goes.band2, goes.band1)");
  EXPECT_EQ(v1.status().code(), StatusCode::kAlreadyExists);
  auto v2 = fixture.server().RegisterDerivedStream(
      "loop", "region(loop, bbox(0,0,1,1))");
  EXPECT_FALSE(v2.ok());  // unknown stream 'loop' at analysis time
  // A registered view cannot be unregistered.
  auto v3 = fixture.server().RegisterDerivedStream(
      "products.ndvi", "ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(fixture.server().UnregisterQuery(*v3).code(),
            StatusCode::kFailedPrecondition);
  // Views have no delivery operator.
  EXPECT_FALSE(fixture.server().FramesDelivered(*v3).ok());
}

TEST(DsmsServerTest, ViewsOnViews) {
  ServerFixture fixture;
  auto v1 = fixture.server().RegisterDerivedStream(
      "products.ndvi", "ndvi(goes.band2, goes.band1)");
  ASSERT_TRUE(v1.ok());
  auto v2 = fixture.server().RegisterDerivedStream(
      "products.ndvi_scaled", "rescale(products.ndvi, 100, 100)");
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  Capture capture;
  auto q = fixture.server().RegisterQuery("products.ndvi_scaled",
                                          capture.Callback());
  ASSERT_TRUE(q.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  ASSERT_EQ(capture.frames.size(), 1u);
  double lo, hi;
  capture.frames[0].second.MinMax(0, &lo, &hi);
  EXPECT_GE(lo, 0.0);
  EXPECT_LE(hi, 200.0);
  EXPECT_GT(hi, lo);
}

TEST(DsmsServerTest, ShedQueryThroughServer) {
  ServerFixture fixture;
  Capture full, shed;
  auto q1 = fixture.server().RegisterQuery("goes.band1", full.Callback());
  auto q2 = fixture.server().RegisterQuery(
      "shed(goes.band1, \"rows\", 0.5)", shed.Callback());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  ASSERT_EQ(shed.frames.size(), 1u);
  // The shed frame has nodata rows the full frame does not.
  auto diff = Raster::AbsDifference(full.frames[0].second,
                                    shed.frames[0].second);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(*diff, 0.0);
}


TEST(DsmsServerTest, WorkerPoolMatchesSynchronousDelivery) {
  // The same queries through a 4-worker pool and synchronously must
  // deliver pixel-identical frames (per-query event order is the
  // scheduler's ordering invariant).
  const char* queries[] = {
      "region(goes.band1, bbox(-120, 28, -100, 45))",
      "ndvi(goes.band2, goes.band1)",
      "vrange(goes.band2, 0, 0.3, 1.0)",
  };
  auto run = [&](size_t workers) {
    DsmsOptions options;
    options.workers = workers;
    ServerFixture fixture(options);
    // Callbacks fire on worker threads; captures are per-query, and
    // one query's callbacks are serialized by the pipeline claim, so
    // plain vectors are safe (TSan would flag violations).
    std::vector<std::unique_ptr<Capture>> captures;
    for (const char* q : queries) {
      captures.push_back(std::make_unique<Capture>());
      auto id = fixture.server().RegisterQuery(q, captures.back()->Callback());
      EXPECT_TRUE(id.ok()) << id.status().ToString();
    }
    Status st = fixture.Ingest(0, 3);
    EXPECT_TRUE(st.ok()) << st.ToString();
    st = fixture.server().Flush();
    EXPECT_TRUE(st.ok()) << st.ToString();
    return captures;
  };
  auto pooled = run(4);
  auto sync = run(0);
  ASSERT_EQ(pooled.size(), sync.size());
  for (size_t q = 0; q < sync.size(); ++q) {
    ASSERT_EQ(pooled[q]->frames.size(), sync[q]->frames.size())
        << "query " << q;
    for (size_t f = 0; f < sync[q]->frames.size(); ++f) {
      EXPECT_EQ(pooled[q]->frames[f].first, sync[q]->frames[f].first);
      auto diff = Raster::AbsDifference(pooled[q]->frames[f].second,
                                        sync[q]->frames[f].second);
      ASSERT_TRUE(diff.ok());
      EXPECT_EQ(*diff, 0.0) << "query " << q << " frame " << f;
    }
  }
}

TEST(DsmsServerTest, WorkerPoolEndAllStreamsDrains) {
  DsmsOptions options;
  options.workers = 2;
  ServerFixture fixture(options);
  EXPECT_EQ(fixture.server().num_workers(), 2u);
  Capture capture;
  auto id = fixture.server().RegisterQuery("goes.band1", capture.Callback());
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  // EndAllStreams flushes the pool, so delivery counters are final.
  GS_ASSERT_OK(fixture.server().EndAllStreams());
  EXPECT_EQ(capture.frames.size(), 2u);
  auto delivered = fixture.server().FramesDelivered(*id);
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 2u);
  auto stats = fixture.server().SchedulerStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].processed, stats[0].enqueued);
  EXPECT_EQ(stats[0].dropped, 0u);
}

TEST(DsmsServerTest, WorkerPoolUnregisterStopsDelivery) {
  DsmsOptions options;
  options.workers = 2;
  ServerFixture fixture(options);
  Capture keep, drop;
  auto id_keep =
      fixture.server().RegisterQuery("goes.band1", keep.Callback());
  auto id_drop =
      fixture.server().RegisterQuery("goes.band2", drop.Callback());
  ASSERT_TRUE(id_keep.ok());
  ASSERT_TRUE(id_drop.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 1));
  GS_ASSERT_OK(fixture.server().Flush());
  GS_ASSERT_OK(fixture.server().UnregisterQuery(*id_drop));
  GS_ASSERT_OK(fixture.Ingest(1, 1));
  GS_ASSERT_OK(fixture.server().Flush());
  EXPECT_EQ(keep.frames.size(), 2u);
  EXPECT_EQ(drop.frames.size(), 1u);
}

TEST(DsmsServerTest, ExplainAnalyzeShowsRuntimeCounters) {
  ServerFixture fixture;
  Capture capture;
  auto id = fixture.server().RegisterQuery(
      "region(ndvi(goes.band2, goes.band1), bbox(-110, 25, -80, 48))",
      capture.Callback());
  ASSERT_TRUE(id.ok());
  GS_ASSERT_OK(fixture.Ingest(0, 2));
  auto text = fixture.server().ExplainAnalyze(*id);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("points_in="), std::string::npos);
  EXPECT_NE(text->find("ndvi"), std::string::npos);
  // The counters are non-zero after ingest.
  EXPECT_EQ(text->find("points_in=0 "), std::string::npos);
  EXPECT_FALSE(fixture.server().ExplainAnalyze(12345).ok());
}

}  // namespace
}  // namespace geostreams
