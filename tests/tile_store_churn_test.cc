// Retention/scan churn test — the reader-safety contract of the
// tile-store GC under real concurrency (run in the TSan tier-1 lane):
// one writer appends frames, readers continuously SINCE-scan the
// recent window, and retention passes prune frames and delete/rewrite
// segments the whole time. The audit: a scan NEVER observes a torn
// frame — every frame a scan emits is complete (begin, every cell of
// every batch bit-exact for its frame id, end) even when the frame's
// segment file was unlinked or rewritten mid-scan; scans never fail
// with anything but a clean result; and the store survives shutdown
// with the churn still hot.

#include "store/tile_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace geostreams {
namespace {

namespace fs = std::filesystem;
using testing_util::LatLonLattice;
using testing_util::TestValue;

constexpr const char* kSource = "churn.src";

std::string FreshDir() {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = ::testing::TempDir() + "gschurn-" +
                    info->test_suite_name() + "-" + info->name();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Verifies one collected scan: frames well-formed, every point of
/// every emitted frame carries its frame's exact TestValue stamp, and
/// every emitted frame is complete (all cells present).
void AuditScan(const std::vector<StreamEvent>& events,
               const GridLattice& lattice, std::atomic<uint64_t>* audited) {
  ASSERT_TRUE(testing_util::WellFormedFrames(events));
  int64_t open_frame = -1;
  uint64_t points_in_frame = 0;
  for (const StreamEvent& e : events) {
    switch (e.kind) {
      case EventKind::kFrameBegin:
        open_frame = e.frame.frame_id;
        points_in_frame = 0;
        break;
      case EventKind::kPointBatch:
        ASSERT_NE(open_frame, -1);
        for (size_t i = 0; i < e.batch->size(); ++i) {
          // A torn read (half a frame from a pruned segment, bytes
          // from a rewritten page at stale offsets) cannot produce
          // the exact per-frame stamp; CRC catches bit damage first.
          ASSERT_EQ(e.batch->ValueAt(i, 0),
                    TestValue(open_frame, e.batch->cols[i],
                              e.batch->rows[i]))
              << "torn value in frame " << open_frame;
          ASSERT_EQ(e.batch->timestamps[i], open_frame);
        }
        points_in_frame += e.batch->size();
        break;
      case EventKind::kFrameEnd:
        ASSERT_EQ(e.frame.frame_id, open_frame);
        ASSERT_EQ(points_in_frame,
                  static_cast<uint64_t>(lattice.num_cells()))
            << "frame " << open_frame << " emitted incomplete";
        ++*audited;
        open_frame = -1;
        break;
      case EventKind::kStreamEnd:
        FAIL() << "store scans never emit StreamEnd";
    }
  }
}

TEST(TileStoreChurnTest, ScansNeverTearWhileRetentionPrunesConcurrently) {
  TileStoreOptions options;
  options.dir = FreshDir();
  options.tile_size = 16;
  // Small segments (about 2 frames each) so retention constantly
  // deletes and rewrites segments under the readers.
  options.segment_max_bytes = 6000;
  options.retention_max_frames = 8;
  options.gc_rewrite_dead_fraction = 0.3;
  auto opened = TileStore::Open(options);
  GS_ASSERT_OK(opened.status());
  TileStore* store = opened->get();

  const GridLattice lattice = LatLonLattice(16, 12);
  constexpr int64_t kFrames = 160;

  std::atomic<int64_t> watermark{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> frames_audited{0};

  std::thread writer([&] {
    for (int64_t f = 1; f <= kFrames; ++f) {
      FrameInfo info;
      info.frame_id = f;
      info.lattice = lattice;
      info.expected_points = lattice.num_cells();
      Raster raster(lattice.width(), lattice.height(), 1);
      raster.set_lattice(lattice);
      for (int64_t row = 0; row < lattice.height(); ++row) {
        for (int64_t col = 0; col < lattice.width(); ++col) {
          raster.Set(col, row, TestValue(f, col, row));
        }
      }
      const std::vector<uint8_t> filled(
          static_cast<size_t>(lattice.num_cells()), 1);
      Status st = store->PutFrame(kSource, info, raster, filled);
      ASSERT_TRUE(st.ok()) << st.ToString();
      watermark.store(f, std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  // Retention storms in its own thread — every pass prunes down to
  // 8 frames while the writer keeps pushing the watermark.
  std::thread reaper([&] {
    while (!done.load(std::memory_order_acquire)) {
      Status st = store->RunRetentionNow();
      ASSERT_TRUE(st.ok()) << st.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Readers scan a SINCE window that deliberately reaches below the
  // retention horizon, racing the prune.
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t wm = watermark.load(std::memory_order_acquire);
        if (wm < 4) continue;
        CollectingSink sink;
        StoreScan scan;
        scan.min_frame_id = wm - 12 - r;  // below the horizon on purpose
        Status st = store->Scan(kSource, scan, &sink);
        ASSERT_TRUE(st.ok()) << st.ToString();
        AuditScan(sink.events(), lattice, &frames_audited);
      }
    });
  }

  writer.join();
  reaper.join();
  for (std::thread& t : readers) t.join();

  // The churn really exercised the machinery.
  const TileStoreStats stats = store->TotalStats();
  EXPECT_GT(stats.frames_pruned, 100u);
  EXPECT_GT(stats.segments_deleted + stats.segments_rewritten, 10u);
  EXPECT_EQ(stats.tile_read_errors, 0u);
  EXPECT_GT(frames_audited.load(), 0u);

  // Post-churn: the survivors replay clean, and a reopen recovers.
  CollectingSink sink;
  GS_ASSERT_OK(store->Scan(kSource, StoreScan{}, &sink));
  std::atomic<uint64_t> final_audit{0};
  AuditScan(sink.events(), lattice, &final_audit);
  EXPECT_GE(final_audit.load(), 1u);

  opened->reset();
  auto reopened = TileStore::Open(options);
  GS_ASSERT_OK(reopened.status());
  EXPECT_GE((*reopened)->FrameIds(kSource, INT64_MIN, INT64_MAX).size(), 1u);
}

}  // namespace
}  // namespace geostreams
