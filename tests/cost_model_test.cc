#include "query/cost_model.h"

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::MakeTestCatalog;

Result<ExprPtr> Analyzed(const StreamCatalog& catalog,
                         const std::string& query) {
  GEOSTREAMS_ASSIGN_OR_RETURN(ExprPtr e, ParseQuery(query));
  GEOSTREAMS_RETURN_IF_ERROR(AnalyzeQuery(catalog, e));
  return e;
}

TEST(CostModelTest, StreamRefEmitsLatticeCells) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "g.nir");
  ASSERT_TRUE(e.ok());
  std::map<const Expr*, NodeCost> per_node;
  auto cost = EstimatePlanCost(*e, &per_node);
  ASSERT_TRUE(cost.ok());
  EXPECT_DOUBLE_EQ(per_node.at(e->get()).output_points, 16.0 * 12.0);
}

TEST(CostModelTest, SpatialSelectivityTracksArea) {
  StreamCatalog catalog = MakeTestCatalog();
  // The test lattice extent is [-125, -117] x [39, 45] (16x12 cells of
  // 0.5 deg). A box covering the western half should have selectivity
  // about 0.5.
  auto e = Analyzed(catalog, "region(g.nir, bbox(-125, 39, -121, 45))");
  ASSERT_TRUE(e.ok());
  std::map<const Expr*, NodeCost> per_node;
  auto cost = EstimatePlanCost(*e, &per_node);
  ASSERT_TRUE(cost.ok());
  EXPECT_NEAR(per_node.at(e->get()).selectivity, 0.5, 0.01);
  // Fully covering box: selectivity 1; disjoint box: 0.
  auto all = Analyzed(catalog, "region(g.nir, bbox(-130, 30, -110, 50))");
  ASSERT_TRUE(all.ok());
  per_node.clear();
  ASSERT_TRUE(EstimatePlanCost(*all, &per_node).ok());
  EXPECT_DOUBLE_EQ(per_node.at(all->get()).selectivity, 1.0);
  auto none = Analyzed(catalog, "region(g.nir, bbox(0, 0, 10, 10))");
  ASSERT_TRUE(none.ok());
  per_node.clear();
  ASSERT_TRUE(EstimatePlanCost(*none, &per_node).ok());
  EXPECT_DOUBLE_EQ(per_node.at(none->get()).selectivity, 0.0);
}

TEST(CostModelTest, MagnifyAndReduceScalePoints) {
  StreamCatalog catalog = MakeTestCatalog();
  auto mag = Analyzed(catalog, "magnify(g.nir, 3)");
  ASSERT_TRUE(mag.ok());
  std::map<const Expr*, NodeCost> per_node;
  ASSERT_TRUE(EstimatePlanCost(*mag, &per_node).ok());
  EXPECT_DOUBLE_EQ(per_node.at(mag->get()).output_points,
                   16.0 * 12.0 * 9.0);
  auto red = Analyzed(catalog, "reduce(g.nir, 4)");
  ASSERT_TRUE(red.ok());
  per_node.clear();
  ASSERT_TRUE(EstimatePlanCost(*red, &per_node).ok());
  EXPECT_DOUBLE_EQ(per_node.at(red->get()).output_points, 12.0);
}

TEST(CostModelTest, StretchBuffersFrame) {
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog, "stretch(g.nir, \"linear\")");
  ASSERT_TRUE(e.ok());
  std::map<const Expr*, NodeCost> per_node;
  ASSERT_TRUE(EstimatePlanCost(*e, &per_node).ok());
  EXPECT_GT(per_node.at(e->get()).buffer_bytes, 0.0);
}

TEST(CostModelTest, ComposeBufferingDependsOnOrganization) {
  StreamCatalog catalog = MakeTestCatalog();
  // g.* streams are row-by-row: buffering ~ one row.
  auto row = Analyzed(catalog, "sub(g.nir, g.vis)");
  ASSERT_TRUE(row.ok());
  std::map<const Expr*, NodeCost> per_node;
  ASSERT_TRUE(EstimatePlanCost(*row, &per_node).ok());
  const double row_buffer = per_node.at(row->get()).buffer_bytes;

  // Image-organized copies of the same bands: buffering ~ a frame.
  StreamCatalog catalog2;
  GridLattice lattice = testing_util::LatLonLattice(16, 12);
  for (const char* name : {"i.nir", "i.vis"}) {
    GS_ASSERT_OK(catalog2.Register(GeoStreamDescriptor(
        name, ValueSet::ReflectanceF32(), lattice,
        PointOrganization::kImageByImage, TimestampPolicy::kScanSectorId)));
  }
  auto image = Analyzed(catalog2, "sub(i.nir, i.vis)");
  ASSERT_TRUE(image.ok());
  per_node.clear();
  ASSERT_TRUE(EstimatePlanCost(*image, &per_node).ok());
  const double image_buffer = per_node.at(image->get()).buffer_bytes;
  EXPECT_GT(image_buffer, row_buffer * 5.0);
}

TEST(CostModelTest, PushdownReducesEstimatedCost) {
  // The Sec. 3.4 claim, in the cost model: the optimized NDVI query
  // costs less than the naive one.
  StreamCatalog catalog = MakeTestCatalog();
  auto e = Analyzed(catalog,
                    "region(rescale(ndvi(g.nir, g.vis), 100, 0), "
                    "bbox(-125, 42, -123, 45))");
  ASSERT_TRUE(e.ok());
  OptimizerOptions naive_opts;
  naive_opts.spatial_pushdown = false;
  naive_opts.merge_restrictions = false;
  auto naive = OptimizeQuery(catalog, *e, naive_opts);
  ASSERT_TRUE(naive.ok());
  auto optimized = OptimizeQuery(catalog, *e);
  ASSERT_TRUE(optimized.ok());
  auto naive_cost = EstimatePlanCost(*naive);
  auto optimized_cost = EstimatePlanCost(*optimized);
  ASSERT_TRUE(naive_cost.ok());
  ASSERT_TRUE(optimized_cost.ok());
  EXPECT_LT(optimized_cost->total_cpu, naive_cost->total_cpu * 0.6)
      << "optimized=" << optimized_cost->ToString()
      << " naive=" << naive_cost->ToString();
  EXPECT_LT(optimized_cost->total_points_processed,
            naive_cost->total_points_processed);
}

TEST(CostModelTest, RequiresAnalyzedQuery) {
  auto parsed = ParseQuery("g.nir");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(EstimatePlanCost(*parsed).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CostModelTest, PlanCostToString) {
  PlanCost cost;
  cost.total_cpu = 100.0;
  cost.total_points_processed = 42.0;
  cost.max_buffer_bytes = 7.0;
  const std::string s = cost.ToString();
  EXPECT_NE(s.find("cpu=100"), std::string::npos);
  EXPECT_NE(s.find("points=42"), std::string::npos);
}

}  // namespace
}  // namespace geostreams
