#include "server/frame_archive.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ops/restriction_ops.h"
#include "query/planner.h"
#include "server/scan_schedule.h"
#include "server/stream_generator.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

std::string MakeArchiveDir(const char* name) {
  const std::string dir = std::string(::testing::TempDir()) + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(ArchiveTest, WriteThenReplayRoundTrips) {
  const std::string dir = MakeArchiveDir("roundtrip");
  GridLattice lattice = LatLonLattice(8, 6);
  {
    ArchiveWriter writer(dir, /*lo=*/0.0, /*hi=*/1.0);
    for (int64_t f = 0; f < 3; ++f) {
      GS_ASSERT_OK(PushFrame(&writer, lattice, f));
    }
    GS_ASSERT_OK(writer.Consume(StreamEvent::StreamEnd()));
    EXPECT_EQ(writer.frames_written(), 3);
  }

  ReplayGenerator replay(dir);
  GS_ASSERT_OK(replay.Open());
  ASSERT_EQ(replay.frames().size(), 3u);
  EXPECT_EQ(replay.frames()[0].frame_id, 0);
  EXPECT_EQ(replay.frames()[2].frame_id, 2);
  EXPECT_TRUE(replay.frames()[0].lattice == lattice);

  CollectingSink sink;
  GS_ASSERT_OK(replay.Replay(&sink));
  EXPECT_TRUE(WellFormedFrames(sink.events()));
  EXPECT_EQ(sink.NumFrames(), 3u);
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 3u * 48u);
  // 8-bit quantization over [0, 1]: error bound ~ 1/255.
  for (const auto& [key, v] : points) {
    const double expected =
        TestValue(std::get<2>(key), std::get<0>(key), std::get<1>(key));
    EXPECT_NEAR(v, expected, 1.0 / 255.0)
        << "frame " << std::get<2>(key);
  }
  // One StreamEnd at the end.
  EXPECT_EQ(sink.events().back().kind, EventKind::kStreamEnd);
}

TEST(ArchiveTest, PerFrameAutoRange) {
  // lo == hi => per-frame min/max recorded in the manifest, so frames
  // with very different ranges survive quantization.
  const std::string dir = MakeArchiveDir("autorange");
  GridLattice lattice = LatLonLattice(4, 1);
  {
    ArchiveWriter writer(dir);
    FrameInfo info;
    info.frame_id = 0;
    info.lattice = lattice;
    GS_ASSERT_OK(writer.Consume(StreamEvent::FrameBegin(info)));
    auto batch = std::make_shared<PointBatch>();
    batch->frame_id = 0;
    batch->band_count = 1;
    for (int32_t c = 0; c < 4; ++c) {
      batch->Append1(c, 0, 0, 1000.0 + 10.0 * c);
    }
    GS_ASSERT_OK(writer.Consume(StreamEvent::Batch(batch)));
    GS_ASSERT_OK(writer.Consume(StreamEvent::FrameEnd(info)));
    GS_ASSERT_OK(writer.Finish());
  }
  ReplayGenerator replay(dir);
  GS_ASSERT_OK(replay.Open());
  CollectingSink sink;
  GS_ASSERT_OK(replay.Replay(&sink));
  auto points = CollectPoints(sink.events());
  EXPECT_NEAR(points.at({0, 0, 0}), 1000.0, 0.1);
  EXPECT_NEAR(points.at({3, 0, 0}), 1030.0, 0.1);
}

TEST(ArchiveTest, ReplayFeedsQueriesLikeALiveStream) {
  // Record a generated stream, then run a restriction plan over the
  // replay — the archive is just another GeoStream.
  const std::string dir = MakeArchiveDir("queryable");
  InstrumentConfig config;
  config.crs_name = "latlon";
  config.cells_per_sector = 24 * 16;
  config.bands = {SpectralBand::kVisible};
  StreamGenerator gen(config, ScanSchedule::GoesRoutine());
  ASSERT_TRUE(gen.Init().ok());
  {
    ArchiveWriter writer(dir, 0.0, 1.0);
    GS_ASSERT_OK(gen.GenerateScans(0, 2, {&writer}));
    GS_ASSERT_OK(writer.Finish());
  }

  ReplayGenerator replay(dir);
  GS_ASSERT_OK(replay.Open());
  auto desc = replay.Descriptor("archive.vis");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->name(), "archive.vis");
  GS_ASSERT_OK(desc->Validate());

  SpatialRestrictionOp op("r", MakeBBoxRegion(-120.0, 28.0, -100.0, 45.0));
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(replay.Replay(op.input(0)));
  EXPECT_GT(sink.TotalPoints(), 0u);
  EXPECT_LT(sink.TotalPoints(), 2u * 24u * 16u);
}

TEST(ArchiveTest, Failures) {
  // Missing directory / empty archive.
  ReplayGenerator missing(std::string(::testing::TempDir()) + "/nope");
  EXPECT_FALSE(missing.Open().ok());
  const std::string dir = MakeArchiveDir("empty");
  { ArchiveWriter writer(dir); GS_ASSERT_OK(writer.Finish()); }
  ReplayGenerator empty(dir);
  EXPECT_EQ(empty.Open().code(), StatusCode::kNotFound);
  CollectingSink sink;
  EXPECT_EQ(empty.Replay(&sink).code(), StatusCode::kFailedPrecondition);

  // Corrupt manifest.
  const std::string bad_dir = MakeArchiveDir("corrupt");
  std::FILE* f = std::fopen((bad_dir + "/manifest.txt").c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a manifest line\n", f);
  std::fclose(f);
  ReplayGenerator corrupt(bad_dir);
  EXPECT_EQ(corrupt.Open().code(), StatusCode::kParseError);

  // Multi-band input rejected by the writer.
  ArchiveWriter writer(MakeArchiveDir("multiband"));
  FrameInfo info;
  info.frame_id = 0;
  info.lattice = LatLonLattice(2, 2);
  GS_ASSERT_OK(writer.Consume(StreamEvent::FrameBegin(info)));
  auto batch = std::make_shared<PointBatch>();
  batch->frame_id = 0;
  batch->band_count = 2;
  const double v[2] = {0.0, 0.0};
  batch->Append(0, 0, 0, v);
  EXPECT_FALSE(writer.Consume(StreamEvent::Batch(batch)).ok());
}

}  // namespace
}  // namespace geostreams
