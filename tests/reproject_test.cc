#include "ops/reproject_op.h"

#include <gtest/gtest.h>

#include <set>

#include "geo/crs_registry.h"
#include "geo/geographic_crs.h"
#include "tests/test_util.h"

namespace geostreams {
namespace {

using testing_util::CollectPoints;
using testing_util::LatLonLattice;
using testing_util::PushFrame;
using testing_util::TestValue;
using testing_util::WellFormedFrames;

TEST(DeriveLatticeTest, PreservesSizeAndAspect) {
  GridLattice src = LatLonLattice(40, 20);
  auto utm = ResolveCrs("utm:10n");
  ASSERT_TRUE(utm.ok());
  auto out = ReprojectOp::DeriveLattice(src, *utm);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->width(), 40);
  EXPECT_EQ(out->height(), 20);
  EXPECT_EQ(out->crs()->name(), "utm:10n");
  EXPECT_GT(out->dx(), 0.0);
  EXPECT_LT(out->dy(), 0.0);  // row 0 north
}

TEST(DeriveLatticeTest, FailsOutsideTargetDomain) {
  GridLattice src = LatLonLattice(10, 10, 0.5, /*west=*/100.0);
  auto geos = ResolveCrs("geos:-75");  // antipodal: not visible
  ASSERT_TRUE(geos.ok());
  EXPECT_FALSE(ReprojectOp::DeriveLattice(src, *geos).ok());
}

TEST(ReprojectTest, IdentityReprojectionKeepsValues) {
  GridLattice lattice = LatLonLattice(8, 6);
  ReprojectOp op("p", GeographicCrs::Instance(), ResampleKernel::kNearest);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 4));
  GS_ASSERT_OK(op.input(0)->Consume(StreamEvent::StreamEnd()));

  EXPECT_TRUE(WellFormedFrames(sink.events()));
  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 48u);
  // Same CRS: derived lattice matches the source, values survive.
  EXPECT_NEAR(points.at({3, 2, 4}), TestValue(4, 3, 2), 1e-12);
  EXPECT_NEAR(points.at({7, 5, 4}), TestValue(4, 7, 5), 1e-12);
}

TEST(ReprojectTest, LatLonToMercatorPreservesColumnStructure) {
  // TestValue varies mostly with the column; a lat/lon -> Mercator
  // re-projection preserves columns (both are equirectangular in x).
  GridLattice lattice = LatLonLattice(16, 8);
  auto merc = ResolveCrs("mercator");
  ASSERT_TRUE(merc.ok());
  ReprojectOp op("p", *merc, ResampleKernel::kBilinear);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));

  auto points = CollectPoints(sink.events());
  ASSERT_EQ(points.size(), 16u * 8u);
  // For every output point, the value modulo the row contribution
  // tracks the column: check monotonicity along each row.
  for (int32_t row = 0; row < 8; ++row) {
    double prev = -1.0;
    for (int32_t col = 0; col < 16; ++col) {
      const double v = points.at({col, row, 0});
      EXPECT_GT(v, prev) << "col " << col << " row " << row;
      prev = v;
    }
  }
}

TEST(ReprojectTest, GeosToLatLonRoundTripsValues) {
  // Build a frame in geostationary scan angles covering the western
  // US, re-project to lat/lon, and verify values by inverse lookup.
  auto geos = ResolveCrs("geos:-75");
  ASSERT_TRUE(geos.ok());
  // Scan-angle box around California seen from 75W.
  double x0, y0, x1, y1;
  ASSERT_TRUE((*geos)->FromGeographic(-124.0, 33.0, &x0, &y0).ok());
  ASSERT_TRUE((*geos)->FromGeographic(-114.0, 42.0, &x1, &y1).ok());
  const int64_t w = 24, h = 20;
  const double dx = (x1 - x0) / w;
  const double dy = (y1 - y0) / h;
  GridLattice lattice(*geos, x0 + dx / 2.0, y1 - dy / 2.0, dx, -dy, w, h);
  ASSERT_TRUE(lattice.Validate().ok());

  ReprojectOp op("p", GeographicCrs::Instance(), ResampleKernel::kNearest);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));

  auto points = CollectPoints(sink.events());
  // The curved geostationary footprint covers only part of its
  // lat/lon bounding lattice; emptily-mapped cells are skipped.
  ASSERT_GT(points.size(), static_cast<size_t>(w * h) / 3);
  ASSERT_LT(points.size(), static_cast<size_t>(w * h));
  // Spot-check: output values must be values that exist in the input
  // frame (nearest-neighbour gather cannot invent values).
  std::set<int64_t> input_values;
  for (int64_t r = 0; r < h; ++r) {
    for (int64_t c = 0; c < w; ++c) {
      input_values.insert(
          static_cast<int64_t>(TestValue(0, c, r) * 1e9 + 0.5));
    }
  }
  for (const auto& [key, v] : points) {
    EXPECT_TRUE(input_values.count(static_cast<int64_t>(v * 1e9 + 0.5)))
        << "value " << v << " not from the input frame";
  }
}

TEST(ReprojectTest, BuffersTheFrame) {
  GridLattice lattice = LatLonLattice(32, 32);
  auto merc = ResolveCrs("mercator");
  ASSERT_TRUE(merc.ok());
  ReprojectOp op("p", *merc);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), lattice, 0));
  EXPECT_GE(op.metrics().buffered_bytes_high_water,
            32u * 32u * sizeof(double));
  EXPECT_EQ(op.metrics().buffered_bytes, 0u);  // released after flush
}

TEST(ReprojectTest, FixedLatticeViewport) {
  // A fixed client viewport: only the overlapping part is produced.
  GridLattice src = LatLonLattice(10, 10);  // [-125, -120] x [40, 45]
  GridLattice viewport(GeographicCrs::Instance(), -122.25, 42.75, 0.5,
                       -0.5, 10, 10);  // [-122.5, -117.5] x [38, 43]
  ReprojectOp op("p", GeographicCrs::Instance(), ResampleKernel::kNearest,
                 viewport);
  CollectingSink sink;
  op.BindOutput(&sink);
  GS_ASSERT_OK(PushFrame(op.input(0), src, 0));
  auto points = CollectPoints(sink.events());
  // Only viewport cells inside the source extent appear.
  ASSERT_GT(points.size(), 0u);
  EXPECT_LT(points.size(), 100u);
  for (const auto& [key, v] : points) {
    const double x = viewport.CellX(std::get<0>(key));
    const double y = viewport.CellY(std::get<1>(key));
    EXPECT_TRUE(src.Extent().Contains(x, y));
  }
}

TEST(ReprojectTest, RejectsUnframedAndMultiband) {
  auto merc = ResolveCrs("mercator");
  ASSERT_TRUE(merc.ok());
  ReprojectOp op("p", *merc);
  CollectingSink sink;
  op.BindOutput(&sink);
  auto batch = std::make_shared<PointBatch>();
  batch->band_count = 1;
  batch->Append1(0, 0, 0, 1.0);
  EXPECT_FALSE(op.input(0)->Consume(StreamEvent::Batch(batch)).ok());
}

}  // namespace
}  // namespace geostreams
