file(REMOVE_RECURSE
  "CMakeFiles/bench_organizations.dir/bench_organizations.cc.o"
  "CMakeFiles/bench_organizations.dir/bench_organizations.cc.o.d"
  "bench_organizations"
  "bench_organizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_organizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
