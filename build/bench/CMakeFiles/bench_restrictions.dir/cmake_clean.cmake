file(REMOVE_RECURSE
  "CMakeFiles/bench_restrictions.dir/bench_restrictions.cc.o"
  "CMakeFiles/bench_restrictions.dir/bench_restrictions.cc.o.d"
  "bench_restrictions"
  "bench_restrictions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restrictions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
