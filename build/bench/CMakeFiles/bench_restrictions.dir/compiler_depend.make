# Empty compiler generated dependencies file for bench_restrictions.
# This may be replaced when dependencies are built.
