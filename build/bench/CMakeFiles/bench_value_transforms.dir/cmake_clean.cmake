file(REMOVE_RECURSE
  "CMakeFiles/bench_value_transforms.dir/bench_value_transforms.cc.o"
  "CMakeFiles/bench_value_transforms.dir/bench_value_transforms.cc.o.d"
  "bench_value_transforms"
  "bench_value_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_value_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
