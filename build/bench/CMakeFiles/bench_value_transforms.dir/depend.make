# Empty dependencies file for bench_value_transforms.
# This may be replaced when dependencies are built.
