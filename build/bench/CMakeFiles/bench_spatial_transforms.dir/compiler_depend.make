# Empty compiler generated dependencies file for bench_spatial_transforms.
# This may be replaced when dependencies are built.
