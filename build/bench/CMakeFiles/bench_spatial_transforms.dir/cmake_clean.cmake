file(REMOVE_RECURSE
  "CMakeFiles/bench_spatial_transforms.dir/bench_spatial_transforms.cc.o"
  "CMakeFiles/bench_spatial_transforms.dir/bench_spatial_transforms.cc.o.d"
  "bench_spatial_transforms"
  "bench_spatial_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spatial_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
