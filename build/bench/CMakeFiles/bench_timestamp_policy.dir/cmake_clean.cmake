file(REMOVE_RECURSE
  "CMakeFiles/bench_timestamp_policy.dir/bench_timestamp_policy.cc.o"
  "CMakeFiles/bench_timestamp_policy.dir/bench_timestamp_policy.cc.o.d"
  "bench_timestamp_policy"
  "bench_timestamp_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timestamp_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
