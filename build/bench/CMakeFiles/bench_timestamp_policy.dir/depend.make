# Empty dependencies file for bench_timestamp_policy.
# This may be replaced when dependencies are built.
