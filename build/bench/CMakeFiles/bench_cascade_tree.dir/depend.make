# Empty dependencies file for bench_cascade_tree.
# This may be replaced when dependencies are built.
