file(REMOVE_RECURSE
  "CMakeFiles/bench_cascade_tree.dir/bench_cascade_tree.cc.o"
  "CMakeFiles/bench_cascade_tree.dir/bench_cascade_tree.cc.o.d"
  "bench_cascade_tree"
  "bench_cascade_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cascade_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
