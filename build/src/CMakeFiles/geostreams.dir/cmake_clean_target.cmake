file(REMOVE_RECURSE
  "libgeostreams.a"
)
