
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/geostreams.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/geostreams.dir/common/status.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/geostreams.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/geostream.cc" "src/CMakeFiles/geostreams.dir/core/geostream.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/core/geostream.cc.o.d"
  "/root/repo/src/core/stream_event.cc" "src/CMakeFiles/geostreams.dir/core/stream_event.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/core/stream_event.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/geostreams.dir/core/value.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/core/value.cc.o.d"
  "/root/repo/src/geo/crs.cc" "src/CMakeFiles/geostreams.dir/geo/crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/crs.cc.o.d"
  "/root/repo/src/geo/crs_registry.cc" "src/CMakeFiles/geostreams.dir/geo/crs_registry.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/crs_registry.cc.o.d"
  "/root/repo/src/geo/geographic_crs.cc" "src/CMakeFiles/geostreams.dir/geo/geographic_crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/geographic_crs.cc.o.d"
  "/root/repo/src/geo/geostationary_crs.cc" "src/CMakeFiles/geostreams.dir/geo/geostationary_crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/geostationary_crs.cc.o.d"
  "/root/repo/src/geo/lambert_conformal_crs.cc" "src/CMakeFiles/geostreams.dir/geo/lambert_conformal_crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/lambert_conformal_crs.cc.o.d"
  "/root/repo/src/geo/lattice.cc" "src/CMakeFiles/geostreams.dir/geo/lattice.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/lattice.cc.o.d"
  "/root/repo/src/geo/mercator_crs.cc" "src/CMakeFiles/geostreams.dir/geo/mercator_crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/mercator_crs.cc.o.d"
  "/root/repo/src/geo/region.cc" "src/CMakeFiles/geostreams.dir/geo/region.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/region.cc.o.d"
  "/root/repo/src/geo/transverse_mercator_crs.cc" "src/CMakeFiles/geostreams.dir/geo/transverse_mercator_crs.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/geo/transverse_mercator_crs.cc.o.d"
  "/root/repo/src/mqo/cascade_tree.cc" "src/CMakeFiles/geostreams.dir/mqo/cascade_tree.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/mqo/cascade_tree.cc.o.d"
  "/root/repo/src/mqo/filter_bank.cc" "src/CMakeFiles/geostreams.dir/mqo/filter_bank.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/mqo/filter_bank.cc.o.d"
  "/root/repo/src/mqo/grid_index.cc" "src/CMakeFiles/geostreams.dir/mqo/grid_index.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/mqo/grid_index.cc.o.d"
  "/root/repo/src/mqo/shared_restriction.cc" "src/CMakeFiles/geostreams.dir/mqo/shared_restriction.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/mqo/shared_restriction.cc.o.d"
  "/root/repo/src/ops/aggregate_op.cc" "src/CMakeFiles/geostreams.dir/ops/aggregate_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/aggregate_op.cc.o.d"
  "/root/repo/src/ops/compose_op.cc" "src/CMakeFiles/geostreams.dir/ops/compose_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/compose_op.cc.o.d"
  "/root/repo/src/ops/delivery_op.cc" "src/CMakeFiles/geostreams.dir/ops/delivery_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/delivery_op.cc.o.d"
  "/root/repo/src/ops/macro_ops.cc" "src/CMakeFiles/geostreams.dir/ops/macro_ops.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/macro_ops.cc.o.d"
  "/root/repo/src/ops/reproject_op.cc" "src/CMakeFiles/geostreams.dir/ops/reproject_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/reproject_op.cc.o.d"
  "/root/repo/src/ops/restriction_ops.cc" "src/CMakeFiles/geostreams.dir/ops/restriction_ops.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/restriction_ops.cc.o.d"
  "/root/repo/src/ops/shedding_op.cc" "src/CMakeFiles/geostreams.dir/ops/shedding_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/shedding_op.cc.o.d"
  "/root/repo/src/ops/spatial_transform_op.cc" "src/CMakeFiles/geostreams.dir/ops/spatial_transform_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/spatial_transform_op.cc.o.d"
  "/root/repo/src/ops/stretch_transform_op.cc" "src/CMakeFiles/geostreams.dir/ops/stretch_transform_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/stretch_transform_op.cc.o.d"
  "/root/repo/src/ops/time_set.cc" "src/CMakeFiles/geostreams.dir/ops/time_set.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/time_set.cc.o.d"
  "/root/repo/src/ops/value_transform_op.cc" "src/CMakeFiles/geostreams.dir/ops/value_transform_op.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/ops/value_transform_op.cc.o.d"
  "/root/repo/src/query/analyzer.cc" "src/CMakeFiles/geostreams.dir/query/analyzer.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/analyzer.cc.o.d"
  "/root/repo/src/query/ast.cc" "src/CMakeFiles/geostreams.dir/query/ast.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/ast.cc.o.d"
  "/root/repo/src/query/cost_model.cc" "src/CMakeFiles/geostreams.dir/query/cost_model.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/cost_model.cc.o.d"
  "/root/repo/src/query/explain.cc" "src/CMakeFiles/geostreams.dir/query/explain.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/explain.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/CMakeFiles/geostreams.dir/query/lexer.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/lexer.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/geostreams.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/optimizer.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/geostreams.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/parser.cc.o.d"
  "/root/repo/src/query/planner.cc" "src/CMakeFiles/geostreams.dir/query/planner.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/query/planner.cc.o.d"
  "/root/repo/src/raster/checksum.cc" "src/CMakeFiles/geostreams.dir/raster/checksum.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/checksum.cc.o.d"
  "/root/repo/src/raster/frame_assembler.cc" "src/CMakeFiles/geostreams.dir/raster/frame_assembler.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/frame_assembler.cc.o.d"
  "/root/repo/src/raster/histogram.cc" "src/CMakeFiles/geostreams.dir/raster/histogram.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/histogram.cc.o.d"
  "/root/repo/src/raster/png_encoder.cc" "src/CMakeFiles/geostreams.dir/raster/png_encoder.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/png_encoder.cc.o.d"
  "/root/repo/src/raster/pnm_io.cc" "src/CMakeFiles/geostreams.dir/raster/pnm_io.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/pnm_io.cc.o.d"
  "/root/repo/src/raster/raster.cc" "src/CMakeFiles/geostreams.dir/raster/raster.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/raster.cc.o.d"
  "/root/repo/src/raster/resample.cc" "src/CMakeFiles/geostreams.dir/raster/resample.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/raster/resample.cc.o.d"
  "/root/repo/src/server/dsms_server.cc" "src/CMakeFiles/geostreams.dir/server/dsms_server.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/server/dsms_server.cc.o.d"
  "/root/repo/src/server/frame_archive.cc" "src/CMakeFiles/geostreams.dir/server/frame_archive.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/server/frame_archive.cc.o.d"
  "/root/repo/src/server/scan_schedule.cc" "src/CMakeFiles/geostreams.dir/server/scan_schedule.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/server/scan_schedule.cc.o.d"
  "/root/repo/src/server/stream_generator.cc" "src/CMakeFiles/geostreams.dir/server/stream_generator.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/server/stream_generator.cc.o.d"
  "/root/repo/src/server/synthetic_earth.cc" "src/CMakeFiles/geostreams.dir/server/synthetic_earth.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/server/synthetic_earth.cc.o.d"
  "/root/repo/src/stream/adaptive_shedding.cc" "src/CMakeFiles/geostreams.dir/stream/adaptive_shedding.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/adaptive_shedding.cc.o.d"
  "/root/repo/src/stream/executor.cc" "src/CMakeFiles/geostreams.dir/stream/executor.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/executor.cc.o.d"
  "/root/repo/src/stream/memory_tracker.cc" "src/CMakeFiles/geostreams.dir/stream/memory_tracker.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/memory_tracker.cc.o.d"
  "/root/repo/src/stream/metrics.cc" "src/CMakeFiles/geostreams.dir/stream/metrics.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/metrics.cc.o.d"
  "/root/repo/src/stream/operator.cc" "src/CMakeFiles/geostreams.dir/stream/operator.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/operator.cc.o.d"
  "/root/repo/src/stream/pipeline.cc" "src/CMakeFiles/geostreams.dir/stream/pipeline.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/pipeline.cc.o.d"
  "/root/repo/src/stream/scheduler.cc" "src/CMakeFiles/geostreams.dir/stream/scheduler.cc.o" "gcc" "src/CMakeFiles/geostreams.dir/stream/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
