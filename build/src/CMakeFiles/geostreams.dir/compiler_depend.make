# Empty compiler generated dependencies file for geostreams.
# This may be replaced when dependencies are built.
