# Empty dependencies file for geoquery.
# This may be replaced when dependencies are built.
