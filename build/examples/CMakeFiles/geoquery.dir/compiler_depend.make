# Empty compiler generated dependencies file for geoquery.
# This may be replaced when dependencies are built.
