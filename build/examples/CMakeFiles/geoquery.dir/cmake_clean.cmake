file(REMOVE_RECURSE
  "CMakeFiles/geoquery.dir/geoquery.cpp.o"
  "CMakeFiles/geoquery.dir/geoquery.cpp.o.d"
  "geoquery"
  "geoquery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geoquery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
