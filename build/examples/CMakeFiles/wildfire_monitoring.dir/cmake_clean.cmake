file(REMOVE_RECURSE
  "CMakeFiles/wildfire_monitoring.dir/wildfire_monitoring.cpp.o"
  "CMakeFiles/wildfire_monitoring.dir/wildfire_monitoring.cpp.o.d"
  "wildfire_monitoring"
  "wildfire_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildfire_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
