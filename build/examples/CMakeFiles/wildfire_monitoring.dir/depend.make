# Empty dependencies file for wildfire_monitoring.
# This may be replaced when dependencies are built.
