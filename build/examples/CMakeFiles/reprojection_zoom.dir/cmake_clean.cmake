file(REMOVE_RECURSE
  "CMakeFiles/reprojection_zoom.dir/reprojection_zoom.cpp.o"
  "CMakeFiles/reprojection_zoom.dir/reprojection_zoom.cpp.o.d"
  "reprojection_zoom"
  "reprojection_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reprojection_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
