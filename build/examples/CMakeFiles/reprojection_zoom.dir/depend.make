# Empty dependencies file for reprojection_zoom.
# This may be replaced when dependencies are built.
