# Empty dependencies file for regional_server.
# This may be replaced when dependencies are built.
