file(REMOVE_RECURSE
  "CMakeFiles/regional_server.dir/regional_server.cpp.o"
  "CMakeFiles/regional_server.dir/regional_server.cpp.o.d"
  "regional_server"
  "regional_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regional_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
