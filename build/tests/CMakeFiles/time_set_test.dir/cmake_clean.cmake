file(REMOVE_RECURSE
  "CMakeFiles/time_set_test.dir/time_set_test.cc.o"
  "CMakeFiles/time_set_test.dir/time_set_test.cc.o.d"
  "time_set_test"
  "time_set_test.pdb"
  "time_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
