# Empty dependencies file for crs_test.
# This may be replaced when dependencies are built.
