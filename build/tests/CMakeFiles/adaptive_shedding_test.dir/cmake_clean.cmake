file(REMOVE_RECURSE
  "CMakeFiles/adaptive_shedding_test.dir/adaptive_shedding_test.cc.o"
  "CMakeFiles/adaptive_shedding_test.dir/adaptive_shedding_test.cc.o.d"
  "adaptive_shedding_test"
  "adaptive_shedding_test.pdb"
  "adaptive_shedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_shedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
