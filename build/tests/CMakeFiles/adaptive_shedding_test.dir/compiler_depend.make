# Empty compiler generated dependencies file for adaptive_shedding_test.
# This may be replaced when dependencies are built.
