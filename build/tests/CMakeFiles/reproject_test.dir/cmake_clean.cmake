file(REMOVE_RECURSE
  "CMakeFiles/reproject_test.dir/reproject_test.cc.o"
  "CMakeFiles/reproject_test.dir/reproject_test.cc.o.d"
  "reproject_test"
  "reproject_test.pdb"
  "reproject_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
