# Empty compiler generated dependencies file for reproject_test.
# This may be replaced when dependencies are built.
