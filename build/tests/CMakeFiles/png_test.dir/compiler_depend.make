# Empty compiler generated dependencies file for png_test.
# This may be replaced when dependencies are built.
