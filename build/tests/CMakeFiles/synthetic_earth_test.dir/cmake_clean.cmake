file(REMOVE_RECURSE
  "CMakeFiles/synthetic_earth_test.dir/synthetic_earth_test.cc.o"
  "CMakeFiles/synthetic_earth_test.dir/synthetic_earth_test.cc.o.d"
  "synthetic_earth_test"
  "synthetic_earth_test.pdb"
  "synthetic_earth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_earth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
