file(REMOVE_RECURSE
  "CMakeFiles/transform_ops_test.dir/transform_ops_test.cc.o"
  "CMakeFiles/transform_ops_test.dir/transform_ops_test.cc.o.d"
  "transform_ops_test"
  "transform_ops_test.pdb"
  "transform_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
