# Empty dependencies file for transform_ops_test.
# This may be replaced when dependencies are built.
