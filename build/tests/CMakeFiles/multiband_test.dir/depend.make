# Empty dependencies file for multiband_test.
# This may be replaced when dependencies are built.
