file(REMOVE_RECURSE
  "CMakeFiles/multiband_test.dir/multiband_test.cc.o"
  "CMakeFiles/multiband_test.dir/multiband_test.cc.o.d"
  "multiband_test"
  "multiband_test.pdb"
  "multiband_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiband_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
