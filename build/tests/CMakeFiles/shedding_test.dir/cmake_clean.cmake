file(REMOVE_RECURSE
  "CMakeFiles/shedding_test.dir/shedding_test.cc.o"
  "CMakeFiles/shedding_test.dir/shedding_test.cc.o.d"
  "shedding_test"
  "shedding_test.pdb"
  "shedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
