# Empty dependencies file for shedding_test.
# This may be replaced when dependencies are built.
