# Empty dependencies file for restriction_ops_test.
# This may be replaced when dependencies are built.
