file(REMOVE_RECURSE
  "CMakeFiles/restriction_ops_test.dir/restriction_ops_test.cc.o"
  "CMakeFiles/restriction_ops_test.dir/restriction_ops_test.cc.o.d"
  "restriction_ops_test"
  "restriction_ops_test.pdb"
  "restriction_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restriction_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
